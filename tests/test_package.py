"""Tests for the top-level package surface and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestTopLevelApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_core_names_reexported(self):
        assert repro.Domain((4,)).size == 4
        assert repro.Database is not None
        assert repro.Workload is not None
        assert repro.RangeQuery((0,), (1,)).num_cells() == 2

    def test_policy_names_reexported(self):
        domain = repro.Domain((6,))
        policy = repro.line_policy(domain)
        transform = repro.PolicyTransform(policy)
        assert transform.is_tree()
        assert repro.threshold_policy(domain, 2).num_edges > policy.num_edges
        assert repro.grid_policy(repro.Domain((3, 3))).num_edges == 12

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ entry {name} is missing"

    def test_subpackages_importable(self):
        import repro.accounting
        import repro.blowfish
        import repro.bounds
        import repro.data
        import repro.experiments
        import repro.mechanisms
        import repro.policy
        import repro.postprocess

        assert repro.blowfish.plan_mechanism is not None
        assert repro.mechanisms.LaplaceMechanism is not None


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            exceptions.DomainError,
            exceptions.WorkloadError,
            exceptions.PolicyError,
            exceptions.PolicyNotTreeError,
            exceptions.PrivacyBudgetError,
            exceptions.MechanismError,
            exceptions.TransformError,
            exceptions.DataError,
            exceptions.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, exceptions.ReproError)

    def test_policy_not_tree_is_a_policy_error(self):
        assert issubclass(exceptions.PolicyNotTreeError, exceptions.PolicyError)

    def test_catching_base_class_catches_library_errors(self):
        with pytest.raises(exceptions.ReproError):
            repro.Domain((0,))
