"""Tests for :mod:`repro.data.catalog` (the Table 1 datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASET_SPECS,
    ONE_DIMENSIONAL_DATASETS,
    TWO_DIMENSIONAL_DATASETS,
    dataset_names,
    load_dataset,
    table1_statistics,
)
from repro.exceptions import DataError


class TestCatalog:
    def test_all_table1_datasets_present(self):
        assert set(dataset_names()) == {
            "A", "B", "C", "D", "E", "F", "G", "T100", "T50", "T25",
        }

    def test_partition_into_1d_and_2d(self):
        assert set(ONE_DIMENSIONAL_DATASETS) | set(TWO_DIMENSIONAL_DATASETS) == set(
            dataset_names()
        )

    def test_1d_specs_have_domain_4096(self):
        for name in ONE_DIMENSIONAL_DATASETS:
            assert DATASET_SPECS[name].shape == (4096,)

    def test_2d_specs_have_square_grids(self):
        assert DATASET_SPECS["T100"].shape == (100, 100)
        assert DATASET_SPECS["T50"].shape == (50, 50)
        assert DATASET_SPECS["T25"].shape == (25, 25)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DataError):
            load_dataset("Z")


class TestLoadDataset:
    @pytest.mark.parametrize("name", ["A", "D", "E", "G", "T25"])
    def test_scale_matches_spec(self, name):
        database = load_dataset(name, random_state=0)
        assert database.scale == pytest.approx(DATASET_SPECS[name].scale, rel=1e-6)

    @pytest.mark.parametrize("name", ["B", "E", "F", "T50"])
    def test_sparsity_close_to_spec(self, name):
        database = load_dataset(name, random_state=0)
        assert database.zero_fraction == pytest.approx(
            DATASET_SPECS[name].zero_fraction, abs=0.08
        )

    def test_sparse_datasets_are_sparser_than_dense_ones(self):
        sparse = load_dataset("F", random_state=0)
        dense = load_dataset("A", random_state=0)
        assert sparse.zero_fraction > dense.zero_fraction + 0.5

    def test_deterministic_default_seed(self):
        first = load_dataset("D")
        second = load_dataset("D")
        assert np.array_equal(first.counts, second.counts)

    def test_name_recorded(self):
        assert load_dataset("C", random_state=0).name == "C"

    def test_domain_size_aggregation(self):
        database = load_dataset("D", random_state=0, domain_size=512)
        assert database.domain.size == 512
        assert database.scale == pytest.approx(DATASET_SPECS["D"].scale, rel=1e-6)

    def test_aggregation_rejects_non_divisor(self):
        with pytest.raises(DataError):
            load_dataset("D", random_state=0, domain_size=1000)

    def test_aggregation_rejected_for_2d(self):
        with pytest.raises(DataError):
            load_dataset("T25", random_state=0, domain_size=5)


class TestTable1Statistics:
    def test_one_row_per_dataset(self):
        rows = table1_statistics(random_state=0)
        assert len(rows) == len(DATASET_SPECS)

    def test_rows_report_target_and_generated(self):
        rows = table1_statistics(random_state=0)
        for row in rows:
            assert row["generated_scale"] == pytest.approx(row["target_scale"], rel=1e-6)
            assert abs(row["generated_zero_percent"] - row["target_zero_percent"]) < 8.0

    def test_descriptions_present(self):
        rows = table1_statistics(random_state=0)
        assert all(row["description"] for row in rows)
