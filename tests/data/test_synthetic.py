"""Tests for :mod:`repro.data.synthetic`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ShapeFamily, SyntheticSpec, generate_histogram
from repro.exceptions import DataError


def _spec(family: ShapeFamily, shape=(512,), scale=1e4, zero_fraction=0.5) -> SyntheticSpec:
    return SyntheticSpec(
        name="test", shape=shape, scale=scale, zero_fraction=zero_fraction, family=family
    )


class TestSpecValidation:
    def test_rejects_non_positive_scale(self):
        with pytest.raises(DataError):
            _spec(ShapeFamily.SMOOTH_GROWTH, scale=0)

    def test_rejects_bad_zero_fraction(self):
        with pytest.raises(DataError):
            _spec(ShapeFamily.SMOOTH_GROWTH, zero_fraction=1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(DataError):
            _spec(ShapeFamily.SMOOTH_GROWTH, shape=(0,))

    def test_domain_size(self):
        assert _spec(ShapeFamily.CLUSTERED_2D, shape=(10, 20)).domain_size == 200


class TestGeneration:
    @pytest.mark.parametrize(
        "family",
        [
            ShapeFamily.SMOOTH_GROWTH,
            ShapeFamily.HEAVY_TAIL,
            ShapeFamily.BURSTY,
            ShapeFamily.SPARSE_SPIKES,
        ],
    )
    def test_scale_matches_exactly(self, family):
        spec = _spec(family, scale=12345)
        histogram = generate_histogram(spec, random_state=0)
        assert histogram.sum() == pytest.approx(12345)

    @pytest.mark.parametrize(
        "zero_fraction",
        [0.1, 0.5, 0.9],
    )
    def test_zero_fraction_approximately_matches(self, zero_fraction):
        spec = _spec(ShapeFamily.HEAVY_TAIL, scale=5e4, zero_fraction=zero_fraction)
        histogram = generate_histogram(spec, random_state=1)
        observed = np.mean(histogram == 0)
        assert observed == pytest.approx(zero_fraction, abs=0.08)

    def test_counts_are_non_negative_integers(self):
        spec = _spec(ShapeFamily.BURSTY, scale=2e4)
        histogram = generate_histogram(spec, random_state=2)
        assert np.all(histogram >= 0)
        assert np.allclose(histogram, np.round(histogram))

    def test_reproducible_given_seed(self):
        spec = _spec(ShapeFamily.SPARSE_SPIKES)
        first = generate_histogram(spec, random_state=7)
        second = generate_histogram(spec, random_state=7)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        spec = _spec(ShapeFamily.SPARSE_SPIKES)
        first = generate_histogram(spec, random_state=1)
        second = generate_histogram(spec, random_state=2)
        assert not np.array_equal(first, second)

    def test_clustered_2d_generation(self):
        spec = _spec(ShapeFamily.CLUSTERED_2D, shape=(30, 30), scale=5e4, zero_fraction=0.6)
        histogram = generate_histogram(spec, random_state=3)
        assert histogram.shape == (900,)
        assert histogram.sum() == pytest.approx(5e4)

    def test_clustered_2d_requires_2d_shape(self):
        spec = _spec(ShapeFamily.CLUSTERED_2D, shape=(100,))
        with pytest.raises(DataError):
            generate_histogram(spec, random_state=0)

    def test_clustered_2d_is_spatially_concentrated(self):
        # The top 10% densest cells should hold the majority of the mass.
        spec = _spec(ShapeFamily.CLUSTERED_2D, shape=(40, 40), scale=1e5, zero_fraction=0.7)
        histogram = generate_histogram(spec, random_state=4)
        sorted_counts = np.sort(histogram)[::-1]
        top_decile = sorted_counts[: len(sorted_counts) // 10].sum()
        assert top_decile > 0.5 * histogram.sum()

    def test_sparse_spikes_family_is_heavy_tailed(self):
        spec = _spec(ShapeFamily.SPARSE_SPIKES, scale=1e4, zero_fraction=0.95)
        histogram = generate_histogram(spec, random_state=5)
        nonzero = histogram[histogram > 0]
        assert nonzero.max() > 5 * np.median(nonzero)
