"""Tests for :mod:`repro.blowfish.strategies` (the Section 5 edge-space strategies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain, random_range_queries_workload
from repro.exceptions import PolicyError
from repro.mechanisms import identity_strategy
from repro.blowfish import (
    edge_identity_strategy,
    grid_slab_groups,
    grid_slab_strategy,
    spanner_group_strategy,
    tensor_strategy,
)
from repro.policy import (
    PolicyTransform,
    grid_policy,
    line_policy,
    line_spanner,
    threshold_policy,
)


class TestEdgeIdentityStrategy:
    def test_matches_edge_count(self, line_policy_16):
        transform = PolicyTransform(line_policy_16)
        strategy = edge_identity_strategy(transform)
        assert strategy.num_columns == transform.num_edges
        assert strategy.sensitivity == 1.0


class TestTensorStrategy:
    def test_1d_passthrough(self):
        strategy = tensor_strategy((8,), identity_strategy)
        assert strategy.num_columns == 8

    def test_2d_product(self):
        strategy = tensor_strategy((4, 8), identity_strategy)
        assert strategy.num_columns == 32

    def test_rejects_empty_shape(self):
        with pytest.raises(PolicyError):
            tensor_strategy((), identity_strategy)


class TestGridSlabGroups:
    def test_groups_partition_edges(self, grid_policy_5):
        groups = grid_slab_groups(grid_policy_5)
        edges = sorted(edge for group, _ in groups for edge in group)
        assert edges == list(range(grid_policy_5.num_edges))

    def test_group_count_2d(self, grid_policy_5):
        # 2 axes x (k-1) levels per axis.
        groups = grid_slab_groups(grid_policy_5)
        assert len(groups) == 2 * 4

    def test_slab_shape_2d(self, grid_policy_5):
        groups = grid_slab_groups(grid_policy_5)
        assert all(shape == (5,) for _, shape in groups)
        assert all(len(group) == 5 for group, _ in groups)

    def test_group_count_3d(self):
        policy = grid_policy(Domain((3, 3, 3)))
        groups = grid_slab_groups(policy)
        assert len(groups) == 3 * 2
        assert all(shape == (3, 3) for _, shape in groups)

    def test_rejects_theta_greater_than_one(self, line_domain_16):
        policy = threshold_policy(line_domain_16, 2)
        with pytest.raises(PolicyError):
            grid_slab_groups(policy)

    def test_rejects_policy_with_bottom(self, line_domain_16):
        policy = line_policy(line_domain_16, attach_bottom=True)
        with pytest.raises(PolicyError):
            grid_slab_groups(policy)

    def test_1d_line_policy_is_single_edge_slabs(self, line_policy_16):
        groups = grid_slab_groups(line_policy_16)
        assert len(groups) == 15
        assert all(len(group) == 1 for group, _ in groups)


class TestGridSlabStrategy:
    def test_strategy_covers_all_edges(self, grid_policy_5):
        transform = PolicyTransform(grid_policy_5)
        strategy = grid_slab_strategy(transform)
        assert strategy.num_columns == transform.num_edges

    def test_sensitivity_is_per_slab(self, grid_policy_5):
        transform = PolicyTransform(grid_policy_5)
        strategy = grid_slab_strategy(transform)
        # Each slab has 5 edges, padded to 8 for the Haar strategy: 1 + log2(8) = 4.
        assert strategy.sensitivity == pytest.approx(4.0)

    def test_transformed_range_query_supported(self, grid_policy_5, grid_domain_5):
        # W_G rows must lie in the strategy's row space so reconstruction is exact.
        transform = PolicyTransform(grid_policy_5)
        strategy = grid_slab_strategy(transform)
        workload = random_range_queries_workload(grid_domain_5, 20, random_state=0)
        transformed = transform.transform_workload(workload).toarray()
        dense_strategy = strategy.matrix.toarray()
        pseudo = np.linalg.pinv(dense_strategy)
        assert np.allclose(transformed @ pseudo @ dense_strategy, transformed, atol=1e-8)

    def test_identity_per_slab_variant(self, grid_policy_5):
        transform = PolicyTransform(grid_policy_5)
        strategy = grid_slab_strategy(transform, per_axis_strategy=identity_strategy)
        assert strategy.sensitivity == 1.0


class TestSpannerGroupStrategy:
    def test_covers_all_spanner_edges(self, line_domain_16):
        spanner = line_spanner(line_domain_16, theta=4)
        transform = PolicyTransform(spanner)
        strategy = spanner_group_strategy(transform, line_domain_16, theta=4)
        assert strategy.num_columns == transform.num_edges

    def test_sensitivity_depends_on_theta_not_k(self):
        small = Domain((32,))
        large = Domain((256,))
        theta = 4
        sensitivity_small = spanner_group_strategy(
            PolicyTransform(line_spanner(small, theta)), small, theta
        ).sensitivity
        sensitivity_large = spanner_group_strategy(
            PolicyTransform(line_spanner(large, theta)), large, theta
        ).sensitivity
        assert sensitivity_small == sensitivity_large

    def test_group_mismatch_rejected(self, line_domain_16):
        # Passing the transform of a different policy (wrong edge count) fails.
        transform = PolicyTransform(line_policy(line_domain_16))
        spanner_strategy_domain = Domain((32,))
        with pytest.raises(PolicyError):
            spanner_group_strategy(transform, spanner_strategy_domain, theta=4)
