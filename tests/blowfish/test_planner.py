"""Tests for :mod:`repro.blowfish.planner`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload
from repro.blowfish import plan_mechanism
from repro.policy import (
    cycle_policy,
    grid_policy,
    line_policy,
    star_policy,
    threshold_policy,
    unbounded_dp_policy,
)


class TestPlannerRoutes:
    def test_line_policy_uses_tree_route(self):
        plan = plan_mechanism(line_policy(Domain((64,))), 1.0)
        assert plan.route == "tree"
        assert plan.algorithm.data_dependent

    def test_line_policy_data_independent_preference(self):
        plan = plan_mechanism(
            line_policy(Domain((64,))), 1.0, prefer_data_dependent=False
        )
        assert plan.route == "tree"
        assert plan.name == "Transformed+ConsistentEst"

    def test_line_policy_without_consistency(self):
        plan = plan_mechanism(
            line_policy(Domain((64,))), 1.0, prefer_data_dependent=False, consistency=False
        )
        assert plan.name == "Transformed+Laplace"

    def test_unbounded_policy_uses_tree_route(self):
        plan = plan_mechanism(unbounded_dp_policy(Domain((32,))), 1.0)
        assert plan.route == "tree"

    def test_star_policy_uses_tree_route(self):
        plan = plan_mechanism(star_policy(Domain((32,)), center=5), 1.0)
        assert plan.route == "tree"

    def test_theta_policy_uses_spanner_route(self):
        plan = plan_mechanism(threshold_policy(Domain((64,)), 4), 1.0)
        assert plan.route == "spanner"
        assert plan.spanner is not None
        assert plan.spanner.stretch <= 3

    def test_grid_policy_uses_grid_matrix_route(self):
        plan = plan_mechanism(grid_policy(Domain((8, 8))), 1.0)
        assert plan.route == "grid-matrix"
        assert plan.name == "Transformed+Privelet"

    def test_cycle_policy_falls_back_to_generic_matrix(self):
        plan = plan_mechanism(cycle_policy(Domain((12,))), 1.0)
        assert plan.route == "matrix"

    def test_2d_threshold_policy_falls_back_to_generic_matrix(self):
        plan = plan_mechanism(threshold_policy(Domain((5, 5)), 2), 1.0)
        assert plan.route == "matrix"

    def test_rationales_are_informative(self):
        plan = plan_mechanism(threshold_policy(Domain((64,)), 4), 1.0)
        assert "stretch" in plan.rationale.lower() or "spanner" in plan.rationale.lower()


class TestPlannedMechanismsRun:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: line_policy(Domain((32,))),
            lambda: threshold_policy(Domain((32,)), 4),
            lambda: grid_policy(Domain((6, 6))),
            lambda: cycle_policy(Domain((12,))),
        ],
    )
    def test_planned_algorithm_answers_workload(self, policy_factory, rng):
        policy = policy_factory()
        plan = plan_mechanism(policy, epsilon=1.0)
        domain = policy.domain
        database = Database(domain, np.ones(domain.size), name="uniform")
        workload = identity_workload(domain)
        answers = plan.algorithm.answer(workload, database, rng)
        assert answers.shape == (domain.size,)
        assert np.all(np.isfinite(answers))
