"""Executable demonstration of the negative result (Theorem 4.4, Appendix C).

The paper proves that for policy graphs with no isometric L1 embedding (e.g.
cycles), no exact transformational equivalence can exist: the witness is the
exponential mechanism whose output probabilities scale with the *graph*
metric.  These tests reproduce the two halves of the argument numerically:

1. the witness mechanism is ``(ε, G)``-Blowfish private on the cycle, and
2. its behaviour on far-apart inputs violates the bound that *any*
   ε-differentially private mechanism on a transformed instance at L1
   distance 1 per policy-edge step would have to satisfy, for every possible
   isometric re-encoding — because no such re-encoding exists (the cycle's
   tree embeddings all have stretch ``n - 1``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain
from repro.mechanisms import graph_distance_exponential_mechanism
from repro.policy import (
    approximate_with_bfs_tree,
    cycle_embedding_lower_bound,
    cycle_policy,
    embedding_stretch_and_shrink,
    graph_distance_matrix,
    line_policy,
    tree_embedding,
)


@pytest.fixture
def cycle8():
    return cycle_policy(Domain((8,)))


class TestWitnessMechanismIsBlowfishPrivate:
    def test_edge_neighbors_satisfy_epsilon_bound(self, cycle8):
        epsilon = 0.7
        mechanism = graph_distance_exponential_mechanism(cycle8, epsilon)
        for u, v in cycle8.edges:
            ratio = mechanism.probabilities(int(u)) / mechanism.probabilities(int(v))
            assert np.all(ratio <= np.exp(epsilon) + 1e-9)

    def test_guarantee_scales_with_graph_distance(self, cycle8):
        # Equation 1 of the paper: the ratio bound degrades as exp(eps * dist_G).
        epsilon = 0.7
        mechanism = graph_distance_exponential_mechanism(cycle8, epsilon)
        distances = graph_distance_matrix(cycle8)
        for u in range(8):
            for v in range(8):
                if u == v:
                    continue
                ratio = np.max(
                    mechanism.probabilities(u) / mechanism.probabilities(v)
                )
                assert ratio <= np.exp(epsilon * distances[u, v]) + 1e-9


class TestNoIsometricEmbeddingExists:
    def test_every_tree_embedding_has_large_stretch(self, cycle8):
        # The P_G embedding of any spanning tree of the cycle distorts some
        # pair by the full n - 1 factor.
        spanner = approximate_with_bfs_tree(cycle8)
        embedding = tree_embedding(spanner.spanner)
        stretch_value, _ = embedding_stretch_and_shrink(cycle8, embedding)
        assert stretch_value >= cycle_embedding_lower_bound(8) - 1e-9

    def test_line_policy_contrast(self):
        # Trees (the line policy) do admit a stretch-1 embedding, which is why
        # Theorem 4.3 gives an exact equivalence there.
        policy = line_policy(Domain((8,)))
        embedding = tree_embedding(policy)
        stretch_value, shrink_value = embedding_stretch_and_shrink(policy, embedding)
        assert stretch_value == pytest.approx(1.0)
        assert shrink_value == pytest.approx(1.0)


class TestWitnessBreaksAnyExactTransformation:
    def test_far_apart_inputs_are_too_distinguishable(self, cycle8):
        """If an exact transformation existed, the witness would violate DP on it.

        Under any exact transformation, two databases that differ by ``t``
        policy-edge moves map to vectors at L1 distance ``t``, so an
        ε-differentially private mechanism could distinguish them by a factor
        of at most ``exp(ε · t)`` *measured along the transformed path*.  On
        the cycle, antipodal inputs are ``n/2`` edge-moves apart, yet every
        candidate transformation must embed the cycle in L1, which is only
        possible with stretch ``n - 1``: the same pair would then sit at
        distance 1·(something ≤ stretch · shortest path) — the contradiction
        the paper derives.  Numerically we check the witness's distinguishing
        power matches exp(ε · dist_G) rather than the exp(ε · 1) that a
        DP mechanism on a hypothetical isometric *tree* image (where some
        cycle-adjacent pair necessarily lands at distance n - 1) would imply
        for that pair.
        """
        epsilon = 1.0
        mechanism = graph_distance_exponential_mechanism(cycle8, epsilon)
        # The spanning tree necessarily separates some policy-adjacent pair
        # (u, v) by distance n - 1 in the embedding...
        spanner = approximate_with_bfs_tree(cycle8)
        embedding = tree_embedding(spanner.spanner)
        worst_pair = None
        worst_distance = 0.0
        for u, v in cycle8.edges:
            distance = float(np.abs(embedding[int(u)] - embedding[int(v)]).sum())
            if distance > worst_distance:
                worst_distance = distance
                worst_pair = (int(u), int(v))
        assert worst_distance >= 7.0
        # ...but the witness mechanism treats that pair as true neighbors
        # (ratio <= e^eps), which no eps-DP mechanism run on the embedded
        # instance (where they are 7 apart and, crucially, some other pair is
        # correspondingly squeezed) can replicate exactly for all pairs at once.
        u, v = worst_pair
        ratio = np.max(mechanism.probabilities(u) / mechanism.probabilities(v))
        assert ratio <= np.exp(epsilon) + 1e-9
