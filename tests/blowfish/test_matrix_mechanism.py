"""Tests for :mod:`repro.blowfish.matrix_mechanism` (Theorem 4.1 mechanisms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    mean_squared_error,
    random_range_queries_workload,
)
from repro.exceptions import MechanismError, PolicyError
from repro.mechanisms import PriveletMechanism, identity_strategy
from repro.blowfish import (
    PolicyMatrixMechanism,
    transformed_laplace_mechanism,
    transformed_privelet_grid_mechanism,
)
from repro.policy import cycle_policy, grid_policy, line_policy


class TestPolicyMatrixMechanism:
    def test_unbiased_at_huge_epsilon(self, line_policy_16, dense_database_16, rng):
        workload = cumulative_workload(line_policy_16.domain)
        mechanism = PolicyMatrixMechanism(line_policy_16, epsilon=1e9)
        answers = mechanism.answer(workload, dense_database_16, rng)
        assert np.allclose(answers, workload.answer(dense_database_16), atol=1e-3)

    def test_strategy_column_count_validated(self, line_policy_16):
        with pytest.raises(MechanismError):
            PolicyMatrixMechanism(line_policy_16, 1.0, strategy=identity_strategy(3))

    def test_budget_fraction_validated(self, line_policy_16):
        with pytest.raises(MechanismError):
            PolicyMatrixMechanism(line_policy_16, 1.0, budget_fraction=0.0)
        with pytest.raises(MechanismError):
            PolicyMatrixMechanism(line_policy_16, 1.0, budget_fraction=1.5)

    def test_domain_mismatch_rejected(self, line_policy_16):
        mechanism = PolicyMatrixMechanism(line_policy_16, 1.0)
        other_domain = Domain((8,))
        with pytest.raises(PolicyError):
            mechanism.answer(
                identity_workload(other_domain), Database(other_domain, np.ones(8)), None
            )

    def test_works_for_non_tree_policies(self, grid_policy_5, grid_database_5, rng):
        workload = random_range_queries_workload(grid_policy_5.domain, 20, random_state=1)
        mechanism = PolicyMatrixMechanism(grid_policy_5, epsilon=1e9)
        answers = mechanism.answer(workload, grid_database_5, rng)
        assert np.allclose(answers, workload.answer(grid_database_5), atol=1e-2)

    def test_works_for_cycle_policies(self, rng):
        # Theorem 4.1 covers every policy graph, including non-embeddable cycles.
        domain = Domain((10,))
        policy = cycle_policy(domain)
        database = Database(domain, np.arange(10, dtype=float))
        workload = identity_workload(domain)
        mechanism = PolicyMatrixMechanism(policy, epsilon=1e9)
        answers = mechanism.answer(workload, database, rng)
        assert np.allclose(answers, database.counts, atol=1e-2)

    def test_check_supports_identity_strategy(self, line_policy_16):
        mechanism = PolicyMatrixMechanism(line_policy_16, 1.0)
        assert mechanism.check_supports(cumulative_workload(line_policy_16.domain))

    def test_expected_error_theorem_5_2(self, line_policy_16):
        # Theorem 5.2: range queries under the line policy with the identity
        # (prefix-sum) strategy cost at most 2 noisy coordinates => 2 * 2/eps^2.
        epsilon = 0.5
        mechanism = PolicyMatrixMechanism(line_policy_16, epsilon)
        workload = random_range_queries_workload(line_policy_16.domain, 50, random_state=0)
        expected = mechanism.expected_error_per_query(workload)
        assert expected.max() <= 2 * 2 / epsilon**2 + 1e-9

    def test_empirical_error_matches_expected(self, line_policy_16, dense_database_16, rng):
        epsilon = 1.0
        mechanism = PolicyMatrixMechanism(line_policy_16, epsilon)
        workload = cumulative_workload(line_policy_16.domain)
        expected = mechanism.expected_error_per_query(workload).mean()
        true_answers = workload.answer(dense_database_16)
        errors = []
        for _ in range(400):
            noisy = mechanism.answer(workload, dense_database_16, rng)
            errors.append(np.mean((noisy - true_answers) ** 2))
        assert np.mean(errors) == pytest.approx(expected, rel=0.15)

    def test_error_is_data_independent(self, line_policy_16, rng):
        # The mechanism's error must not depend on the database (only on W_G, A).
        epsilon = 0.5
        workload = cumulative_workload(line_policy_16.domain)
        mechanism = PolicyMatrixMechanism(line_policy_16, epsilon)
        errors = {}
        for label, counts in {
            "sparse": np.concatenate([np.zeros(15), [100.0]]),
            "dense": np.full(16, 50.0),
        }.items():
            database = Database(line_policy_16.domain, counts)
            true_answers = workload.answer(database)
            trial_errors = []
            for _ in range(300):
                noisy = mechanism.answer(workload, database, rng)
                trial_errors.append(np.mean((noisy - true_answers) ** 2))
            errors[label] = np.mean(trial_errors)
        assert errors["sparse"] == pytest.approx(errors["dense"], rel=0.2)


class TestNamedConstructors:
    def test_transformed_laplace_name(self, line_policy_16):
        mechanism = transformed_laplace_mechanism(line_policy_16, 1.0)
        assert mechanism.name == "Transformed+Laplace"

    def test_budget_fraction_reduces_effective_epsilon(self, line_policy_16):
        mechanism = transformed_laplace_mechanism(line_policy_16, 0.9, budget_fraction=1 / 3)
        assert mechanism.effective_epsilon == pytest.approx(0.3)

    def test_transformed_privelet_grid_beats_dp_privelet(self, rng):
        # Theorem 5.4's mechanism should beat plain epsilon/2-DP Privelet on 2-D
        # range queries over a moderately sized grid.
        domain = Domain((16, 16))
        policy = grid_policy(domain)
        counts = np.zeros(domain.size)
        counts[rng.integers(0, domain.size, 50)] = rng.integers(1, 40, 50)
        database = Database(domain, counts)
        workload = random_range_queries_workload(domain, 150, random_state=3)
        epsilon = 0.2
        blowfish = transformed_privelet_grid_mechanism(policy, epsilon)
        baseline = PriveletMechanism(epsilon / 2, (16, 16))
        true_answers = workload.answer(database)

        def mean_error(mechanism):
            errors = []
            for _ in range(5):
                noisy = mechanism.answer(workload, database, rng)
                errors.append(mean_squared_error(true_answers, noisy))
            return np.mean(errors)

        assert mean_error(blowfish) < mean_error(baseline)

    def test_transformed_privelet_grid_rejects_non_grid(self, theta_policy_16):
        with pytest.raises(PolicyError):
            transformed_privelet_grid_mechanism(theta_policy_16, 1.0)
