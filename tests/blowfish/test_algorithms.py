"""Tests for :mod:`repro.blowfish.algorithms` (the named Section 6 algorithms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    identity_workload,
    mean_squared_error,
    random_range_queries_workload,
)
from repro.exceptions import MechanismError
from repro.blowfish import (
    blowfish_transformed_consistent,
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
    blowfish_transformed_laplace_matrix,
    blowfish_transformed_privelet_grid,
    dp_dawa_baseline,
    dp_laplace_baseline,
    dp_privelet_baseline,
)
from repro.policy import approximate_with_line_spanner, grid_policy, line_policy, threshold_policy


@pytest.fixture
def sparse_line_instance():
    domain = Domain((512,))
    counts = np.zeros(512)
    counts[[5, 100, 311, 500]] = [20.0, 70.0, 45.0, 10.0]
    database = Database(domain, counts, name="sparse512")
    policy = line_policy(domain)
    workload = random_range_queries_workload(domain, 300, random_state=2)
    return policy, workload, database


class TestBaselineConstructors:
    def test_names(self):
        assert dp_laplace_baseline(1.0).name == "Laplace"
        assert dp_privelet_baseline(1.0, (64,)).name == "Privelet"
        assert dp_dawa_baseline(1.0, (64,)).name == "Dawa"

    def test_baselines_use_half_epsilon(self):
        assert dp_laplace_baseline(1.0).mechanism.epsilon == pytest.approx(0.5)
        assert dp_privelet_baseline(1.0, (64,)).mechanism.epsilon == pytest.approx(0.5)
        assert dp_dawa_baseline(1.0, (64,)).mechanism.epsilon == pytest.approx(0.5)

    def test_custom_dp_fraction(self):
        assert dp_laplace_baseline(1.0, dp_fraction=1.0).mechanism.epsilon == 1.0

    def test_data_dependence_flags(self):
        assert dp_laplace_baseline(1.0).data_dependent is False
        assert dp_dawa_baseline(1.0, (64,)).data_dependent is True


class TestBlowfishConstructors:
    def test_names(self, line_policy_16):
        assert blowfish_transformed_laplace(line_policy_16, 1.0).name == "Transformed+Laplace"
        assert (
            blowfish_transformed_consistent(line_policy_16, 1.0).name
            == "Transformed+ConsistentEst"
        )
        assert blowfish_transformed_dawa(line_policy_16, 1.0).name == "Trans+Dawa+Cons"
        assert (
            blowfish_transformed_dawa(line_policy_16, 1.0, consistency=False).name
            == "Trans+Dawa"
        )

    def test_grid_constructor_name(self, grid_policy_5):
        assert (
            blowfish_transformed_privelet_grid(grid_policy_5, 1.0).name
            == "Transformed+Privelet"
        )

    def test_matrix_variant_handles_any_policy(self, grid_policy_5, grid_database_5, rng):
        algorithm = blowfish_transformed_laplace_matrix(grid_policy_5, 1e9)
        workload = identity_workload(grid_policy_5.domain)
        answers = algorithm.answer(workload, grid_database_5, rng)
        assert np.allclose(answers, grid_database_5.counts, atol=1e-2)

    def test_theta_argument_builds_spanner(self, theta_policy_16):
        algorithm = blowfish_transformed_laplace(theta_policy_16, 0.9, theta=3)
        assert algorithm.mechanism.spanner is not None
        assert algorithm.mechanism.effective_epsilon == pytest.approx(0.3)

    def test_explicit_spanner_used(self, theta_policy_16):
        spanner = approximate_with_line_spanner(theta_policy_16, 3)
        algorithm = blowfish_transformed_dawa(theta_policy_16, 0.9, spanner=spanner)
        assert algorithm.mechanism.spanner is spanner

    def test_theta_on_2d_policy_rejected(self, grid_policy_5):
        with pytest.raises(MechanismError):
            blowfish_transformed_laplace(grid_policy_5, 1.0, theta=2)


class TestQualitativeOrdering:
    def test_1d_range_blowfish_beats_baselines(self, sparse_line_instance, rng):
        # The headline claim of Figure 8(c/g): 2-3 orders of magnitude improvement.
        policy, workload, database = sparse_line_instance
        epsilon = 0.1
        true_answers = workload.answer(database)

        def mean_error(algorithm, trials=3):
            return np.mean(
                [
                    mean_squared_error(true_answers, algorithm.answer(workload, database, rng))
                    for _ in range(trials)
                ]
            )

        privelet_error = mean_error(dp_privelet_baseline(epsilon, (512,)))
        blowfish_error = mean_error(blowfish_transformed_laplace(policy, epsilon))
        assert blowfish_error < privelet_error / 50

    def test_hist_transformed_laplace_beats_dp_laplace(self, rng):
        # Figure 8(b/f): Transformed+Laplace is about a factor 2 better than the
        # eps/2 Laplace baseline, regardless of the data.
        domain = Domain((256,))
        database = Database(domain, np.full(256, 5.0))
        policy = line_policy(domain)
        workload = identity_workload(domain)
        epsilon = 0.5
        true_answers = workload.answer(database)

        def mean_error(algorithm, trials=12):
            return np.mean(
                [
                    mean_squared_error(true_answers, algorithm.answer(workload, database, rng))
                    for _ in range(trials)
                ]
            )

        laplace_error = mean_error(dp_laplace_baseline(epsilon))
        blowfish_error = mean_error(blowfish_transformed_laplace(policy, epsilon))
        assert blowfish_error < laplace_error
        assert blowfish_error == pytest.approx(laplace_error / 2, rel=0.5)

    def test_consistency_beats_plain_transformed_on_sparse(self, sparse_line_instance, rng):
        policy, workload, database = sparse_line_instance
        epsilon = 0.1
        true_answers = workload.answer(database)

        def mean_error(algorithm, trials=4):
            return np.mean(
                [
                    mean_squared_error(true_answers, algorithm.answer(workload, database, rng))
                    for _ in range(trials)
                ]
            )

        assert mean_error(blowfish_transformed_consistent(policy, epsilon)) < mean_error(
            blowfish_transformed_laplace(policy, epsilon)
        )

    def test_2d_transformed_privelet_beats_privelet(self, rng):
        # Figure 8(a/e): Transformed+Privelet beats the eps/2-DP Privelet baseline.
        domain = Domain((20, 20))
        policy = grid_policy(domain)
        counts = np.zeros(400)
        counts[rng.integers(0, 400, 60)] = rng.integers(1, 50, 60)
        database = Database(domain, counts, name="grid20")
        workload = random_range_queries_workload(domain, 200, random_state=9)
        epsilon = 0.1
        true_answers = workload.answer(database)

        def mean_error(algorithm, trials=3):
            return np.mean(
                [
                    mean_squared_error(true_answers, algorithm.answer(workload, database, rng))
                    for _ in range(trials)
                ]
            )

        assert mean_error(blowfish_transformed_privelet_grid(policy, epsilon)) < mean_error(
            dp_privelet_baseline(epsilon, (20, 20))
        )
