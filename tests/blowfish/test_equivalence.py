"""Tests for :mod:`repro.blowfish.equivalence` (executable theorem statements)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    random_range_queries_workload,
)
from repro.exceptions import PolicyError
from repro.blowfish import (
    cycle_has_no_isometric_tree_embedding,
    subgraph_approximation_budget,
    verify_answer_preservation,
    verify_sensitivity_equality,
    verify_tree_neighbor_preservation,
)
from repro.policy import (
    approximate_with_bfs_tree,
    approximate_with_line_spanner,
    cycle_policy,
    grid_policy,
    line_policy,
    star_policy,
    threshold_policy,
    unbounded_dp_policy,
)


class TestAnswerPreservation:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda d: line_policy(d),
            lambda d: threshold_policy(d, 3),
            lambda d: unbounded_dp_policy(d),
            lambda d: star_policy(d, center=2),
        ],
    )
    def test_1d_policies(self, policy_factory, rng):
        domain = Domain((24,))
        policy = policy_factory(domain)
        database = Database(domain, rng.integers(0, 9, 24).astype(float))
        for workload in (
            identity_workload(domain),
            cumulative_workload(domain),
            random_range_queries_workload(domain, 20, random_state=0),
        ):
            assert verify_answer_preservation(policy, workload, database)

    def test_grid_policy(self, grid_policy_5, grid_database_5):
        workload = random_range_queries_workload(grid_policy_5.domain, 15, random_state=1)
        assert verify_answer_preservation(grid_policy_5, workload, grid_database_5)

    def test_cycle_policy(self):
        domain = Domain((9,))
        policy = cycle_policy(domain)
        database = Database(domain, np.arange(9, dtype=float))
        assert verify_answer_preservation(policy, identity_workload(domain), database)


class TestSensitivityEquality:
    @pytest.mark.parametrize("theta", [1, 2, 4])
    def test_lemma_4_7_for_threshold_policies(self, theta):
        domain = Domain((20,))
        policy = threshold_policy(domain, theta)
        assert verify_sensitivity_equality(policy, identity_workload(domain))
        assert verify_sensitivity_equality(policy, cumulative_workload(domain))

    def test_lemma_4_7_for_grid(self, grid_policy_5):
        workload = random_range_queries_workload(grid_policy_5.domain, 12, random_state=3)
        assert verify_sensitivity_equality(grid_policy_5, workload)


class TestTreeNeighborPreservation:
    def test_line_policy(self, line_policy_16, dense_database_16):
        assert verify_tree_neighbor_preservation(line_policy_16, dense_database_16)

    def test_star_policy(self):
        domain = Domain((10,))
        policy = star_policy(domain, center=4)
        database = Database(domain, np.full(10, 2.0))
        assert verify_tree_neighbor_preservation(policy, database)

    def test_empty_database_rejected(self, line_policy_16):
        with pytest.raises(PolicyError):
            verify_tree_neighbor_preservation(
                line_policy_16, Database(line_policy_16.domain, np.zeros(16))
            )


class TestSubgraphApproximation:
    def test_budget_matches_stretch(self):
        domain = Domain((40,))
        policy = threshold_policy(domain, 4)
        spanner = approximate_with_line_spanner(policy, 4)
        budget, stretch = subgraph_approximation_budget(spanner, 0.9)
        assert stretch == spanner.stretch
        assert budget == pytest.approx(0.9 / stretch)

    def test_cycle_spanner_budget_is_tiny(self):
        policy = cycle_policy(Domain((20,)))
        spanner = approximate_with_bfs_tree(policy)
        budget, stretch = subgraph_approximation_budget(spanner, 1.0)
        assert stretch == 19
        assert budget == pytest.approx(1.0 / 19)


class TestNegativeResult:
    def test_cycle_has_no_isometric_embedding(self):
        assert cycle_has_no_isometric_tree_embedding(cycle_policy(Domain((8,))))

    def test_line_policy_has_isometric_embedding(self):
        assert not cycle_has_no_isometric_tree_embedding(line_policy(Domain((8,))))

    def test_grid_policy_counts_as_non_embeddable(self, grid_policy_5):
        assert cycle_has_no_isometric_tree_embedding(grid_policy_5)
