"""Tests for :mod:`repro.blowfish.tree_mechanism` (Theorem 4.3 mechanisms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    mean_squared_error,
    random_range_queries_workload,
)
from repro.exceptions import MechanismError, PolicyNotTreeError
from repro.mechanisms import LaplaceHistogram
from repro.blowfish import (
    TreeTransformMechanism,
    dawa_estimator_factory,
    laplace_estimator_factory,
)
from repro.policy import (
    approximate_with_line_spanner,
    grid_policy,
    line_policy,
    star_policy,
    threshold_policy,
)


class TestConstruction:
    def test_requires_tree_policy(self, grid_policy_5):
        with pytest.raises(PolicyNotTreeError):
            TreeTransformMechanism(grid_policy_5, 1.0)

    def test_accepts_line_policy(self, line_policy_16):
        mechanism = TreeTransformMechanism(line_policy_16, 1.0)
        assert mechanism.effective_epsilon == 1.0

    def test_accepts_star_policy(self):
        policy = star_policy(Domain((8,)), center=0)
        mechanism = TreeTransformMechanism(policy, 1.0)
        assert mechanism.tree.num_edges == 7

    def test_spanner_reduces_effective_epsilon(self, theta_policy_16):
        spanner = approximate_with_line_spanner(theta_policy_16, 3)
        mechanism = TreeTransformMechanism(theta_policy_16, 0.9, spanner=spanner)
        assert mechanism.effective_epsilon == pytest.approx(0.9 / spanner.stretch)

    def test_spanner_for_wrong_policy_rejected(self, theta_policy_16, line_policy_16):
        spanner = approximate_with_line_spanner(theta_policy_16, 3)
        with pytest.raises(MechanismError):
            TreeTransformMechanism(line_policy_16, 1.0, spanner=spanner)

    def test_unknown_consistency_mode_rejected(self, line_policy_16):
        with pytest.raises(MechanismError):
            TreeTransformMechanism(line_policy_16, 1.0, consistency="bogus")

    def test_monotone_consistency_requires_path(self):
        policy = star_policy(Domain((8,)), center=0)
        mechanism = TreeTransformMechanism(policy, 1.0, consistency="monotone")
        database = Database(Domain((8,)), np.ones(8))
        with pytest.raises(MechanismError):
            mechanism.answer(identity_workload(Domain((8,))), database, 0)


class TestAnswering:
    def test_unbiased_at_huge_epsilon(self, line_policy_16, dense_database_16, rng):
        mechanism = TreeTransformMechanism(line_policy_16, 1e9, consistency="none")
        workload = cumulative_workload(line_policy_16.domain)
        answers = mechanism.answer(workload, dense_database_16, rng)
        assert np.allclose(answers, workload.answer(dense_database_16), atol=1e-3)

    def test_unbiased_with_consistency_at_huge_epsilon(
        self, line_policy_16, dense_database_16, rng
    ):
        mechanism = TreeTransformMechanism(line_policy_16, 1e9, consistency="auto")
        workload = identity_workload(line_policy_16.domain)
        answers = mechanism.answer(workload, dense_database_16, rng)
        assert np.allclose(answers, dense_database_16.counts, atol=1e-3)

    def test_unbiased_through_spanner_at_huge_epsilon(self, theta_policy_16, dense_database_16, rng):
        spanner = approximate_with_line_spanner(theta_policy_16, 3)
        mechanism = TreeTransformMechanism(
            theta_policy_16, 1e9, spanner=spanner, consistency="none"
        )
        workload = random_range_queries_workload(theta_policy_16.domain, 20, random_state=0)
        answers = mechanism.answer(workload, dense_database_16, rng)
        assert np.allclose(answers, workload.answer(dense_database_16), atol=1e-3)

    def test_range_error_theta_independent_of_domain_size(self, rng):
        # The paper's Figure 8(d/h) observation: through the spanner the error
        # does not grow with the domain size (the strategy is identity-like).
        epsilon = 0.5
        errors = {}
        for k in (64, 256):
            domain = Domain((k,))
            policy = threshold_policy(domain, 4)
            spanner = approximate_with_line_spanner(policy, 4)
            mechanism = TreeTransformMechanism(
                policy, epsilon, spanner=spanner, consistency="none"
            )
            database = Database(domain, np.zeros(k))
            workload = random_range_queries_workload(domain, 100, random_state=1)
            true_answers = workload.answer(database)
            trial_errors = []
            for _ in range(10):
                noisy = mechanism.answer(workload, database, rng)
                trial_errors.append(mean_squared_error(true_answers, noisy))
            errors[k] = np.mean(trial_errors)
        assert errors[256] < 3 * errors[64]

    def test_consistency_helps_on_sparse_data(self, rng):
        epsilon = 0.1
        domain = Domain((256,))
        counts = np.zeros(256)
        counts[[17, 120]] = [40.0, 90.0]
        database = Database(domain, counts)
        policy = line_policy(domain)
        workload = identity_workload(domain)
        raw = TreeTransformMechanism(
            policy, epsilon, laplace_estimator_factory, consistency="none"
        )
        consistent = TreeTransformMechanism(
            policy, epsilon, laplace_estimator_factory, consistency="auto"
        )
        true_answers = workload.answer(database)

        def mean_error(mechanism):
            return np.mean(
                [
                    mean_squared_error(true_answers, mechanism.answer(workload, database, rng))
                    for _ in range(8)
                ]
            )

        assert mean_error(consistent) < 0.5 * mean_error(raw)

    def test_dawa_estimator_runs(self, line_policy_16, sparse_database_16, rng):
        mechanism = TreeTransformMechanism(
            line_policy_16, 0.5, dawa_estimator_factory, consistency="auto"
        )
        workload = identity_workload(line_policy_16.domain)
        answers = mechanism.answer(workload, sparse_database_16, rng)
        assert answers.shape == (16,)

    def test_custom_estimator_factory_receives_effective_epsilon(self, theta_policy_16):
        received = {}

        def factory(epsilon, size):
            received["epsilon"] = epsilon
            received["size"] = size
            return LaplaceHistogram(epsilon)

        spanner = approximate_with_line_spanner(theta_policy_16, 3)
        mechanism = TreeTransformMechanism(theta_policy_16, 0.9, factory, spanner=spanner)
        database = Database(theta_policy_16.domain, np.ones(16))
        mechanism.answer(identity_workload(theta_policy_16.domain), database, 0)
        assert received["epsilon"] == pytest.approx(0.3)
        assert received["size"] == mechanism.tree.num_edges


class TestTransformedEstimate:
    def test_estimate_respects_monotone_constraint(self, line_policy_16, dense_database_16, rng):
        mechanism = TreeTransformMechanism(line_policy_16, 0.2, consistency="auto")
        estimate = mechanism.estimate_transformed_database(dense_database_16, rng)
        order = mechanism.tree.monotone_root_path_indices()
        assert np.all(np.diff(estimate[order]) >= -1e-9)

    def test_estimate_respects_bounds(self, line_policy_16, dense_database_16, rng):
        mechanism = TreeTransformMechanism(line_policy_16, 0.2, consistency="auto")
        estimate = mechanism.estimate_transformed_database(dense_database_16, rng)
        assert np.all(estimate >= -1e-9)
        assert np.all(estimate <= dense_database_16.scale + 1e-9)

    def test_nonnegative_mode_for_star_policy(self, rng):
        policy = star_policy(Domain((8,)), center=0)
        database = Database(Domain((8,)), np.arange(8, dtype=float))
        mechanism = TreeTransformMechanism(policy, 0.5, consistency="nonnegative")
        estimate = mechanism.estimate_transformed_database(database, rng)
        assert np.all(estimate >= -1e-9)


class TestBlowfishPrivacyProperty:
    def test_output_distribution_ratio_on_neighbors(self):
        """Statistical check of the (ε, G)-Blowfish guarantee for the tree mechanism.

        Using a coarse discretisation of the output of a single released count,
        the empirical probability ratio between two Blowfish-neighboring
        databases must stay within exp(ε) up to sampling slack.
        """
        epsilon = 1.0
        domain = Domain((4,))
        policy = line_policy(domain)
        workload = identity_workload(domain).subset([1])
        first = Database(domain, np.array([2.0, 3.0, 1.0, 4.0]))
        second = Database(domain, np.array([2.0, 2.0, 2.0, 4.0]))  # one record moved 1->2
        mechanism = TreeTransformMechanism(policy, epsilon, consistency="none")
        rng = np.random.default_rng(0)
        bins = np.linspace(-10, 15, 6)
        trials = 4000
        counts_first = np.zeros(len(bins) + 1)
        counts_second = np.zeros(len(bins) + 1)
        for _ in range(trials):
            counts_first[np.digitize(mechanism.answer(workload, first, rng)[0], bins)] += 1
            counts_second[np.digitize(mechanism.answer(workload, second, rng)[0], bins)] += 1
        mask = (counts_first > 80) & (counts_second > 80)
        ratios = counts_first[mask] / counts_second[mask]
        assert np.all(ratios <= np.exp(epsilon) * 1.35)
        assert np.all(ratios >= np.exp(-epsilon) / 1.35)
