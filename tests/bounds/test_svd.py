"""Tests for :mod:`repro.bounds.svd` (the Li–Miklau bound and Figure 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import (
    blowfish_svd_lower_bound,
    curves_by_series,
    figure10_curves,
    privacy_constant,
    svd_lower_bound,
)
from repro.core import Domain, all_range_queries_workload, identity_workload
from repro.exceptions import ExperimentError
from repro.policy import bounded_dp_policy, line_policy, threshold_policy


class TestPrivacyConstant:
    def test_formula(self):
        assert privacy_constant(1.0, 0.001) == pytest.approx(2 * np.log(2000))

    def test_scales_with_epsilon(self):
        assert privacy_constant(0.5, 0.001) == pytest.approx(4 * privacy_constant(1.0, 0.001))

    def test_invalid_arguments(self):
        with pytest.raises(ExperimentError):
            privacy_constant(0.0, 0.001)
        with pytest.raises(ExperimentError):
            privacy_constant(1.0, 1.5)


class TestSvdLowerBound:
    def test_identity_workload_value(self):
        # All singular values of I_k are 1, so the bound is P * k^2 / k = P * k.
        domain = Domain((16,))
        bound = svd_lower_bound(identity_workload(domain).matrix, 1.0, 0.001)
        assert bound == pytest.approx(privacy_constant(1.0, 0.001) * 16)

    def test_bound_positive_for_ranges(self):
        domain = Domain((16,))
        bound = svd_lower_bound(all_range_queries_workload(domain).matrix, 1.0, 0.001)
        assert bound > 0

    def test_bound_grows_with_domain_size(self):
        small = svd_lower_bound(all_range_queries_workload(Domain((16,))).matrix, 1.0, 0.001)
        large = svd_lower_bound(all_range_queries_workload(Domain((48,))).matrix, 1.0, 0.001)
        assert large > small

    def test_dense_and_sparse_agree(self):
        domain = Domain((12,))
        workload = all_range_queries_workload(domain)
        sparse_bound = svd_lower_bound(workload.matrix, 1.0, 0.001)
        dense_bound = svd_lower_bound(workload.dense(), 1.0, 0.001)
        assert sparse_bound == pytest.approx(dense_bound)

    def test_blowfish_bound_for_line_policy_is_below_unbounded(self):
        # Figure 10a at theta = 1: the Blowfish bound sits below the DP bound.
        domain = Domain((48,))
        workload = all_range_queries_workload(domain)
        unbounded = svd_lower_bound(workload.matrix, 1.0, 0.001)
        blowfish = blowfish_svd_lower_bound(line_policy(domain), workload, 1.0, 0.001)
        assert blowfish < unbounded

    def test_blowfish_bound_achievable_by_mechanism(self):
        # Sanity: the lower bound must not exceed the error actually achieved by
        # the Theorem 5.2 mechanism (2 * 2/eps^2 per query, summed over queries).
        domain = Domain((32,))
        workload = all_range_queries_workload(domain)
        policy = line_policy(domain)
        bound = blowfish_svd_lower_bound(policy, workload, epsilon=1.0, delta=0.001)
        achievable_total = workload.num_queries * 4.0 / 1.0**2
        # The (eps, delta) bound uses a generous constant; compare orders of magnitude.
        assert bound <= 40 * achievable_total


class TestFigure10Curves:
    def test_series_present_1d(self):
        points = figure10_curves(dimension=1, domain_sizes=(16, 32), thetas=(1, 2))
        series = set(curves_by_series(points))
        assert series == {"unbounded DP", "theta=1", "theta=2"}

    def test_series_present_2d(self):
        points = figure10_curves(dimension=2, domain_sizes=(16,), thetas=(1, 2))
        series = set(curves_by_series(points))
        assert series == {"unbounded DP", "bounded DP", "theta=1", "theta=2"}

    def test_curves_sorted_by_domain_size(self):
        points = figure10_curves(dimension=1, domain_sizes=(32, 16), thetas=(1,))
        for series_points in curves_by_series(points).values():
            sizes = [p.domain_size for p in series_points]
            assert sizes == sorted(sizes)

    def test_invalid_dimension(self):
        with pytest.raises(ExperimentError):
            figure10_curves(dimension=3)

    def test_non_square_2d_domain_rejected(self):
        with pytest.raises(ExperimentError):
            figure10_curves(dimension=2, domain_sizes=(15,), thetas=(1,))

    def test_qualitative_shape_1d(self):
        # theta=1 grows more slowly than unbounded DP (the Figure 10a reading).
        points = figure10_curves(dimension=1, domain_sizes=(16, 64), thetas=(1,))
        grouped = curves_by_series(points)
        unbounded_growth = grouped["unbounded DP"][-1].bound / grouped["unbounded DP"][0].bound
        theta1_growth = grouped["theta=1"][-1].bound / grouped["theta=1"][0].bound
        assert theta1_growth < unbounded_growth

    def test_qualitative_shape_2d(self):
        # Every theta beats bounded DP (the Figure 10b reading).
        points = figure10_curves(dimension=2, domain_sizes=(36,), thetas=(1, 2, 3))
        grouped = curves_by_series(points)
        bounded = grouped["bounded DP"][0].bound
        for theta in (1, 2, 3):
            assert grouped[f"theta={theta}"][0].bound <= bounded
