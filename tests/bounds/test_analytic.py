"""Tests for :mod:`repro.bounds.analytic` (the Figure 3 bounds)."""

from __future__ import annotations

import pytest

from repro.bounds import (
    blowfish_grid_error_per_query,
    blowfish_improvement_factor,
    blowfish_line_error_per_query,
    blowfish_theta_grid_error_per_query,
    blowfish_theta_line_error_per_query,
    figure3_table,
    privelet_error_per_query,
)
from repro.exceptions import ExperimentError


class TestIndividualBounds:
    def test_line_bound_is_domain_independent(self):
        assert blowfish_line_error_per_query(1.0, 64) == blowfish_line_error_per_query(1.0, 4096)

    def test_line_bound_scales_with_epsilon(self):
        assert blowfish_line_error_per_query(0.5, 64) == 4 * blowfish_line_error_per_query(1.0, 64)

    def test_privelet_bound_grows_with_domain(self):
        assert privelet_error_per_query(1.0, 4096) > privelet_error_per_query(1.0, 64)

    def test_privelet_bound_grows_with_dimension(self):
        assert privelet_error_per_query(1.0, 64, d=2) > privelet_error_per_query(1.0, 64, d=1)

    def test_theta_line_bound_between_line_and_privelet(self):
        epsilon, k, theta = 1.0, 4096, 16
        assert (
            blowfish_line_error_per_query(epsilon, k)
            < blowfish_theta_line_error_per_query(epsilon, k, theta)
            < privelet_error_per_query(epsilon, k)
        )

    def test_theta_one_reduces_to_line_bound(self):
        assert blowfish_theta_line_error_per_query(1.0, 256, 1) == blowfish_line_error_per_query(
            1.0, 256
        )

    def test_grid_bound_d1_reduces_to_line(self):
        assert blowfish_grid_error_per_query(1.0, 256, 1) == blowfish_line_error_per_query(1.0, 256)

    def test_grid_bound_beats_privelet_bound(self):
        # Theorem 5.4: a log^3 k factor improvement for fixed d.
        assert blowfish_grid_error_per_query(1.0, 4096, 2) < privelet_error_per_query(
            1.0, 4096, 2
        )

    def test_theta_grid_reduces_to_grid_at_theta_one(self):
        assert blowfish_theta_grid_error_per_query(1.0, 256, 2, 1) == blowfish_grid_error_per_query(
            1.0, 256, 2
        )

    def test_improvement_factor_larger_for_small_theta(self):
        # Discussion at the end of Section 5.3: the win shrinks as d log theta grows.
        assert blowfish_improvement_factor(1.0, 4096, 2, theta=1) > blowfish_improvement_factor(
            1.0, 4096, 2, theta=64
        )

    def test_location_privacy_regime_wins(self):
        # d = 2 and theta << k (the paper's location-privacy argument): Blowfish wins.
        assert blowfish_improvement_factor(1.0, 4096, 2, theta=4) > 1.0

    @pytest.mark.parametrize(
        "call",
        [
            lambda: privelet_error_per_query(0.0, 64),
            lambda: privelet_error_per_query(1.0, 1),
            lambda: blowfish_grid_error_per_query(1.0, 64, 0),
            lambda: blowfish_theta_line_error_per_query(1.0, 64, 0),
        ],
    )
    def test_invalid_arguments(self, call):
        with pytest.raises(ExperimentError):
            call()


class TestFigure3Table:
    def test_has_four_rows(self):
        assert len(figure3_table()) == 4

    def test_every_row_shows_improvement(self):
        for row in figure3_table(epsilon=1.0, k=4096, d=2, theta=4):
            assert row.improvement > 1.0

    def test_rows_carry_bound_strings(self):
        rows = figure3_table()
        assert rows[0].workload == "R_k"
        assert "eps" in rows[0].blowfish_bound

    def test_epsilon_cancels_in_improvement(self):
        strict = figure3_table(epsilon=0.01)
        loose = figure3_table(epsilon=1.0)
        for a, b in zip(strict, loose):
            assert a.improvement == pytest.approx(b.improvement)
