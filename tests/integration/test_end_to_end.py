"""End-to-end integration tests across the whole library.

Each test is a miniature version of a complete use case: load (generate) a
dataset, pick a policy, plan or build mechanisms, answer a workload and check
both the exactness plumbing and the qualitative utility ordering of the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blowfish import (
    blowfish_transformed_consistent,
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
    blowfish_transformed_privelet_grid,
    dp_laplace_baseline,
    dp_privelet_baseline,
    plan_mechanism,
    verify_answer_preservation,
    verify_sensitivity_equality,
)
from repro.bounds import blowfish_svd_lower_bound
from repro.core import (
    all_range_queries_workload,
    identity_workload,
    mean_squared_error,
    random_range_queries_workload,
)
from repro.data import load_dataset
from repro.experiments import run_comparison
from repro.policy import grid_policy, line_policy, threshold_policy


class TestHistogramPipeline:
    def test_full_hist_pipeline_on_dataset_g(self, rng):
        database = load_dataset("G", random_state=1).aggregate(8)  # domain 512
        policy = line_policy(database.domain)
        workload = identity_workload(database.domain)
        epsilon = 0.1

        assert verify_answer_preservation(policy, workload, database)
        assert verify_sensitivity_equality(policy, workload)

        algorithms = [
            dp_laplace_baseline(epsilon),
            blowfish_transformed_laplace(policy, epsilon),
            blowfish_transformed_consistent(policy, epsilon),
        ]
        results = run_comparison(
            algorithms, workload, database, epsilon=epsilon, trials=2, random_state=rng
        )
        errors = {r.algorithm: r.mean_error for r in results}
        assert errors["Transformed+Laplace"] < errors["Laplace"]
        assert errors["Transformed+ConsistentEst"] < errors["Transformed+Laplace"]


class TestRangeQueryPipeline:
    def test_full_1d_pipeline_with_planner(self, rng):
        database = load_dataset("E", random_state=2).aggregate(8)  # domain 512
        policy = threshold_policy(database.domain, 4)
        workload = random_range_queries_workload(database.domain, 200, random_state=3)
        epsilon = 0.1

        plan = plan_mechanism(policy, epsilon)
        assert plan.route == "spanner"

        baseline = dp_privelet_baseline(epsilon, database.domain.shape)
        true_answers = workload.answer(database)
        plan_error = mean_squared_error(
            true_answers, plan.algorithm.answer(workload, database, rng)
        )
        baseline_error = mean_squared_error(
            true_answers, baseline.answer(workload, database, rng)
        )
        assert plan_error < baseline_error

    def test_full_2d_pipeline(self, rng):
        database = load_dataset("T25", random_state=4)
        policy = grid_policy(database.domain)
        workload = random_range_queries_workload(database.domain, 200, random_state=5)
        epsilon = 0.1

        blowfish = blowfish_transformed_privelet_grid(policy, epsilon)
        baseline = dp_privelet_baseline(epsilon, database.domain.shape)
        true_answers = workload.answer(database)
        blowfish_error = np.mean(
            [
                mean_squared_error(true_answers, blowfish.answer(workload, database, rng))
                for _ in range(2)
            ]
        )
        baseline_error = np.mean(
            [
                mean_squared_error(true_answers, baseline.answer(workload, database, rng))
                for _ in range(2)
            ]
        )
        assert blowfish_error < baseline_error


class TestLowerBoundConsistency:
    def test_mechanism_error_respects_lower_bound_shape(self, rng):
        # The achievable error of the Theorem 5.2 mechanism must exceed the
        # (epsilon, delta) SVD lower bound scaled to pure-epsilon conservatively:
        # we only check it is not absurdly below (within a constant factor).
        domain = load_dataset("G", random_state=1).aggregate(128).domain  # size 32
        database = load_dataset("G", random_state=1).aggregate(128)
        policy = line_policy(domain)
        workload = all_range_queries_workload(domain)
        epsilon = 1.0
        bound = blowfish_svd_lower_bound(policy, workload, epsilon=epsilon, delta=0.001)
        mechanism = blowfish_transformed_laplace(policy, epsilon)
        true_answers = workload.answer(database)
        total_error = np.mean(
            [
                np.sum(
                    (mechanism.answer(workload, database, rng) - true_answers) ** 2
                )
                for _ in range(5)
            ]
        )
        # The (eps, delta) constant P = 2 ln(2/delta) ~ 15 is generous; allow it.
        assert total_error > bound / 50


class TestDataDependenceOrdering:
    def test_dawa_transformed_wins_on_sparse_loses_less_on_dense(self, rng):
        epsilon = 1.0
        sparse = load_dataset("F", random_state=3).aggregate(8)  # very sparse, 512 cells
        dense = load_dataset("A", random_state=3).aggregate(8)  # dense, 512 cells
        results = {}
        for label, database in (("sparse", sparse), ("dense", dense)):
            policy = line_policy(database.domain)
            workload = identity_workload(database.domain)
            true_answers = workload.answer(database)
            laplace = blowfish_transformed_laplace(policy, epsilon)
            dawa = blowfish_transformed_dawa(policy, epsilon)
            laplace_error = np.mean(
                [
                    mean_squared_error(true_answers, laplace.answer(workload, database, rng))
                    for _ in range(3)
                ]
            )
            dawa_error = np.mean(
                [
                    mean_squared_error(true_answers, dawa.answer(workload, database, rng))
                    for _ in range(3)
                ]
            )
            results[label] = dawa_error / laplace_error
        # Data dependence pays off more on the sparse dataset.
        assert results["sparse"] < results["dense"]
