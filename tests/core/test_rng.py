"""Tests for :mod:`repro.core.rng`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = ensure_rng(42).integers(0, 1000, 5)
        second = ensure_rng(42).integers(0, 1000, 5)
        assert np.array_equal(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_differ(self):
        streams = spawn_rngs(0, 2)
        assert not np.array_equal(
            streams[0].integers(0, 1000, 10), streams[1].integers(0, 1000, 10)
        )

    def test_deterministic_given_seed(self):
        first = [g.integers(0, 1000, 3).tolist() for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 1000, 3).tolist() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
