"""Tests for :mod:`repro.core.sensitivity`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    Domain,
    bounded_sensitivity,
    cumulative_workload,
    identity_workload,
    per_edge_sensitivities,
    policy_sensitivity_from_incidence,
    total_workload,
    unbounded_sensitivity,
    workload_sensitivity,
)
from repro.exceptions import WorkloadError
from repro.policy import PolicyTransform, line_policy


class TestUnboundedSensitivity:
    def test_identity_is_one(self, line_domain_16):
        assert unbounded_sensitivity(identity_workload(line_domain_16).matrix) == 1.0

    def test_cumulative_is_k(self, line_domain_16):
        assert unbounded_sensitivity(cumulative_workload(line_domain_16).matrix) == 16.0

    def test_dense_and_sparse_agree(self):
        matrix = np.array([[1.0, -2.0], [0.0, 3.0]])
        assert unbounded_sensitivity(matrix) == unbounded_sensitivity(sp.csr_matrix(matrix))
        assert unbounded_sensitivity(matrix) == 5.0

    def test_empty_matrix(self):
        assert unbounded_sensitivity(sp.csr_matrix((3, 4))) == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(WorkloadError):
            unbounded_sensitivity(np.ones((2, 2, 2)))


class TestBoundedSensitivity:
    def test_identity_is_two(self, line_domain_16):
        # Replacing one record changes two cells by 1 each.
        assert bounded_sensitivity(identity_workload(line_domain_16).matrix) == 2.0

    def test_total_is_zero(self, line_domain_16):
        # The total count does not change when a record is replaced.
        assert bounded_sensitivity(total_workload(line_domain_16).matrix) == 0.0

    def test_cumulative_is_k_minus_one(self, line_domain_16):
        # Replacing the smallest value by the largest flips k-1 prefix sums.
        assert bounded_sensitivity(cumulative_workload(line_domain_16).matrix) == 15.0

    def test_bounded_at_most_twice_unbounded(self, line_domain_16):
        for workload in (identity_workload(line_domain_16), cumulative_workload(line_domain_16)):
            assert bounded_sensitivity(workload.matrix) <= 2 * unbounded_sensitivity(
                workload.matrix
            )

    def test_workload_sensitivity_dispatch(self, line_domain_16):
        workload = identity_workload(line_domain_16)
        assert workload_sensitivity(workload) == 1.0
        assert workload_sensitivity(workload, bounded=True) == 2.0


class TestPolicySensitivity:
    def test_matches_lemma_4_7(self, line_policy_16, line_domain_16):
        # Policy sensitivity computed through P_G equals the direct definition.
        transform = PolicyTransform(line_policy_16)
        workload = cumulative_workload(line_domain_16)
        via_incidence = policy_sensitivity_from_incidence(
            transform.reduce_workload_matrix(workload), transform.incidence
        )
        assert via_incidence == pytest.approx(transform.policy_sensitivity(workload))

    def test_identity_under_line_policy_is_two(self, line_policy_16, line_domain_16):
        transform = PolicyTransform(line_policy_16)
        assert transform.policy_sensitivity(identity_workload(line_domain_16)) == 2.0

    def test_cumulative_under_line_policy_is_one(self, line_policy_16, line_domain_16):
        # Moving a record between adjacent values changes exactly one prefix sum.
        transform = PolicyTransform(line_policy_16)
        assert transform.policy_sensitivity(cumulative_workload(line_domain_16)) == 1.0

    def test_per_edge_sensitivities_max_equals_policy_sensitivity(
        self, line_policy_16, line_domain_16
    ):
        transform = PolicyTransform(line_policy_16)
        workload = cumulative_workload(line_domain_16)
        per_edge = per_edge_sensitivities(
            transform.reduce_workload_matrix(workload), transform.incidence
        )
        assert per_edge.shape[0] == transform.num_edges
        assert per_edge.max() == pytest.approx(transform.policy_sensitivity(workload))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            policy_sensitivity_from_incidence(np.ones((2, 3)), np.ones((4, 2)))

    def test_policy_sensitivity_never_exceeds_twice_unbounded(self, line_domain_16):
        # A single policy edge move changes the answer by at most the bounded-DP
        # sensitivity, which is at most twice the unbounded-DP sensitivity.
        policy = line_policy(line_domain_16)
        transform = PolicyTransform(policy)
        for workload in (identity_workload(line_domain_16), cumulative_workload(line_domain_16)):
            assert transform.policy_sensitivity(workload) <= 2 * unbounded_sensitivity(
                workload.matrix
            ) + 1e-9
