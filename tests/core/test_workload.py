"""Tests for :mod:`repro.core.workload`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    marginal_workload,
    total_workload,
    workload_from_rows,
)
from repro.core.workload import Workload
from repro.exceptions import WorkloadError


class TestWorkloadClass:
    def test_shape_and_counts(self, line_domain_16):
        workload = identity_workload(line_domain_16)
        assert workload.shape == (16, 16)
        assert workload.num_queries == 16
        assert workload.num_columns == 16

    def test_rejects_wrong_number_of_columns(self, line_domain_16):
        with pytest.raises(WorkloadError):
            Workload(line_domain_16, np.ones((3, 15)))

    def test_accepts_dense_and_sparse(self, line_domain_16):
        dense = Workload(line_domain_16, np.ones((2, 16)))
        sparse = Workload(line_domain_16, sp.csr_matrix(np.ones((2, 16))))
        assert np.allclose(dense.dense(), sparse.dense())

    def test_one_dimensional_matrix_becomes_row(self, line_domain_16):
        workload = Workload(line_domain_16, np.ones(16))
        assert workload.shape == (1, 16)

    def test_answer(self, line_domain_16, dense_database_16):
        workload = identity_workload(line_domain_16)
        assert np.allclose(workload.answer(dense_database_16), dense_database_16.counts)

    def test_answer_rejects_domain_mismatch(self, dense_database_16):
        workload = identity_workload(Domain((8,)))
        with pytest.raises(WorkloadError):
            workload.answer(dense_database_16)

    def test_answer_vector_rejects_wrong_length(self, line_domain_16):
        workload = identity_workload(line_domain_16)
        with pytest.raises(WorkloadError):
            workload.answer_vector(np.ones(4))

    def test_row_access(self, line_domain_16):
        workload = cumulative_workload(line_domain_16)
        row = workload.row(3)
        assert row.sum() == 4
        with pytest.raises(WorkloadError):
            workload.row(16)

    def test_stack(self, line_domain_16):
        stacked = identity_workload(line_domain_16).stack(total_workload(line_domain_16))
        assert stacked.num_queries == 17

    def test_subset(self, line_domain_16):
        workload = cumulative_workload(line_domain_16)
        subset = workload.subset([0, 15])
        assert subset.num_queries == 2
        assert subset.row(1).sum() == 16

    def test_subset_rejects_bad_index(self, line_domain_16):
        with pytest.raises(WorkloadError):
            identity_workload(line_domain_16).subset([20])

    def test_is_counting(self, line_domain_16):
        assert identity_workload(line_domain_16).is_counting()
        weighted = Workload(line_domain_16, 0.5 * np.ones((1, 16)))
        assert not weighted.is_counting()

    def test_right_multiply_shape_check(self, line_domain_16):
        workload = identity_workload(line_domain_16)
        with pytest.raises(WorkloadError):
            workload.right_multiply(np.ones((4, 4)))


class TestNamedWorkloads:
    def test_identity_answers_histogram(self, line_domain_16, sparse_database_16):
        answers = identity_workload(line_domain_16).answer(sparse_database_16)
        assert np.allclose(answers, sparse_database_16.counts)

    def test_cumulative_matches_prefix_sums(self, line_domain_16, dense_database_16):
        answers = cumulative_workload(line_domain_16).answer(dense_database_16)
        assert np.allclose(answers, np.cumsum(dense_database_16.counts))

    def test_cumulative_rejects_2d(self, grid_domain_5):
        with pytest.raises(WorkloadError):
            cumulative_workload(grid_domain_5)

    def test_total_workload(self, line_domain_16, dense_database_16):
        answers = total_workload(line_domain_16).answer(dense_database_16)
        assert answers.shape == (1,)
        assert answers[0] == pytest.approx(dense_database_16.scale)

    def test_marginal_workload_sums_to_total(self, grid_domain_5, grid_database_5):
        for axis in range(2):
            marginal = marginal_workload(grid_domain_5, axis).answer(grid_database_5)
            assert marginal.shape == (5,)
            assert marginal.sum() == pytest.approx(grid_database_5.scale)

    def test_marginal_matches_numpy(self, grid_domain_5, grid_database_5):
        expected = grid_database_5.as_array().sum(axis=1)
        actual = marginal_workload(grid_domain_5, 0).answer(grid_database_5)
        assert np.allclose(actual, expected)

    def test_marginal_rejects_bad_axis(self, grid_domain_5):
        with pytest.raises(WorkloadError):
            marginal_workload(grid_domain_5, 2)

    def test_workload_from_rows(self, line_domain_16):
        rows = [np.ones(16), np.zeros(16)]
        workload = workload_from_rows(line_domain_16, rows, name="custom")
        assert workload.num_queries == 2
        assert workload.name == "custom"


class TestSensitivities:
    def test_identity_sensitivity_is_one(self, line_domain_16):
        assert identity_workload(line_domain_16).l1_sensitivity() == 1.0

    def test_cumulative_sensitivity_is_k(self, line_domain_16):
        # Example 2.2 of the paper: the sensitivity of C_k is k.
        assert cumulative_workload(line_domain_16).l1_sensitivity() == 16.0

    def test_total_sensitivity_is_one(self, line_domain_16):
        assert total_workload(line_domain_16).l1_sensitivity() == 1.0
