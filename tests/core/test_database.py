"""Tests for :mod:`repro.core.database`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain
from repro.exceptions import DataError, DomainError


class TestConstruction:
    def test_basic_construction(self, line_domain_16):
        database = Database(line_domain_16, np.ones(16))
        assert database.scale == 16

    def test_counts_are_float64(self, line_domain_16):
        database = Database(line_domain_16, np.arange(16, dtype=np.int32))
        assert database.counts.dtype == np.float64

    def test_rejects_wrong_length(self, line_domain_16):
        with pytest.raises(DataError):
            Database(line_domain_16, np.ones(15))

    def test_rejects_negative_counts(self, line_domain_16):
        counts = np.ones(16)
        counts[3] = -1
        with pytest.raises(DataError):
            Database(line_domain_16, counts)

    def test_rejects_non_finite_counts(self, line_domain_16):
        counts = np.ones(16)
        counts[3] = np.nan
        with pytest.raises(DataError):
            Database(line_domain_16, counts)

    def test_multi_dimensional_counts_are_flattened(self):
        database = Database(Domain((2, 3)), np.ones((2, 3)))
        assert database.counts.shape == (6,)

    def test_from_records_counts_cells(self):
        domain = Domain((4,))
        database = Database.from_records(domain, [0, 0, 3, 1])
        assert list(database.counts) == [2, 1, 0, 1]

    def test_from_records_multi_dimensional(self):
        domain = Domain((2, 2))
        database = Database.from_records(domain, [(0, 1), (1, 1), (1, 1)])
        assert database.counts[domain.index_of((1, 1))] == 2

    def test_from_histogram_infers_domain(self):
        histogram = np.arange(6).reshape(2, 3)
        database = Database.from_histogram(histogram)
        assert database.domain == Domain((2, 3))
        assert database.scale == 15


class TestStatistics:
    def test_scale(self, sparse_database_16):
        assert sparse_database_16.scale == 20

    def test_zero_fraction(self, sparse_database_16):
        assert sparse_database_16.zero_fraction == pytest.approx(12 / 16)

    def test_nonzero_cells(self, sparse_database_16):
        assert sparse_database_16.nonzero_cells == 4

    def test_as_array_shape(self, grid_database_5):
        assert grid_database_5.as_array().shape == (5, 5)

    def test_vector_alias(self, sparse_database_16):
        assert np.array_equal(sparse_database_16.vector, sparse_database_16.counts)


class TestOperations:
    def test_rename(self, sparse_database_16):
        renamed = sparse_database_16.rename("other")
        assert renamed.name == "other"
        assert np.array_equal(renamed.counts, sparse_database_16.counts)

    def test_aggregate_preserves_scale(self, dense_database_16):
        aggregated = dense_database_16.aggregate(4)
        assert aggregated.domain.size == 4
        assert aggregated.scale == dense_database_16.scale

    def test_aggregate_sums_blocks(self):
        database = Database(Domain((4,)), np.array([1.0, 2.0, 3.0, 4.0]))
        aggregated = database.aggregate(2)
        assert list(aggregated.counts) == [3.0, 7.0]

    def test_aggregate_two_dimensional(self):
        database = Database(Domain((4, 4)), np.ones(16))
        aggregated = database.aggregate(2)
        assert aggregated.domain.shape == (2, 2)
        assert np.all(aggregated.counts == 4.0)

    def test_prefix_sums(self):
        database = Database(Domain((4,)), np.array([1.0, 0.0, 2.0, 3.0]))
        assert list(database.prefix_sums()) == [1.0, 1.0, 3.0, 6.0]

    def test_prefix_sums_rejects_2d(self, grid_database_5):
        with pytest.raises(DomainError):
            grid_database_5.prefix_sums()

    def test_with_counts_keeps_domain(self, sparse_database_16):
        new = sparse_database_16.with_counts(np.ones(16))
        assert new.domain == sparse_database_16.domain
        assert new.scale == 16
