"""Tests for :mod:`repro.core.range_queries`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    RangeQuery,
    all_range_queries,
    all_range_queries_workload,
    cumulative_workload,
    prefix_range_queries_workload,
    random_range_queries,
    random_range_queries_workload,
    range_queries_workload,
)
from repro.exceptions import WorkloadError


class TestRangeQuery:
    def test_num_cells_1d(self):
        assert RangeQuery((2,), (5,)).num_cells() == 4

    def test_num_cells_2d(self):
        assert RangeQuery((1, 1), (2, 3)).num_cells() == 6

    def test_rejects_inverted_bounds(self):
        with pytest.raises(WorkloadError):
            RangeQuery((3,), (2,))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(WorkloadError):
            RangeQuery((1, 2), (3,))

    def test_contains(self):
        query = RangeQuery((1, 1), (3, 3))
        assert query.contains((2, 2))
        assert not query.contains((0, 2))

    def test_cells_enumeration(self):
        cells = list(RangeQuery((0, 0), (1, 1)).cells())
        assert set(cells) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_to_row(self):
        domain = Domain((4,))
        row = RangeQuery((1,), (2,)).to_row(domain)
        assert list(row) == [0, 1, 1, 0]

    def test_to_row_rejects_dimension_mismatch(self):
        with pytest.raises(WorkloadError):
            RangeQuery((1,), (2,)).to_row(Domain((4, 4)))

    def test_evaluate_matches_row(self, grid_domain_5, grid_database_5):
        query = RangeQuery((1, 0), (3, 2))
        via_row = query.to_row(grid_domain_5) @ grid_database_5.counts
        via_eval = query.evaluate(grid_database_5.counts, grid_domain_5)
        assert via_eval == pytest.approx(via_row)


class TestWorkloadBuilders:
    def test_all_range_queries_count_1d(self):
        domain = Domain((5,))
        assert len(all_range_queries(domain)) == 15  # k(k+1)/2

    def test_all_range_queries_count_2d(self):
        domain = Domain((3, 3))
        assert len(all_range_queries(domain)) == 36  # (3*4/2)^2

    def test_all_range_queries_workload_answers(self):
        domain = Domain((4,))
        database = Database(domain, np.array([1.0, 2.0, 3.0, 4.0]))
        workload = all_range_queries_workload(domain)
        answers = workload.answer(database)
        assert answers.max() == pytest.approx(10.0)
        assert answers.min() == pytest.approx(1.0)

    def test_random_range_queries_count_and_bounds(self):
        domain = Domain((10, 10))
        queries = random_range_queries(domain, 50, random_state=3)
        assert len(queries) == 50
        for query in queries:
            assert all(0 <= lo <= hi < 10 for lo, hi in zip(query.lower, query.upper))

    def test_random_range_queries_reproducible(self):
        domain = Domain((20,))
        first = random_range_queries(domain, 10, random_state=7)
        second = random_range_queries(domain, 10, random_state=7)
        assert first == second

    def test_random_range_queries_rejects_negative_count(self):
        with pytest.raises(WorkloadError):
            random_range_queries(Domain((4,)), -1)

    def test_random_workload_is_counting(self):
        workload = random_range_queries_workload(Domain((12,)), 30, random_state=0)
        assert workload.is_counting()
        assert workload.num_queries == 30

    def test_prefix_ranges_match_cumulative(self, line_domain_16, dense_database_16):
        prefix = prefix_range_queries_workload(line_domain_16).answer(dense_database_16)
        cumulative = cumulative_workload(line_domain_16).answer(dense_database_16)
        assert np.allclose(prefix, cumulative)

    def test_prefix_ranges_rejects_2d(self, grid_domain_5):
        with pytest.raises(WorkloadError):
            prefix_range_queries_workload(grid_domain_5)

    def test_explicit_queries_workload(self, grid_domain_5, grid_database_5):
        queries = [RangeQuery((0, 0), (4, 4)), RangeQuery((2, 2), (2, 2))]
        workload = range_queries_workload(grid_domain_5, queries)
        answers = workload.answer(grid_database_5)
        assert answers[0] == pytest.approx(grid_database_5.scale)
        assert answers[1] == pytest.approx(grid_database_5.counts[grid_domain_5.index_of((2, 2))])

    def test_workload_rejects_mismatched_query_dimension(self, grid_domain_5):
        with pytest.raises(WorkloadError):
            range_queries_workload(grid_domain_5, [RangeQuery((0,), (1,))])
