"""Tests for :mod:`repro.core.domain`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain, common_domain, grid_domain, line_domain
from repro.exceptions import DomainError


class TestDomainConstruction:
    def test_one_dimensional_size(self):
        assert Domain((8,)).size == 8

    def test_multi_dimensional_size(self):
        assert Domain((4, 5, 6)).size == 120

    def test_ndim(self):
        assert Domain((4, 5)).ndim == 2

    def test_rejects_empty_shape(self):
        with pytest.raises(DomainError):
            Domain(())

    def test_rejects_non_positive_dimension(self):
        with pytest.raises(DomainError):
            Domain((4, 0))

    def test_shape_coerced_to_ints(self):
        domain = Domain((np.int64(3), np.int64(4)))
        assert domain.shape == (3, 4)
        assert all(isinstance(s, int) for s in domain.shape)

    def test_len_matches_size(self):
        assert len(Domain((3, 3))) == 9

    def test_equality_and_hash(self):
        assert Domain((4, 4)) == Domain((4, 4))
        assert Domain((4, 4)) != Domain((4, 5))
        assert hash(Domain((4, 4))) == hash(Domain((4, 4)))


class TestIndexing:
    def test_index_of_roundtrip(self):
        domain = Domain((3, 4, 5))
        for index in range(domain.size):
            assert domain.index_of(domain.cell_of(index)) == index

    def test_row_major_order(self):
        domain = Domain((2, 3))
        assert domain.index_of((0, 0)) == 0
        assert domain.index_of((0, 2)) == 2
        assert domain.index_of((1, 0)) == 3

    def test_index_of_rejects_wrong_dimension(self):
        with pytest.raises(DomainError):
            Domain((3, 3)).index_of((1,))

    def test_index_of_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            Domain((3, 3)).index_of((3, 0))

    def test_cell_of_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            Domain((3, 3)).cell_of(9)

    def test_iteration_is_flat_order(self):
        domain = Domain((2, 2))
        cells = list(domain)
        assert cells == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_all_cells_shape(self):
        domain = Domain((3, 4))
        cells = domain.all_cells()
        assert cells.shape == (12, 2)
        assert domain.index_of(tuple(cells[7])) == 7


class TestGeometry:
    def test_l1_distance(self):
        domain = Domain((5, 5))
        assert domain.l1_distance((0, 0), (2, 3)) == 5

    def test_l1_distance_symmetric(self):
        domain = Domain((5, 5))
        assert domain.l1_distance((1, 4), (3, 0)) == domain.l1_distance((3, 0), (1, 4))

    def test_l1_distance_rejects_bad_dimension(self):
        with pytest.raises(DomainError):
            Domain((5, 5)).l1_distance((1,), (2, 2))

    def test_contains_cell(self):
        domain = Domain((4, 4))
        assert domain.contains_cell((3, 3))
        assert not domain.contains_cell((4, 0))
        assert not domain.contains_cell((0,))


class TestCoarsen:
    def test_coarsen_halves_each_dimension(self):
        assert Domain((8, 8)).coarsen(2).shape == (4, 4)

    def test_coarsen_rejects_non_divisible(self):
        with pytest.raises(DomainError):
            Domain((9,)).coarsen(2)

    def test_coarsen_rejects_non_positive_factor(self):
        with pytest.raises(DomainError):
            Domain((8,)).coarsen(0)


class TestConvenienceConstructors:
    def test_line_domain(self):
        assert line_domain(10).shape == (10,)

    def test_grid_domain_default_dimension(self):
        assert grid_domain(6).shape == (6, 6)

    def test_grid_domain_custom_dimension(self):
        assert grid_domain(4, ndim=3).shape == (4, 4, 4)

    def test_grid_domain_rejects_bad_ndim(self):
        with pytest.raises(DomainError):
            grid_domain(4, ndim=0)

    def test_common_domain_accepts_identical(self):
        assert common_domain([Domain((4,)), Domain((4,))]) == Domain((4,))

    def test_common_domain_rejects_mismatch(self):
        with pytest.raises(DomainError):
            common_domain([Domain((4,)), Domain((5,))])

    def test_common_domain_rejects_empty(self):
        with pytest.raises(DomainError):
            common_domain([])
