"""Tests for :mod:`repro.core.error`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ErrorAccumulator,
    laplace_error,
    laplace_error_per_query,
    mean_absolute_error,
    mean_squared_error,
    squared_error,
)
from repro.exceptions import ExperimentError


class TestErrorMetrics:
    def test_squared_error(self):
        assert squared_error(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == 5.0

    def test_mean_squared_error(self):
        assert mean_squared_error(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == 2.5

    def test_mean_absolute_error(self):
        assert mean_absolute_error(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == 1.5

    def test_zero_for_equal_vectors(self):
        values = np.arange(10, dtype=float)
        assert squared_error(values, values) == 0.0
        assert mean_squared_error(values, values) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            squared_error(np.ones(3), np.ones(4))
        with pytest.raises(ExperimentError):
            mean_absolute_error(np.ones(3), np.ones(4))

    def test_empty_vectors(self):
        assert mean_squared_error(np.array([]), np.array([])) == 0.0
        assert mean_absolute_error(np.array([]), np.array([])) == 0.0


class TestLaplaceError:
    def test_matches_theorem_2_1(self):
        # ERROR = 2 q Delta^2 / eps^2.
        assert laplace_error(num_queries=10, sensitivity=3.0, epsilon=0.5) == pytest.approx(
            2 * 10 * 9 / 0.25
        )

    def test_per_query(self):
        assert laplace_error_per_query(1.0, 1.0) == 2.0

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ExperimentError):
            laplace_error(1, 1.0, 0.0)

    def test_rejects_negative_queries(self):
        with pytest.raises(ExperimentError):
            laplace_error(-1, 1.0, 1.0)

    def test_empirical_laplace_variance_matches(self, rng):
        # Sample mean of squared Laplace(b) noise should be close to 2 b^2.
        scale = 3.0
        samples = rng.laplace(0.0, scale, size=200_000)
        assert np.mean(samples**2) == pytest.approx(2 * scale**2, rel=0.05)


class TestErrorAccumulator:
    def test_mean_over_trials(self):
        accumulator = ErrorAccumulator()
        accumulator.add_value(2.0)
        accumulator.add_value(4.0)
        assert accumulator.num_trials == 2
        assert accumulator.mean == 3.0

    def test_add_trial_returns_value(self):
        accumulator = ErrorAccumulator()
        value = accumulator.add_trial(np.array([1.0, 1.0]), np.array([2.0, 1.0]))
        assert value == 0.5
        assert accumulator.mean == 0.5

    def test_std_error_zero_for_single_trial(self):
        accumulator = ErrorAccumulator()
        accumulator.add_value(1.0)
        assert accumulator.std_error == 0.0

    def test_std_error_positive_for_varied_trials(self):
        accumulator = ErrorAccumulator()
        accumulator.add_value(1.0)
        accumulator.add_value(3.0)
        assert accumulator.std_error > 0.0

    def test_summary_keys(self):
        accumulator = ErrorAccumulator()
        accumulator.add_value(1.0)
        summary = accumulator.summary()
        assert set(summary) == {"mean", "std_error", "trials"}

    def test_empty_accumulator_raises(self):
        with pytest.raises(ExperimentError):
            _ = ErrorAccumulator().mean
