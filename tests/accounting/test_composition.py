"""Tests for :mod:`repro.accounting.composition`."""

from __future__ import annotations

import pytest

from repro.accounting import (
    PrivacyAccountant,
    parallel_composition,
    sequential_composition,
)
from repro.exceptions import PrivacyBudgetError


class TestCompositionHelpers:
    def test_sequential_adds(self):
        assert sequential_composition([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_parallel_takes_max(self):
        assert parallel_composition([0.1, 0.5, 0.3]) == 0.5

    def test_parallel_empty_is_zero(self):
        assert parallel_composition([]) == 0.0

    def test_invalid_epsilons_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            sequential_composition([0.1, 0.0])
        with pytest.raises(PrivacyBudgetError):
            parallel_composition([-0.1])


class TestPrivacyAccountant:
    def test_sequential_charges_add(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge("stage-1", 0.25)
        accountant.charge("stage-2", 0.75)
        assert accountant.spent() == pytest.approx(1.0)
        assert accountant.remaining() == pytest.approx(0.0)

    def test_overdraft_rejected(self):
        accountant = PrivacyAccountant(total_epsilon=0.5)
        accountant.charge("stage-1", 0.4)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge("stage-2", 0.2)

    def test_parallel_charges_take_max(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge("group-a", 0.8, partition=["a"])
        accountant.charge("group-b", 0.8, partition=["b"])
        assert accountant.spent() == pytest.approx(0.8)

    def test_overlapping_partitions_add(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge("first", 0.4, partition=["a", "b"])
        accountant.charge("second", 0.4, partition=["b", "c"])
        assert accountant.spent() == pytest.approx(0.8)

    def test_mixed_sequential_and_parallel(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge("global", 0.2)
        accountant.charge("group-a", 0.5, partition=["a"])
        accountant.charge("group-b", 0.5, partition=["b"])
        assert accountant.spent() == pytest.approx(0.7)

    def test_invalid_total_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyAccountant(total_epsilon=0.0)

    def test_invalid_charge_rejected(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge("bad", 0.0)

    def test_dawa_style_budget_fits(self):
        # The DAWA split (rho*eps partitioning + (1-rho)*eps measurement) must
        # exactly exhaust the budget.
        accountant = PrivacyAccountant(total_epsilon=0.1)
        accountant.charge("partition", 0.025)
        accountant.charge("measure", 0.075)
        assert accountant.remaining() == pytest.approx(0.0, abs=1e-12)

    def test_slab_strategy_budget_is_parallel(self):
        # The Section 5.2.2 strategy measures disjoint slabs, each at full eps.
        accountant = PrivacyAccountant(total_epsilon=0.1)
        for slab in range(10):
            accountant.charge(f"slab-{slab}", 0.1, partition=[f"slab-{slab}"])
        assert accountant.spent() == pytest.approx(0.1)
