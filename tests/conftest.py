"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain
from repro.policy import grid_policy, line_policy, threshold_policy


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for noise-producing tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def line_domain_16() -> Domain:
    """A small one-dimensional domain."""
    return Domain((16,))


@pytest.fixture
def grid_domain_5() -> Domain:
    """A small two-dimensional domain."""
    return Domain((5, 5))


@pytest.fixture
def sparse_database_16(line_domain_16: Domain) -> Database:
    """A sparse database over the 16-cell line domain."""
    counts = np.zeros(16)
    counts[[1, 5, 6, 12]] = [3, 7, 1, 9]
    return Database(line_domain_16, counts, name="sparse16")


@pytest.fixture
def dense_database_16(line_domain_16: Domain) -> Database:
    """A dense database over the 16-cell line domain."""
    generator = np.random.default_rng(0)
    counts = generator.integers(1, 30, size=16).astype(float)
    return Database(line_domain_16, counts, name="dense16")


@pytest.fixture
def grid_database_5(grid_domain_5: Domain) -> Database:
    """A small database over the 5x5 grid domain."""
    generator = np.random.default_rng(1)
    counts = generator.integers(0, 10, size=25).astype(float)
    return Database(grid_domain_5, counts, name="grid5")


@pytest.fixture
def line_policy_16(line_domain_16: Domain):
    """The line policy over 16 cells."""
    return line_policy(line_domain_16)


@pytest.fixture
def theta_policy_16(line_domain_16: Domain):
    """The distance-3 threshold policy over 16 cells."""
    return threshold_policy(line_domain_16, 3)


@pytest.fixture
def grid_policy_5(grid_domain_5: Domain):
    """The unit grid policy over the 5x5 domain."""
    return grid_policy(grid_domain_5)
