"""Tests for :mod:`repro.policy.transform` (the ``P_G`` construction, Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    random_range_queries_workload,
    total_workload,
    unbounded_sensitivity,
)
from repro.exceptions import PolicyError, TransformError
from repro.policy import (
    BOTTOM,
    PolicyGraph,
    PolicyTransform,
    bounded_dp_policy,
    cycle_policy,
    grid_policy,
    line_policy,
    sensitive_attribute_policy,
    threshold_policy,
    unbounded_dp_policy,
)


@pytest.fixture
def line_transform(line_policy_16):
    return PolicyTransform(line_policy_16)


class TestCaseIConstruction:
    """Policies that already contain the ⊥ vertex (Case I of Section 4.4)."""

    def test_no_vertex_removed(self):
        policy = unbounded_dp_policy(Domain((6,)))
        transform = PolicyTransform(policy)
        assert transform.removed_vertices == []
        assert transform.num_edges == 6

    def test_incidence_shape(self):
        policy = unbounded_dp_policy(Domain((6,)))
        transform = PolicyTransform(policy)
        assert transform.incidence.shape == (6, 6)

    def test_incidence_matches_figure2(self):
        # Figure 2 of the paper: a path 0-1-2 with 2 attached to bottom gives a
        # lower-bidiagonal P_G with inverse equal to the cumulative matrix.
        domain = Domain((3,))
        policy = PolicyGraph(domain, [(0, 1), (1, 2), (2, BOTTOM)])
        transform = PolicyTransform(policy)
        dense = transform.incidence.toarray()
        expected = np.array([[1.0, 0.0, 0.0], [-1.0, 1.0, 0.0], [0.0, -1.0, 1.0]])
        assert np.allclose(dense, expected)
        inverse = np.linalg.inv(dense)
        assert np.allclose(inverse, np.tril(np.ones((3, 3))))

    def test_columns_are_signed_edge_indicators(self):
        domain = Domain((3,))
        policy = PolicyGraph(domain, [(0, 2), (1, BOTTOM), (0, 1)])
        transform = PolicyTransform(policy)
        assert transform.removed_vertices == []
        dense = transform.incidence.toarray()
        assert np.allclose(dense[:, 0], [1, 0, -1])
        assert np.allclose(dense[:, 1], [0, 1, 0])
        assert np.allclose(dense[:, 2], [1, -1, 0])

    def test_full_row_rank(self):
        policy = unbounded_dp_policy(Domain((5,)))
        assert PolicyTransform(policy).has_full_row_rank()


class TestCaseIIConstruction:
    """Bounded policies (no ⊥): one vertex per component is removed (Lemma 4.10)."""

    def test_default_removed_vertex_is_last(self, line_transform):
        assert line_transform.removed_vertices == [15]
        assert list(line_transform.kept_vertices) == list(range(15))

    def test_explicit_removed_vertex(self, line_policy_16):
        transform = PolicyTransform(line_policy_16, removed_vertices=[7])
        assert transform.removed_vertices == [7]
        assert 7 not in transform.kept_vertices

    def test_explicit_removed_vertex_out_of_domain(self, line_policy_16):
        with pytest.raises(TransformError):
            PolicyTransform(line_policy_16, removed_vertices=[99])

    def test_two_removed_in_same_component_rejected(self, line_policy_16):
        with pytest.raises(TransformError):
            PolicyTransform(line_policy_16, removed_vertices=[3, 7])

    def test_incidence_shape(self, line_transform):
        assert line_transform.incidence.shape == (15, 15)

    def test_reduced_policy_has_bottom(self, line_transform):
        assert line_transform.reduced_policy.has_bottom

    def test_reduced_policy_preserves_edge_order(self, line_policy_16):
        transform = PolicyTransform(line_policy_16)
        assert len(transform.reduced_policy.edges) == len(line_policy_16.edges)
        # All but the last edge are unchanged; the last is rewired to bottom.
        assert transform.reduced_policy.edges[:-1] == line_policy_16.edges[:-1]

    def test_is_tree_for_line_policy(self, line_transform):
        assert line_transform.is_tree()

    def test_grid_policy_is_not_tree(self, grid_policy_5):
        assert not PolicyTransform(grid_policy_5).is_tree()

    def test_full_row_rank_line(self, line_transform):
        assert line_transform.has_full_row_rank()

    def test_full_row_rank_grid(self, grid_policy_5):
        assert PolicyTransform(grid_policy_5).has_full_row_rank()

    def test_bounded_dp_policy_transform(self):
        policy = bounded_dp_policy(Domain((4,)))
        transform = PolicyTransform(policy)
        assert transform.num_edges == 6
        assert transform.has_full_row_rank()


class TestCaseIIIConstruction:
    """Disconnected policies (Appendix E): one removal per bottom-free component."""

    def test_one_removed_vertex_per_component(self):
        domain = Domain((3, 4))
        policy = sensitive_attribute_policy(domain, sensitive_axes=[1])
        transform = PolicyTransform(policy)
        assert len(transform.removed_vertices) == 3
        assert transform.has_full_row_rank()

    def test_answer_preservation_with_components(self):
        domain = Domain((3, 4))
        policy = sensitive_attribute_policy(domain, sensitive_axes=[1])
        transform = PolicyTransform(policy)
        generator = np.random.default_rng(0)
        database = Database(domain, generator.integers(0, 6, 12).astype(float))
        workload = random_range_queries_workload(domain, 15, random_state=1)
        instance = transform.transform_instance(workload, database)
        assert np.allclose(instance.true_answers(), workload.answer(database))

    def test_explicit_removal_in_bottom_component_rejected(self):
        domain = Domain((4,))
        policy = PolicyGraph(domain, [(0, 1), (1, BOTTOM), (2, 3)])
        with pytest.raises(TransformError):
            PolicyTransform(policy, removed_vertices=[0])


class TestWorkloadTransform:
    def test_answer_preservation_line(self, line_policy_16, dense_database_16):
        transform = PolicyTransform(line_policy_16)
        for workload in (
            identity_workload(line_policy_16.domain),
            cumulative_workload(line_policy_16.domain),
            random_range_queries_workload(line_policy_16.domain, 25, random_state=0),
        ):
            instance = transform.transform_instance(workload, dense_database_16)
            assert np.allclose(instance.true_answers(), workload.answer(dense_database_16))

    def test_answer_preservation_grid(self, grid_policy_5, grid_database_5):
        transform = PolicyTransform(grid_policy_5)
        workload = random_range_queries_workload(grid_policy_5.domain, 30, random_state=5)
        instance = transform.transform_instance(workload, grid_database_5)
        assert np.allclose(instance.true_answers(), workload.answer(grid_database_5))

    def test_answer_preservation_cycle(self):
        domain = Domain((7,))
        policy = cycle_policy(domain)
        transform = PolicyTransform(policy)
        database = Database(domain, np.arange(7, dtype=float))
        workload = cumulative_workload(domain)
        instance = transform.transform_instance(workload, database)
        assert np.allclose(instance.true_answers(), workload.answer(database))

    def test_example_4_1_cumulative_becomes_identity(self):
        # Example 4.1: answering C_k under the line policy is equivalent to
        # answering the identity workload on the transformed instance.
        domain = Domain((8,))
        policy = line_policy(domain)
        transform = PolicyTransform(policy)
        transformed = transform.transform_workload(cumulative_workload(domain)).toarray()
        # All rows except the last (which equals the public total n) are unit vectors.
        for row_index in range(7):
            row = transformed[row_index]
            assert np.isclose(np.abs(row).sum(), 1.0)
        assert np.allclose(transformed[7], 0.0)

    def test_transformed_workload_column_count(self, line_transform, line_domain_16):
        transformed = line_transform.transform_workload(identity_workload(line_domain_16))
        assert transformed.shape == (16, line_transform.num_edges)

    def test_lemma_4_7_sensitivity_equality(self, theta_policy_16, line_domain_16):
        transform = PolicyTransform(theta_policy_16)
        for workload in (
            identity_workload(line_domain_16),
            cumulative_workload(line_domain_16),
        ):
            transformed = transform.transform_workload(workload)
            assert transform.policy_sensitivity(workload) == pytest.approx(
                unbounded_sensitivity(transformed)
            )

    def test_lemma_5_1_boundary_structure(self, grid_policy_5, grid_domain_5):
        # The transformed counting query has non-zero entries exactly on edges
        # with one endpoint inside the query (Lemma 5.1), with +/-1 coefficients.
        transform = PolicyTransform(grid_policy_5)
        workload = random_range_queries_workload(grid_domain_5, 10, random_state=2)
        transformed = transform.transform_workload(workload).toarray()
        original = workload.dense()
        for row_index in range(workload.num_queries):
            support = set(np.nonzero(original[row_index])[0])
            for edge_index, (u, v) in enumerate(grid_policy_5.edges):
                inside = len({int(u), int(v)} & support)
                coefficient = transformed[row_index, edge_index]
                if inside == 1:
                    assert abs(coefficient) == pytest.approx(1.0)
                else:
                    assert coefficient == pytest.approx(0.0)

    def test_workload_domain_mismatch_rejected(self, line_transform):
        with pytest.raises(PolicyError):
            line_transform.transform_workload(identity_workload(Domain((8,))))


class TestDatabaseTransform:
    def test_incidence_times_transform_recovers_kept_counts(
        self, line_transform, dense_database_16
    ):
        x_g = line_transform.transform_database(dense_database_16)
        recovered = line_transform.reconstruct_histogram(x_g)
        assert np.allclose(recovered, dense_database_16.counts[line_transform.kept_vertices])

    def test_grid_transform_database_consistent(self, grid_policy_5, grid_database_5):
        transform = PolicyTransform(grid_policy_5)
        x_g = transform.transform_database(grid_database_5)
        recovered = transform.reconstruct_histogram(x_g)
        assert np.allclose(recovered, grid_database_5.counts[transform.kept_vertices])

    def test_database_domain_mismatch_rejected(self, line_transform):
        other = Database(Domain((8,)), np.ones(8))
        with pytest.raises(PolicyError):
            line_transform.transform_database(other)

    def test_offset_zero_for_unbounded_policy(self, dense_database_16, line_domain_16):
        policy = unbounded_dp_policy(line_domain_16)
        transform = PolicyTransform(policy)
        offset = transform.offset(identity_workload(line_domain_16), dense_database_16)
        assert np.allclose(offset, 0.0)

    def test_offset_uses_database_size(self, line_transform, dense_database_16, line_domain_16):
        offset = line_transform.offset(identity_workload(line_domain_16), dense_database_16)
        # Only the query on the removed vertex (the last cell) has a non-zero offset = n.
        assert offset[15] == pytest.approx(dense_database_16.scale)
        assert np.allclose(offset[:15], 0.0)

    def test_reconstruct_answers_adds_offset(self, line_transform, dense_database_16, line_domain_16):
        workload = identity_workload(line_domain_16)
        instance = line_transform.transform_instance(workload, dense_database_16)
        transformed_answers = np.asarray(
            instance.workload_matrix @ instance.database_vector
        ).ravel()
        reconstructed = line_transform.reconstruct_answers(
            workload, dense_database_16, transformed_answers
        )
        assert np.allclose(reconstructed, workload.answer(dense_database_16))

    def test_reconstruct_answers_length_check(self, line_transform, dense_database_16, line_domain_16):
        with pytest.raises(TransformError):
            line_transform.reconstruct_answers(
                identity_workload(line_domain_16), dense_database_16, np.ones(3)
            )

    def test_reconstruct_histogram_length_check(self, line_transform):
        with pytest.raises(TransformError):
            line_transform.reconstruct_histogram(np.ones(4))


class TestReductionMatrix:
    def test_shape(self, line_transform):
        assert line_transform.reduction_matrix().shape == (16, 15)

    def test_columns_sum_to_zero_for_bounded_components(self, line_transform):
        dense = line_transform.reduction_matrix().toarray()
        assert np.allclose(dense.sum(axis=0), 0.0)

    def test_total_query_becomes_zero(self, line_transform, line_domain_16):
        # The total count is public knowledge under a bounded policy: its
        # reduced representation is identically zero (Example 4.1's discussion).
        reduced = line_transform.reduce_workload_matrix(total_workload(line_domain_16))
        assert reduced.nnz == 0
