"""Tests for :mod:`repro.policy.metric` (policy metrics and L1 embeddings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain
from repro.exceptions import PolicyError
from repro.policy import (
    cycle_embedding_lower_bound,
    cycle_policy,
    database_distance,
    embedding_stretch_and_shrink,
    graph_distance_matrix,
    grid_policy,
    is_isometrically_embeddable_as_tree,
    line_policy,
    policy_distance,
    star_policy,
    threshold_policy,
    tree_embedding,
    unbounded_dp_policy,
)


class TestGraphDistances:
    def test_line_distance_is_index_difference(self):
        policy = line_policy(Domain((8,)))
        assert policy_distance(policy, 1, 6) == 5.0

    def test_threshold_distance_divides_by_theta(self):
        policy = threshold_policy(Domain((16,)), 4)
        # Distance between 0 and 15 needs ceil(15/4) = 4 hops.
        assert policy_distance(policy, 0, 15) == 4.0

    def test_grid_distance_is_manhattan(self):
        domain = Domain((5, 5))
        policy = grid_policy(domain)
        assert policy_distance(
            policy, domain.index_of((0, 0)), domain.index_of((3, 4))
        ) == 7.0

    def test_distance_matrix_symmetric(self):
        policy = line_policy(Domain((6,)))
        distances = graph_distance_matrix(policy)
        assert np.allclose(distances, distances.T)
        assert np.all(np.diag(distances) == 0)

    def test_distance_matrix_disconnected_is_inf(self):
        from repro.policy import policy_from_edges

        policy = policy_from_edges(Domain((4,)), [(0, 1), (2, 3)])
        distances = graph_distance_matrix(policy)
        assert np.isinf(distances[0, 2])


class TestDatabaseDistance:
    def test_single_move_costs_graph_distance(self):
        domain = Domain((6,))
        policy = line_policy(domain)
        first = Database(domain, np.array([1.0, 0, 0, 0, 0, 0]))
        second = Database(domain, np.array([0.0, 0, 0, 0, 1.0, 0]))
        assert database_distance(policy, first, second) == 4.0

    def test_identical_databases_distance_zero(self, line_policy_16, dense_database_16):
        assert database_distance(line_policy_16, dense_database_16, dense_database_16) == 0.0

    def test_size_mismatch_without_bottom_is_infinite(self):
        domain = Domain((4,))
        policy = line_policy(domain)
        first = Database(domain, np.array([1.0, 0, 0, 0]))
        second = Database(domain, np.array([1.0, 1.0, 0, 0]))
        assert database_distance(policy, first, second) == np.inf

    def test_size_mismatch_with_bottom_is_finite(self):
        domain = Domain((4,))
        policy = unbounded_dp_policy(domain)
        first = Database(domain, np.array([1.0, 0, 0, 0]))
        second = Database(domain, np.array([1.0, 1.0, 0, 0]))
        assert database_distance(policy, first, second) == 1.0

    def test_domain_mismatch_rejected(self, line_policy_16):
        first = Database(Domain((8,)), np.ones(8))
        second = Database(Domain((8,)), np.ones(8))
        with pytest.raises(PolicyError):
            database_distance(line_policy_16, first, second)


class TestEmbeddings:
    def test_line_policy_embedding_is_isometric(self):
        assert is_isometrically_embeddable_as_tree(line_policy(Domain((10,))))

    def test_star_policy_embedding_is_isometric(self):
        assert is_isometrically_embeddable_as_tree(star_policy(Domain((8,)), center=3))

    def test_unbounded_policy_embedding_is_isometric(self):
        assert is_isometrically_embeddable_as_tree(unbounded_dp_policy(Domain((6,))))

    def test_cycle_policy_is_not_isometric(self):
        assert not is_isometrically_embeddable_as_tree(cycle_policy(Domain((6,))))

    def test_grid_policy_is_not_tree_embeddable(self):
        assert not is_isometrically_embeddable_as_tree(grid_policy(Domain((3, 3))))

    def test_tree_embedding_distances_match_graph(self):
        policy = line_policy(Domain((8,)))
        embedding = tree_embedding(policy)
        stretch_value, shrink_value = embedding_stretch_and_shrink(policy, embedding)
        assert stretch_value == pytest.approx(1.0)
        assert shrink_value == pytest.approx(1.0)

    def test_tree_embedding_rejects_non_tree(self):
        with pytest.raises(PolicyError):
            tree_embedding(cycle_policy(Domain((5,))))

    def test_embedding_missing_vertex_rejected(self):
        policy = line_policy(Domain((4,)))
        with pytest.raises(PolicyError):
            embedding_stretch_and_shrink(policy, {0: np.zeros(2)})

    def test_stretch_shrink_of_scaled_embedding(self):
        policy = line_policy(Domain((5,)))
        embedding = {v: np.array([2.0 * v]) for v in range(5)}
        stretch_value, shrink_value = embedding_stretch_and_shrink(policy, embedding)
        assert stretch_value == pytest.approx(2.0)
        assert shrink_value == pytest.approx(2.0)

    def test_cycle_lower_bound_formula(self):
        assert cycle_embedding_lower_bound(10) == 9.0
        with pytest.raises(PolicyError):
            cycle_embedding_lower_bound(2)
