"""Tests for :mod:`repro.policy.tree` (Theorem 4.3 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain
from repro.exceptions import PolicyNotTreeError, TransformError
from repro.policy import (
    BOTTOM,
    PolicyGraph,
    PolicyTransform,
    TreeTransform,
    grid_policy,
    line_policy,
    line_spanner,
    star_policy,
    unbounded_dp_policy,
)


@pytest.fixture
def line_tree(line_policy_16):
    return TreeTransform(PolicyTransform(line_policy_16))


class TestConstruction:
    def test_requires_tree(self, grid_policy_5):
        with pytest.raises(PolicyNotTreeError):
            TreeTransform(PolicyTransform(grid_policy_5))

    def test_line_policy_is_accepted(self, line_tree):
        assert line_tree.num_edges == 15

    def test_star_policy_is_accepted(self):
        policy = star_policy(Domain((8,)), center=0)
        tree = TreeTransform(PolicyTransform(policy))
        assert tree.num_edges == 7

    def test_unbounded_policy_is_accepted(self):
        policy = unbounded_dp_policy(Domain((6,)))
        tree = TreeTransform(PolicyTransform(policy))
        assert tree.num_edges == 6

    def test_spanner_tree_is_accepted(self):
        spanner = line_spanner(Domain((20,)), theta=4)
        tree = TreeTransform(PolicyTransform(spanner))
        assert tree.num_edges == 19

    def test_structure_depths_positive(self, line_tree):
        assert np.all(line_tree.structure.depth_of_vertex >= 1)

    def test_structure_every_edge_has_child(self, line_tree):
        assert np.all(line_tree.structure.child_vertex_of_edge >= 0)
        assert np.all(np.abs(line_tree.structure.edge_sign) == 1.0)


class TestTransformDatabase:
    def test_line_gives_prefix_sums(self, line_tree, dense_database_16):
        x_g = line_tree.transform_database(dense_database_16)
        expected = np.cumsum(dense_database_16.counts)[:-1]
        assert np.allclose(x_g, expected)

    def test_matches_least_squares_transform(self, line_tree, dense_database_16):
        exact = line_tree.transform_database(dense_database_16)
        least_squares = line_tree.transform.transform_database(dense_database_16)
        assert np.allclose(exact, least_squares)

    def test_unbounded_policy_transform_is_identity(self, dense_database_16, line_domain_16):
        policy = unbounded_dp_policy(line_domain_16)
        tree = TreeTransform(PolicyTransform(policy))
        x_g = tree.transform_database(dense_database_16)
        assert np.allclose(np.abs(x_g), dense_database_16.counts)

    def test_star_policy_subtree_counts(self):
        # Star with centre 0; the default Case II reduction removes vertex 4 and
        # rewires its edge to bottom, so the tree is: bottom - 0 - {1, 2, 3}.
        # Edge magnitudes are therefore the leaf counts 2, 3, 4 plus the full
        # kept total (1 + 2 + 3 + 4 = 10) on the edge adjacent to bottom.
        domain = Domain((5,))
        policy = star_policy(domain, center=0)
        tree = TreeTransform(PolicyTransform(policy))
        counts = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        x_g = tree.transform_database(Database(domain, counts))
        assert sorted(np.abs(x_g).tolist()) == [2.0, 3.0, 4.0, 10.0]

    def test_inverse_transform_roundtrip(self, line_tree, dense_database_16):
        x_g = line_tree.transform_database(dense_database_16)
        recovered = line_tree.inverse_transform(x_g)
        kept = line_tree.transform.kept_vertices
        assert np.allclose(recovered, dense_database_16.counts[kept])

    def test_inverse_transform_roundtrip_star(self):
        domain = Domain((7,))
        policy = star_policy(domain, center=3)
        tree = TreeTransform(PolicyTransform(policy))
        counts = np.arange(1.0, 8.0)
        database = Database(domain, counts)
        recovered = tree.inverse_transform(tree.transform_database(database))
        assert np.allclose(recovered, counts[tree.transform.kept_vertices])

    def test_transform_values_are_integral_for_integer_counts(self, line_tree):
        database = Database(Domain((16,)), np.arange(16, dtype=float))
        x_g = line_tree.transform_database(database)
        assert np.allclose(x_g, np.round(x_g))

    def test_wrong_domain_rejected(self, line_tree):
        with pytest.raises(TransformError):
            line_tree.transform_database(Database(Domain((8,)), np.ones(8)))

    def test_inverse_transform_length_check(self, line_tree):
        with pytest.raises(TransformError):
            line_tree.inverse_transform(np.ones(3))


class TestNeighborPreservation:
    def test_every_edge_of_line_policy(self, line_policy_16):
        tree = TreeTransform(PolicyTransform(line_policy_16))
        database = Database(line_policy_16.domain, np.full(16, 2.0))
        for edge_index in range(len(line_policy_16.edges)):
            assert tree.verify_neighbor_preservation(database, edge_index)

    def test_every_edge_of_star_policy(self):
        domain = Domain((6,))
        policy = star_policy(domain, center=2)
        tree = TreeTransform(PolicyTransform(policy))
        database = Database(domain, np.full(6, 3.0))
        for edge_index in range(len(policy.edges)):
            assert tree.verify_neighbor_preservation(database, edge_index)

    def test_requires_record_at_source(self, line_policy_16):
        tree = TreeTransform(PolicyTransform(line_policy_16))
        with pytest.raises(TransformError):
            tree.verify_neighbor_preservation(
                Database(line_policy_16.domain, np.zeros(16)), 0
            )

    def test_edge_index_out_of_range(self, line_policy_16, dense_database_16):
        tree = TreeTransform(PolicyTransform(line_policy_16))
        with pytest.raises(TransformError):
            tree.verify_neighbor_preservation(dense_database_16, 99)


class TestMonotoneOrder:
    def test_line_policy_has_monotone_order(self, line_tree, dense_database_16):
        order = line_tree.monotone_root_path_indices()
        assert order is not None
        x_g = line_tree.transform_database(dense_database_16)
        assert np.all(np.diff(x_g[order]) >= -1e-9)

    def test_star_policy_has_no_monotone_order(self):
        policy = star_policy(Domain((6,)), center=0)
        tree = TreeTransform(PolicyTransform(policy))
        assert tree.monotone_root_path_indices() is None

    def test_spanner_tree_has_no_monotone_order(self):
        spanner = line_spanner(Domain((20,)), theta=4)
        tree = TreeTransform(PolicyTransform(spanner))
        assert tree.monotone_root_path_indices() is None

    def test_order_covers_all_edges_for_line(self, line_tree):
        order = line_tree.monotone_root_path_indices()
        assert sorted(order.tolist()) == list(range(line_tree.num_edges))
