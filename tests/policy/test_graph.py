"""Tests for :mod:`repro.policy.graph`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain
from repro.exceptions import PolicyError
from repro.policy import BOTTOM, PolicyGraph, is_bottom, neighboring_databases


@pytest.fixture
def small_policy():
    domain = Domain((4,))
    return PolicyGraph(domain, [(0, 1), (1, 2), (3, BOTTOM)], name="small")


class TestConstruction:
    def test_edge_count(self, small_policy):
        assert small_policy.num_edges == 3

    def test_has_bottom(self, small_policy):
        assert small_policy.has_bottom

    def test_no_bottom(self):
        policy = PolicyGraph(Domain((3,)), [(0, 1), (1, 2)])
        assert not policy.has_bottom
        assert policy.num_vertices == 3

    def test_num_vertices_includes_bottom(self, small_policy):
        assert small_policy.num_vertices == 5

    def test_duplicate_edges_ignored(self):
        policy = PolicyGraph(Domain((3,)), [(0, 1), (1, 0), (0, 1)])
        assert policy.num_edges == 1

    def test_rejects_self_loop(self):
        with pytest.raises(PolicyError):
            PolicyGraph(Domain((3,)), [(1, 1)])

    def test_rejects_bottom_bottom_edge(self):
        with pytest.raises(PolicyError):
            PolicyGraph(Domain((3,)), [(BOTTOM, BOTTOM)])

    def test_rejects_out_of_domain_vertex(self):
        with pytest.raises(PolicyError):
            PolicyGraph(Domain((3,)), [(0, 3)])

    def test_edge_order_preserved(self):
        edges = [(2, 3), (0, 1), (1, 2)]
        policy = PolicyGraph(Domain((4,)), edges)
        assert policy.edges == [(2, 3), (0, 1), (1, 2)]

    def test_bottom_singleton_repr(self):
        assert is_bottom(BOTTOM)
        assert not is_bottom(0)
        assert repr(BOTTOM) == "BOTTOM"


class TestStructure:
    def test_neighbors(self, small_policy):
        assert set(small_policy.neighbors(1)) == {0, 2}

    def test_neighbors_of_bottom(self, small_policy):
        assert small_policy.neighbors(BOTTOM) == [3]

    def test_degree(self, small_policy):
        assert small_policy.degree(1) == 2
        assert small_policy.degree(3) == 1

    def test_has_edge_both_orders(self, small_policy):
        assert small_policy.has_edge(0, 1)
        assert small_policy.has_edge(1, 0)
        assert small_policy.has_edge(3, BOTTOM)
        assert not small_policy.has_edge(0, 2)

    def test_edge_index(self, small_policy):
        assert small_policy.edge_index(1, 2) == 1
        assert small_policy.edge_index(BOTTOM, 3) == 2

    def test_edge_index_missing_raises(self, small_policy):
        with pytest.raises(PolicyError):
            small_policy.edge_index(0, 2)

    def test_incident_edges(self, small_policy):
        assert small_policy.incident_edges(1) == [0, 1]

    def test_degree_histogram(self, small_policy):
        histogram = small_policy.degree_histogram()
        assert sum(histogram.values()) == small_policy.num_vertices


class TestConnectivity:
    def test_connected_policy(self):
        policy = PolicyGraph(Domain((4,)), [(0, 1), (1, 2), (2, 3)])
        assert policy.is_connected()
        assert policy.is_tree()

    def test_disconnected_policy(self):
        policy = PolicyGraph(Domain((4,)), [(0, 1), (2, 3)])
        assert not policy.is_connected()
        components = policy.connected_components()
        assert len(components) == 2

    def test_cycle_is_not_tree(self):
        policy = PolicyGraph(Domain((3,)), [(0, 1), (1, 2), (0, 2)])
        assert not policy.is_tree()

    def test_shortest_path_length(self):
        policy = PolicyGraph(Domain((4,)), [(0, 1), (1, 2), (2, 3)])
        assert policy.shortest_path_length(0, 3) == 3.0

    def test_shortest_path_disconnected_is_inf(self):
        policy = PolicyGraph(Domain((4,)), [(0, 1), (2, 3)])
        assert policy.shortest_path_length(0, 3) == np.inf

    def test_components_report_bottom(self, small_policy):
        components = small_policy.connected_components()
        flattened = set()
        for component in components:
            flattened |= {("bottom" if is_bottom(v) else v) for v in component}
        assert "bottom" in flattened


class TestEditing:
    def test_with_edges(self):
        policy = PolicyGraph(Domain((4,)), [(0, 1)])
        extended = policy.with_edges([(1, 2)])
        assert extended.num_edges == 2
        assert policy.num_edges == 1  # original unchanged

    def test_subgraph_with_edges(self, small_policy):
        reduced = small_policy.subgraph_with_edges([(0, 1)])
        assert reduced.num_edges == 1

    def test_equality(self):
        first = PolicyGraph(Domain((3,)), [(0, 1), (1, 2)])
        second = PolicyGraph(Domain((3,)), [(1, 2), (0, 1)])
        assert first == second
        assert hash(first) == hash(second)


class TestNeighboringDatabases:
    def test_move_across_edge(self):
        policy = PolicyGraph(Domain((3,)), [(0, 1)])
        x = np.array([2.0, 0.0, 1.0])
        original, neighbor = neighboring_databases(policy, x, (0, 1))
        assert np.array_equal(original, x)
        assert np.array_equal(neighbor, [1.0, 1.0, 1.0])

    def test_remove_across_bottom_edge(self):
        policy = PolicyGraph(Domain((3,)), [(0, BOTTOM)])
        x = np.array([2.0, 0.0, 1.0])
        _, neighbor = neighboring_databases(policy, x, (0, BOTTOM))
        assert neighbor.sum() == x.sum() - 1

    def test_requires_record_at_source(self):
        policy = PolicyGraph(Domain((3,)), [(0, 1)])
        with pytest.raises(PolicyError):
            neighboring_databases(policy, np.zeros(3), (0, 1))
