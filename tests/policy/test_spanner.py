"""Tests for :mod:`repro.policy.spanner` (Lemma 4.5 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain
from repro.exceptions import PolicyError
from repro.policy import (
    approximate_with_bfs_tree,
    approximate_with_grid_spanner,
    approximate_with_line_spanner,
    bfs_spanning_tree,
    cycle_policy,
    grid_policy,
    grid_spanner,
    line_policy,
    line_spanner,
    line_spanner_groups,
    stretch,
    threshold_policy,
    unbounded_dp_policy,
)


class TestLineSpanner:
    def test_is_tree(self):
        assert line_spanner(Domain((20,)), theta=3).is_tree()

    def test_edge_count(self):
        spanner = line_spanner(Domain((20,)), theta=3)
        assert spanner.num_edges == 19

    def test_theta_one_equals_line_policy(self):
        domain = Domain((10,))
        assert line_spanner(domain, theta=1) == line_policy(domain)

    def test_stretch_at_most_three(self):
        for k, theta in [(16, 2), (20, 3), (32, 4), (33, 5)]:
            domain = Domain((k,))
            policy = threshold_policy(domain, theta)
            spanner = line_spanner(domain, theta)
            assert stretch(policy, spanner) <= 3

    def test_non_divisible_domain_size(self):
        # k not divisible by theta: the last, shorter block still attaches.
        domain = Domain((17,))
        spanner = line_spanner(domain, theta=5)
        assert spanner.is_tree()
        assert spanner.num_edges == 16

    def test_rejects_bad_arguments(self):
        with pytest.raises(PolicyError):
            line_spanner(Domain((4, 4)), theta=2)
        with pytest.raises(PolicyError):
            line_spanner(Domain((8,)), theta=0)

    def test_groups_partition_edges(self):
        domain = Domain((20,))
        groups = line_spanner_groups(domain, theta=4)
        all_edges = sorted(edge for group in groups for edge in group)
        assert all_edges == list(range(19))

    def test_groups_have_bounded_size(self):
        domain = Domain((24,))
        groups = line_spanner_groups(domain, theta=4)
        # Each group holds the edges entering one red vertex: at most theta
        # attachments plus one red-red edge.
        assert max(len(group) for group in groups) <= 5


class TestGridSpanner:
    def test_connected(self):
        domain = Domain((6, 6))
        spanner = grid_spanner(domain, theta=2)
        assert spanner.is_connected()

    def test_stretch_is_finite_and_small(self):
        domain = Domain((6, 6))
        policy = threshold_policy(domain, 2)
        approx = approximate_with_grid_spanner(policy, 2)
        assert 1 <= approx.stretch <= 6

    def test_covers_all_vertices(self):
        domain = Domain((5, 5))
        spanner = grid_spanner(domain, theta=2)
        graph = spanner.to_networkx()
        assert all(graph.degree(v) >= 1 for v in range(domain.size))

    def test_rejects_bad_theta(self):
        with pytest.raises(PolicyError):
            grid_spanner(Domain((4, 4)), theta=0)


class TestGenericSpanners:
    def test_bfs_tree_of_cycle(self):
        policy = cycle_policy(Domain((9,)))
        tree = bfs_spanning_tree(policy)
        assert tree.is_tree()
        assert tree.num_edges == 8

    def test_cycle_spanning_tree_stretch_is_n_minus_one(self):
        # Section 4.3: any spanning tree of an n-cycle has stretch n - 1.
        policy = cycle_policy(Domain((9,)))
        approx = approximate_with_bfs_tree(policy)
        assert approx.stretch == 8

    def test_bfs_tree_of_grid(self):
        policy = grid_policy(Domain((4, 4)))
        tree = bfs_spanning_tree(policy)
        assert tree.is_tree()

    def test_bfs_tree_keeps_bottom(self):
        policy = unbounded_dp_policy(Domain((5,)))
        tree = bfs_spanning_tree(policy)
        assert tree.has_bottom
        assert tree.is_tree()

    def test_bfs_tree_rejects_disconnected(self):
        from repro.policy import policy_from_edges

        policy = policy_from_edges(Domain((4,)), [(0, 1), (2, 3)])
        with pytest.raises(PolicyError):
            bfs_spanning_tree(policy)

    def test_stretch_identity(self):
        policy = line_policy(Domain((12,)))
        assert stretch(policy, policy) == 1

    def test_stretch_rejects_disconnecting_spanner(self):
        from repro.policy import policy_from_edges

        original = line_policy(Domain((4,)))
        broken = policy_from_edges(Domain((4,)), [(0, 1), (2, 3)])
        with pytest.raises(PolicyError):
            stretch(original, broken)


class TestSpannerApproximation:
    def test_budget_split(self):
        domain = Domain((20,))
        policy = threshold_policy(domain, 4)
        approx = approximate_with_line_spanner(policy, 4)
        assert approx.budget_for(0.9) == pytest.approx(0.9 / approx.stretch)

    def test_budget_rejects_non_positive_epsilon(self):
        domain = Domain((20,))
        approx = approximate_with_line_spanner(threshold_policy(domain, 2), 2)
        with pytest.raises(PolicyError):
            approx.budget_for(0.0)

    def test_original_policy_recorded(self):
        domain = Domain((20,))
        policy = threshold_policy(domain, 2)
        approx = approximate_with_line_spanner(policy, 2)
        assert approx.original == policy
        assert approx.spanner.is_tree()
