"""End-to-end tests for disconnected policies (Appendix E).

The "sensitive attributes" policy connects only cells that differ in a
sensitive attribute, so the policy graph splits into one component per
combination of non-sensitive attribute values.  Appendix E shows the
transformation still applies (each component is reduced through Case II and
attached to ⊥), at the price of exactly disclosing the per-component totals.
These tests exercise the full pipeline on such policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    identity_workload,
    marginal_workload,
    random_range_queries_workload,
)
from repro.blowfish import PolicyMatrixMechanism, blowfish_transformed_laplace_matrix
from repro.policy import PolicyTransform, sensitive_attribute_policy


@pytest.fixture
def attribute_setup():
    # Two attributes: a non-sensitive one with 3 values and a sensitive one with 4.
    domain = Domain((3, 4))
    policy = sensitive_attribute_policy(domain, sensitive_axes=[1])
    generator = np.random.default_rng(5)
    database = Database(domain, generator.integers(0, 8, 12).astype(float), name="table")
    return domain, policy, database


class TestDisconnectedTransform:
    def test_one_component_per_non_sensitive_value(self, attribute_setup):
        domain, policy, _ = attribute_setup
        components = policy.connected_components()
        assert len(components) == 3

    def test_transform_removes_one_vertex_per_component(self, attribute_setup):
        _, policy, _ = attribute_setup
        transform = PolicyTransform(policy)
        assert len(transform.removed_vertices) == 3
        assert transform.has_full_row_rank()

    def test_answers_preserved_for_all_workloads(self, attribute_setup):
        domain, policy, database = attribute_setup
        transform = PolicyTransform(policy)
        for workload in (
            identity_workload(domain),
            marginal_workload(domain, 0),
            marginal_workload(domain, 1),
            random_range_queries_workload(domain, 10, random_state=1),
        ):
            instance = transform.transform_instance(workload, database)
            assert np.allclose(instance.true_answers(), workload.answer(database))

    def test_offset_discloses_component_totals_only(self, attribute_setup):
        # The offset of the identity workload is supported exactly on the
        # removed vertices and carries the per-component totals (which the
        # policy deems non-sensitive, Appendix E).
        domain, policy, database = attribute_setup
        transform = PolicyTransform(policy)
        offset = transform.offset(identity_workload(domain), database)
        array = database.as_array()
        for removed in transform.removed_vertices:
            cell = domain.cell_of(removed)
            component_total = array[cell[0], :].sum()
            assert offset[removed] == pytest.approx(component_total)
        untouched = [v for v in range(domain.size) if v not in transform.removed_vertices]
        assert np.allclose(offset[untouched], 0.0)

    def test_sensitive_marginal_is_protected_but_answerable(self, attribute_setup):
        # The marginal over the *sensitive* attribute has non-trivial policy
        # sensitivity (it must be noised), whereas the marginal over the
        # non-sensitive attribute has zero policy sensitivity — the policy
        # permits releasing it exactly.
        domain, policy, _ = attribute_setup
        transform = PolicyTransform(policy)
        sensitive_marginal = marginal_workload(domain, 1)
        non_sensitive_marginal = marginal_workload(domain, 0)
        assert transform.policy_sensitivity(sensitive_marginal) == 2.0
        assert transform.policy_sensitivity(non_sensitive_marginal) == 0.0


class TestDisconnectedMechanisms:
    def test_policy_matrix_mechanism_runs(self, attribute_setup, rng):
        domain, policy, database = attribute_setup
        workload = identity_workload(domain)
        mechanism = PolicyMatrixMechanism(policy, epsilon=1e9)
        answers = mechanism.answer(workload, database, rng)
        assert np.allclose(answers, database.counts, atol=1e-3)

    def test_non_sensitive_marginal_answered_exactly_for_free(self, attribute_setup, rng):
        # Because its policy sensitivity is zero, the noise added to the
        # non-sensitive marginal by the transformed mechanism is exactly zero.
        domain, policy, database = attribute_setup
        workload = marginal_workload(domain, 0)
        algorithm = blowfish_transformed_laplace_matrix(policy, epsilon=0.5)
        answers = algorithm.answer(workload, database, rng)
        assert np.allclose(answers, workload.answer(database), atol=1e-9)

    def test_sensitive_marginal_is_noised(self, attribute_setup, rng):
        domain, policy, database = attribute_setup
        workload = marginal_workload(domain, 1)
        algorithm = blowfish_transformed_laplace_matrix(policy, epsilon=0.5)
        answers = algorithm.answer(workload, database, rng)
        assert not np.allclose(answers, workload.answer(database), atol=1e-6)
