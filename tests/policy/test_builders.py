"""Tests for :mod:`repro.policy.builders`."""

from __future__ import annotations

import pytest

from repro.core import Domain
from repro.exceptions import PolicyError
from repro.policy import (
    BOTTOM,
    bounded_dp_policy,
    cycle_policy,
    grid_policy,
    line_policy,
    policy_from_edges,
    sensitive_attribute_policy,
    star_policy,
    threshold_policy,
    unbounded_dp_policy,
)


class TestLinePolicy:
    def test_edge_count(self):
        policy = line_policy(Domain((10,)))
        assert policy.num_edges == 9

    def test_edges_connect_adjacent_values(self):
        policy = line_policy(Domain((5,)))
        assert policy.edges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_is_tree(self):
        assert line_policy(Domain((10,))).is_tree()

    def test_bottom_variant(self):
        policy = line_policy(Domain((5,)), attach_bottom=True)
        assert policy.has_bottom
        assert policy.num_edges == 5

    def test_rejects_2d_domain(self):
        with pytest.raises(PolicyError):
            line_policy(Domain((4, 4)))


class TestThresholdPolicy:
    def test_theta_one_1d_is_line(self):
        domain = Domain((6,))
        assert threshold_policy(domain, 1) == line_policy(domain)

    def test_edge_count_1d(self):
        # G^theta_k has sum_{s=1}^{theta} (k - s) edges.
        policy = threshold_policy(Domain((10,)), 3)
        assert policy.num_edges == 9 + 8 + 7

    def test_edges_respect_distance(self):
        domain = Domain((8,))
        policy = threshold_policy(domain, 2)
        for u, v in policy.edges:
            assert abs(int(u) - int(v)) <= 2

    def test_grid_policy_edge_count(self):
        # Unit grid over k x k has 2 k (k-1) edges.
        policy = grid_policy(Domain((4, 4)))
        assert policy.num_edges == 2 * 4 * 3

    def test_2d_threshold_includes_diagonal_steps(self):
        policy = threshold_policy(Domain((3, 3)), 2)
        domain = policy.domain
        assert policy.has_edge(domain.index_of((0, 0)), domain.index_of((1, 1)))
        assert not policy.has_edge(domain.index_of((0, 0)), domain.index_of((2, 2)))

    def test_threshold_is_connected(self):
        assert threshold_policy(Domain((12,)), 4).is_connected()
        assert grid_policy(Domain((5, 5))).is_connected()

    def test_rejects_bad_theta(self):
        with pytest.raises(PolicyError):
            threshold_policy(Domain((5,)), 0)

    def test_3d_grid(self):
        policy = grid_policy(Domain((3, 3, 3)))
        # d * k^(d-1) * (k-1) edges.
        assert policy.num_edges == 3 * 9 * 2


class TestDpPolicies:
    def test_unbounded_policy_edges(self):
        policy = unbounded_dp_policy(Domain((5,)))
        assert policy.num_edges == 5
        assert all(v is BOTTOM or u is BOTTOM for u, v in policy.edges)

    def test_bounded_policy_is_complete(self):
        policy = bounded_dp_policy(Domain((5,)))
        assert policy.num_edges == 10
        assert not policy.has_bottom

    def test_unbounded_policy_is_tree(self):
        assert unbounded_dp_policy(Domain((5,))).is_tree()


class TestOtherPolicies:
    def test_star_policy(self):
        policy = star_policy(Domain((6,)), center=2)
        assert policy.num_edges == 5
        assert policy.is_tree()
        assert policy.degree(2) == 5

    def test_star_policy_rejects_bad_center(self):
        with pytest.raises(PolicyError):
            star_policy(Domain((6,)), center=6)

    def test_cycle_policy(self):
        policy = cycle_policy(Domain((6,)))
        assert policy.num_edges == 6
        assert not policy.is_tree()
        assert policy.is_connected()

    def test_cycle_policy_rejects_tiny_domain(self):
        with pytest.raises(PolicyError):
            cycle_policy(Domain((2,)))

    def test_sensitive_attribute_policy_is_disconnected(self):
        domain = Domain((3, 4))
        policy = sensitive_attribute_policy(domain, sensitive_axes=[1])
        # Cells differing on the non-sensitive axis 0 are disconnected.
        assert not policy.is_connected()
        components = policy.connected_components()
        assert len(components) == 3

    def test_sensitive_attribute_edges_differ_in_one_sensitive_axis(self):
        domain = Domain((2, 3))
        policy = sensitive_attribute_policy(domain, sensitive_axes=[1])
        for u, v in policy.edges:
            cu, cv = domain.cell_of(int(u)), domain.cell_of(int(v))
            assert cu[0] == cv[0]
            assert cu[1] != cv[1]

    def test_sensitive_attribute_all_axes_is_connected_within(self):
        domain = Domain((2, 2))
        policy = sensitive_attribute_policy(domain, sensitive_axes=[0, 1])
        assert policy.is_connected()

    def test_sensitive_attribute_rejects_empty(self):
        with pytest.raises(PolicyError):
            sensitive_attribute_policy(Domain((2, 2)), sensitive_axes=[])

    def test_sensitive_attribute_rejects_bad_axis(self):
        with pytest.raises(PolicyError):
            sensitive_attribute_policy(Domain((2, 2)), sensitive_axes=[2])

    def test_policy_from_edges(self):
        policy = policy_from_edges(Domain((4,)), [(0, 3)], name="custom")
        assert policy.num_edges == 1
        assert policy.name == "custom"
