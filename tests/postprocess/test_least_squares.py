"""Tests for :mod:`repro.postprocess.least_squares`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ReproError
from repro.mechanisms import haar_strategy, hierarchical_strategy
from repro.postprocess import (
    least_squares_estimate,
    project_non_negative,
    rescale_to_total,
    round_to_integers,
    weighted_least_squares_estimate,
)


class TestLeastSquares:
    def test_exact_recovery_from_noiseless_measurements(self, rng):
        data = rng.normal(size=16)
        strategy = haar_strategy(16)
        measurements = strategy.matrix @ data
        estimate = least_squares_estimate(strategy.matrix, measurements)
        assert np.allclose(estimate, data, atol=1e-8)

    def test_overdetermined_system_averages_noise(self, rng):
        # Measuring the hierarchical strategy (redundant rows) and solving by
        # least squares should beat reading off the leaf rows alone.
        data = np.zeros(32)
        strategy = hierarchical_strategy(32)
        leaf_rows = [
            index
            for index, node_row in enumerate(strategy.matrix.toarray())
            if node_row.sum() == 1.0
        ]
        errors_ls, errors_leaf = [], []
        for _ in range(40):
            noise = rng.normal(0, 1.0, strategy.num_measurements)
            measurements = strategy.matrix @ data + noise
            estimate = least_squares_estimate(strategy.matrix, measurements)
            errors_ls.append(np.mean(estimate**2))
            errors_leaf.append(np.mean(measurements[leaf_rows] ** 2))
        assert np.mean(errors_ls) < np.mean(errors_leaf)

    def test_accepts_dense_matrix(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        estimate = least_squares_estimate(matrix, np.array([1.0, 2.0, 3.0]))
        assert np.allclose(estimate, [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            least_squares_estimate(np.eye(3), np.ones(4))

    def test_weighted_least_squares_prefers_precise_measurements(self):
        # Two measurements of the same quantity with very different variances:
        # the estimate should be close to the precise one.
        matrix = sp.csr_matrix(np.array([[1.0], [1.0]]))
        measurements = np.array([10.0, 0.0])
        variances = np.array([1e6, 1.0])
        estimate = weighted_least_squares_estimate(matrix, measurements, variances)
        assert abs(estimate[0]) < 1.0

    def test_weighted_least_squares_validation(self):
        with pytest.raises(ReproError):
            weighted_least_squares_estimate(np.eye(2), np.ones(2), np.array([1.0, 0.0]))
        with pytest.raises(ReproError):
            weighted_least_squares_estimate(np.eye(2), np.ones(2), np.ones(3))


class TestSimpleProjections:
    def test_project_non_negative(self):
        assert np.allclose(project_non_negative(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_round_to_integers(self):
        assert np.allclose(round_to_integers(np.array([1.4, 2.6])), [1.0, 3.0])

    def test_rescale_to_total(self):
        rescaled = rescale_to_total(np.array([1.0, 3.0]), total=8.0)
        assert rescaled.sum() == pytest.approx(8.0)
        assert rescaled[1] == pytest.approx(6.0)

    def test_rescale_handles_all_zero(self):
        rescaled = rescale_to_total(np.array([-1.0, -2.0, -3.0]), total=6.0)
        assert rescaled.sum() == pytest.approx(6.0)

    def test_rescale_none_total_is_projection_only(self):
        rescaled = rescale_to_total(np.array([-1.0, 2.0]), total=None)
        assert np.allclose(rescaled, [0.0, 2.0])


class TestGeneralisedLeastSquares:
    """The full-covariance solver behind draw-aware consolidation."""

    def test_diagonal_covariance_is_bit_identical_to_weighted(self, rng):
        from repro.postprocess import generalised_least_squares_estimate

        matrix = sp.csr_matrix(rng.normal(size=(12, 6)))
        measurements = rng.normal(size=12)
        variances = rng.uniform(0.5, 2.0, size=12)
        weighted = weighted_least_squares_estimate(matrix, measurements, variances)
        generalised = generalised_least_squares_estimate(
            matrix, measurements, sp.diags(variances, format="csr")
        )
        # Exact degeneration: the diagonal case routes through the weighted
        # solver, so the two must be bit-identical, not merely close.
        np.testing.assert_array_equal(weighted, generalised)

    def test_correlated_measurements_are_downweighted(self, rng):
        """GLS beats WLS when some measurements share their noise draw."""
        from repro.postprocess import generalised_least_squares_estimate

        truth = rng.normal(size=8)
        identity = sp.identity(8, format="csr")
        matrix = sp.vstack([identity] * 3, format="csr")
        gls_errors, wls_errors = [], []
        for _ in range(60):
            shared = rng.normal(0, 2.0, size=8)  # one draw, reported twice
            fresh = rng.normal(0, 2.0, size=8)
            measurements = np.concatenate(
                [truth + shared, truth + shared, truth + fresh]
            )
            variances = np.full(24, 4.0)
            block = np.kron(
                np.array([[4.0, 4.0, 0.0], [4.0, 4.0, 0.0], [0.0, 0.0, 4.0]]),
                np.eye(8),
            )
            # Ridge the duplicated block so it is invertible.
            covariance = sp.csr_matrix(block + 1e-9 * np.eye(24))
            gls = generalised_least_squares_estimate(matrix, measurements, covariance)
            wls = weighted_least_squares_estimate(matrix, measurements, variances)
            gls_errors.append(float(np.mean((gls - truth) ** 2)))
            wls_errors.append(float(np.mean((wls - truth) ** 2)))
        # The duplicated draw carries no extra information; WLS counts it
        # twice and is pulled toward it, GLS weights it once.
        assert np.mean(gls_errors) < np.mean(wls_errors)

    def test_exact_on_noiseless_correlated_system(self, rng):
        from repro.postprocess import generalised_least_squares_estimate

        data = rng.normal(size=10)
        strategy = hierarchical_strategy(10)
        measurements = strategy.matrix @ data
        covariance = sp.csr_matrix(
            0.5 * np.eye(strategy.num_measurements)
            + 0.1 * np.ones((strategy.num_measurements,) * 2)
        )
        estimate = generalised_least_squares_estimate(
            strategy.matrix, measurements, covariance
        )
        assert np.allclose(estimate, data, atol=1e-6)

    def test_empty_stack_raises_clear_error(self):
        from repro.postprocess import generalised_least_squares_estimate

        with pytest.raises(ReproError, match="empty"):
            generalised_least_squares_estimate(
                sp.csr_matrix((0, 4)), np.empty(0), sp.csr_matrix((0, 0))
            )

    def test_shape_mismatches_rejected(self, rng):
        from repro.postprocess import generalised_least_squares_estimate

        matrix = sp.csr_matrix(rng.normal(size=(4, 3)))
        with pytest.raises(ReproError, match="rows"):
            generalised_least_squares_estimate(
                matrix, np.ones(5), sp.identity(5, format="csr")
            )
        with pytest.raises(ReproError, match="Covariance"):
            generalised_least_squares_estimate(
                matrix, np.ones(4), sp.identity(3, format="csr")
            )

    def test_non_positive_variance_rejected(self, rng):
        from repro.postprocess import generalised_least_squares_estimate

        matrix = sp.csr_matrix(rng.normal(size=(3, 2)))
        bad = sp.diags([1.0, 0.0, 1.0], format="csr")
        with pytest.raises(ReproError, match="positive"):
            generalised_least_squares_estimate(matrix, np.ones(3), bad)

    def test_rank_deficient_block_is_ridged_not_fatal(self):
        """Fully redundant correlated rows (shared histogram estimate)."""
        from repro.postprocess import generalised_least_squares_estimate

        matrix = sp.csr_matrix(np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]]))
        measurements = np.array([2.0, 2.0, 5.0])
        # Rows 0 and 1 are the SAME measurement reported twice: the 2x2
        # block is exactly singular.
        covariance = sp.csr_matrix(
            np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        )
        estimate = generalised_least_squares_estimate(matrix, measurements, covariance)
        assert np.allclose(estimate, [2.0, 5.0], atol=1e-4)


class TestWeightedLeastSquaresValidation:
    def test_empty_stack_raises_clear_error(self):
        with pytest.raises(ReproError, match="empty"):
            weighted_least_squares_estimate(
                sp.csr_matrix((0, 4)), np.empty(0), np.empty(0)
            )
