"""Tests for :mod:`repro.postprocess.least_squares`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ReproError
from repro.mechanisms import haar_strategy, hierarchical_strategy
from repro.postprocess import (
    least_squares_estimate,
    project_non_negative,
    rescale_to_total,
    round_to_integers,
    weighted_least_squares_estimate,
)


class TestLeastSquares:
    def test_exact_recovery_from_noiseless_measurements(self, rng):
        data = rng.normal(size=16)
        strategy = haar_strategy(16)
        measurements = strategy.matrix @ data
        estimate = least_squares_estimate(strategy.matrix, measurements)
        assert np.allclose(estimate, data, atol=1e-8)

    def test_overdetermined_system_averages_noise(self, rng):
        # Measuring the hierarchical strategy (redundant rows) and solving by
        # least squares should beat reading off the leaf rows alone.
        data = np.zeros(32)
        strategy = hierarchical_strategy(32)
        leaf_rows = [
            index
            for index, node_row in enumerate(strategy.matrix.toarray())
            if node_row.sum() == 1.0
        ]
        errors_ls, errors_leaf = [], []
        for _ in range(40):
            noise = rng.normal(0, 1.0, strategy.num_measurements)
            measurements = strategy.matrix @ data + noise
            estimate = least_squares_estimate(strategy.matrix, measurements)
            errors_ls.append(np.mean(estimate**2))
            errors_leaf.append(np.mean(measurements[leaf_rows] ** 2))
        assert np.mean(errors_ls) < np.mean(errors_leaf)

    def test_accepts_dense_matrix(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        estimate = least_squares_estimate(matrix, np.array([1.0, 2.0, 3.0]))
        assert np.allclose(estimate, [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            least_squares_estimate(np.eye(3), np.ones(4))

    def test_weighted_least_squares_prefers_precise_measurements(self):
        # Two measurements of the same quantity with very different variances:
        # the estimate should be close to the precise one.
        matrix = sp.csr_matrix(np.array([[1.0], [1.0]]))
        measurements = np.array([10.0, 0.0])
        variances = np.array([1e6, 1.0])
        estimate = weighted_least_squares_estimate(matrix, measurements, variances)
        assert abs(estimate[0]) < 1.0

    def test_weighted_least_squares_validation(self):
        with pytest.raises(ReproError):
            weighted_least_squares_estimate(np.eye(2), np.ones(2), np.array([1.0, 0.0]))
        with pytest.raises(ReproError):
            weighted_least_squares_estimate(np.eye(2), np.ones(2), np.ones(3))


class TestSimpleProjections:
    def test_project_non_negative(self):
        assert np.allclose(project_non_negative(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_round_to_integers(self):
        assert np.allclose(round_to_integers(np.array([1.4, 2.6])), [1.0, 3.0])

    def test_rescale_to_total(self):
        rescaled = rescale_to_total(np.array([1.0, 3.0]), total=8.0)
        assert rescaled.sum() == pytest.approx(8.0)
        assert rescaled[1] == pytest.approx(6.0)

    def test_rescale_handles_all_zero(self):
        rescaled = rescale_to_total(np.array([-1.0, -2.0, -3.0]), total=6.0)
        assert rescaled.sum() == pytest.approx(6.0)

    def test_rescale_none_total_is_projection_only(self):
        rescaled = rescale_to_total(np.array([-1.0, 2.0]), total=None)
        assert np.allclose(rescaled, [0.0, 2.0])
