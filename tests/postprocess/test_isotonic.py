"""Tests for :mod:`repro.postprocess.isotonic`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.postprocess import (
    consistent_prefix_sums,
    distinct_block_count,
    isotonic_regression,
)


class TestIsotonicRegression:
    def test_already_monotone_is_unchanged(self):
        values = np.array([1.0, 2.0, 2.0, 5.0])
        assert np.allclose(isotonic_regression(values), values)

    def test_result_is_monotone(self, rng):
        values = rng.normal(size=200)
        result = isotonic_regression(values)
        assert np.all(np.diff(result) >= -1e-12)

    def test_simple_violation_is_averaged(self):
        assert np.allclose(isotonic_regression(np.array([2.0, 1.0])), [1.5, 1.5])

    def test_projection_never_increases_l2_error_to_monotone_truth(self, rng):
        truth = np.sort(rng.integers(0, 100, 100)).astype(float)
        noisy = truth + rng.normal(0, 10, 100)
        projected = isotonic_regression(noisy)
        assert np.sum((projected - truth) ** 2) <= np.sum((noisy - truth) ** 2) + 1e-9

    def test_decreasing_direction(self):
        values = np.array([1.0, 3.0, 2.0, 0.0])
        result = isotonic_regression(values, increasing=False)
        assert np.all(np.diff(result) <= 1e-12)

    def test_weights_shift_block_means(self):
        values = np.array([2.0, 0.0])
        heavy_first = isotonic_regression(values, weights=np.array([9.0, 1.0]))
        assert heavy_first[0] == pytest.approx(1.8)

    def test_weight_validation(self):
        with pytest.raises(ReproError):
            isotonic_regression(np.ones(3), weights=np.ones(2))
        with pytest.raises(ReproError):
            isotonic_regression(np.ones(3), weights=np.array([1.0, 0.0, 1.0]))

    def test_empty_input(self):
        assert isotonic_regression(np.array([])).shape == (0,)

    def test_mean_is_preserved(self, rng):
        values = rng.normal(size=50)
        assert isotonic_regression(values).mean() == pytest.approx(values.mean())


class TestConsistentPrefixSums:
    def test_monotone_and_clamped(self, rng):
        truth = np.cumsum(rng.integers(0, 5, 50)).astype(float)
        noisy = truth + rng.normal(0, 3, 50)
        consistent = consistent_prefix_sums(noisy, total=truth[-1])
        assert np.all(consistent >= 0)
        assert np.all(consistent <= truth[-1] + 1e-9)
        assert np.all(np.diff(consistent) >= -1e-9)

    def test_reduces_error_on_sparse_prefix_sums(self, rng):
        # Sparse histogram => many equal prefix sums => consistency collapses noise.
        counts = np.zeros(200)
        counts[[10, 150]] = [30, 50]
        truth = np.cumsum(counts)
        errors_raw, errors_consistent = [], []
        for _ in range(30):
            noisy = truth + rng.laplace(0, 5, 200)
            errors_raw.append(np.mean((noisy - truth) ** 2))
            errors_consistent.append(
                np.mean((consistent_prefix_sums(noisy, total=truth[-1]) - truth) ** 2)
            )
        assert np.mean(errors_consistent) < 0.5 * np.mean(errors_raw)

    def test_without_total(self):
        noisy = np.array([-1.0, 0.5, 0.2])
        consistent = consistent_prefix_sums(noisy)
        assert np.all(consistent >= 0)

    def test_without_non_negative(self):
        noisy = np.array([-1.0, -0.5])
        consistent = consistent_prefix_sums(noisy, non_negative=False)
        assert consistent[0] == pytest.approx(-1.0)


class TestDistinctBlockCount:
    def test_counts_blocks(self):
        assert distinct_block_count(np.array([1.0, 1.0, 2.0, 2.0, 3.0])) == 3

    def test_single_block(self):
        assert distinct_block_count(np.zeros(10)) == 1

    def test_empty(self):
        assert distinct_block_count(np.array([])) == 0

    def test_matches_nonzero_structure_of_prefix_sums(self):
        # Section 5.4.2: the number of distinct prefix sums equals the number of
        # non-zero histogram cells (plus one when the first cell is zero).
        counts = np.array([0.0, 2.0, 0.0, 0.0, 1.0, 0.0])
        prefix = np.cumsum(counts)
        nonzero = np.count_nonzero(counts)
        blocks = distinct_block_count(prefix)
        assert blocks in (nonzero, nonzero + 1)
