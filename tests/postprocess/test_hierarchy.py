"""Tests for :mod:`repro.postprocess.hierarchy`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.mechanisms import HierarchicalMechanism, build_interval_tree
from repro.postprocess import consistent_leaf_estimates, consistent_tree_counts


def _exact_counts(nodes, data):
    prefix = np.concatenate([[0.0], np.cumsum(data)])
    return np.array([prefix[node.upper] - prefix[node.lower] for node in nodes])


class TestConsistentTreeCounts:
    def test_noiseless_counts_are_fixed_point(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        nodes = build_interval_tree(8)
        exact = _exact_counts(nodes, data)
        consistent = consistent_tree_counts(nodes, exact)
        assert np.allclose(consistent, exact)

    def test_parent_equals_sum_of_children(self, rng):
        data = rng.integers(0, 10, 16).astype(float)
        nodes = build_interval_tree(16)
        noisy = _exact_counts(nodes, data) + rng.normal(0, 2, len(nodes))
        consistent = consistent_tree_counts(nodes, noisy)
        for parent in nodes:
            children = [
                child
                for child in nodes
                if child.level == parent.level + 1
                and parent.lower <= child.lower
                and child.upper <= parent.upper
            ]
            if children:
                child_sum = sum(consistent[child.index] for child in children)
                assert consistent[parent.index] == pytest.approx(child_sum, abs=1e-6)

    def test_reduces_leaf_error(self, rng):
        data = np.zeros(64)
        nodes = build_interval_tree(64)
        exact = _exact_counts(nodes, data)
        raw_errors, consistent_errors = [], []
        for _ in range(30):
            noisy = exact + rng.laplace(0, 2.0, len(nodes))
            leaves_raw = np.array(
                [noisy[node.index] for node in nodes if node.width == 1]
            )
            leaves_consistent = consistent_leaf_estimates(64, noisy)
            raw_errors.append(np.mean(leaves_raw**2))
            consistent_errors.append(np.mean(leaves_consistent**2))
        assert np.mean(consistent_errors) < np.mean(raw_errors)

    def test_length_mismatch_rejected(self):
        nodes = build_interval_tree(8)
        with pytest.raises(ReproError):
            consistent_tree_counts(nodes, np.ones(3))

    def test_consistent_leaf_estimates_shape(self, rng):
        mechanism = HierarchicalMechanism(1.0, size=32)
        noisy = mechanism.measure(np.zeros(32), rng)
        leaves = consistent_leaf_estimates(32, noisy)
        assert leaves.shape == (32,)

    def test_total_is_preserved_better_than_leaves(self, rng):
        # After consistency the root equals the sum of the leaves, so the total
        # inferred from leaves matches the (accurate) root measurement.
        data = np.full(32, 10.0)
        mechanism = HierarchicalMechanism(5.0, size=32)
        noisy = mechanism.measure(data, rng)
        leaves = consistent_leaf_estimates(32, noisy, branching=2)
        nodes = build_interval_tree(32)
        consistent = consistent_tree_counts(nodes, noisy)
        assert leaves.sum() == pytest.approx(consistent[0], abs=1e-6)
