"""Property-based tests (hypothesis) for the policy transform invariants.

These encode the paper's core identities as universally quantified properties
over random databases, workloads and policies:

* ``W x = W_G x_G + c(W, n)`` for every policy/workload/database triple;
* Lemma 4.7: policy sensitivity equals the DP sensitivity of ``W_G``;
* Lemma 4.9: Blowfish neighbors of tree policies map to vectors at L1
  distance exactly one;
* subtree counts invert exactly (``P_G`` is a bijection on trees).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Database, Domain, Workload, unbounded_sensitivity
from repro.core.range_queries import RangeQuery, range_queries_workload
from repro.policy import (
    PolicyTransform,
    TreeTransform,
    line_policy,
    star_policy,
    threshold_policy,
)

# Keep the generated instances small so that each example is fast; the number
# of examples supplies the coverage.
SIZES = st.integers(min_value=3, max_value=24)


@st.composite
def domain_and_counts(draw):
    size = draw(SIZES)
    counts = draw(
        st.lists(st.integers(min_value=0, max_value=20), min_size=size, max_size=size)
    )
    return Domain((size,)), np.array(counts, dtype=float)


@st.composite
def domain_counts_and_ranges(draw):
    domain, counts = draw(domain_and_counts())
    size = domain.size
    num_queries = draw(st.integers(min_value=1, max_value=6))
    queries = []
    for _ in range(num_queries):
        lower = draw(st.integers(min_value=0, max_value=size - 1))
        upper = draw(st.integers(min_value=lower, max_value=size - 1))
        queries.append(RangeQuery((lower,), (upper,)))
    workload = range_queries_workload(domain, queries)
    return domain, counts, workload


@st.composite
def theta_for(draw, size):
    return draw(st.integers(min_value=1, max_value=max(1, min(4, size - 1))))


class TestAnswerPreservationProperty:
    @given(data=domain_counts_and_ranges(), theta=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_threshold_policy_preserves_answers(self, data, theta):
        domain, counts, workload = data
        theta = min(theta, domain.size - 1)
        policy = threshold_policy(domain, theta)
        transform = PolicyTransform(policy)
        database = Database(domain, counts)
        instance = transform.transform_instance(workload, database)
        assert np.allclose(instance.true_answers(), workload.answer(database), atol=1e-6)

    @given(data=domain_counts_and_ranges(), center_seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_star_policy_preserves_answers(self, data, center_seed):
        domain, counts, workload = data
        policy = star_policy(domain, center=center_seed % domain.size)
        transform = PolicyTransform(policy)
        database = Database(domain, counts)
        instance = transform.transform_instance(workload, database)
        assert np.allclose(instance.true_answers(), workload.answer(database), atol=1e-6)


class TestSensitivityProperty:
    @given(data=domain_counts_and_ranges(), theta=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_lemma_4_7(self, data, theta):
        domain, _, workload = data
        theta = min(theta, domain.size - 1)
        policy = threshold_policy(domain, theta)
        transform = PolicyTransform(policy)
        direct = transform.policy_sensitivity(workload)
        via_transform = unbounded_sensitivity(transform.transform_workload(workload))
        assert np.isclose(direct, via_transform)

    @given(data=domain_counts_and_ranges())
    @settings(max_examples=40, deadline=None)
    def test_policy_sensitivity_bounded_by_twice_max_row_count(self, data):
        # Moving one record changes every counting query by at most 1 in
        # absolute value, so the policy sensitivity of a q-query counting
        # workload is at most q (and at most twice the unbounded sensitivity).
        domain, _, workload = data
        policy = line_policy(domain)
        transform = PolicyTransform(policy)
        assert transform.policy_sensitivity(workload) <= workload.num_queries + 1e-9


class TestTreeProperties:
    @given(data=domain_and_counts())
    @settings(max_examples=60, deadline=None)
    def test_line_transform_is_prefix_sums(self, data):
        domain, counts = data
        tree = TreeTransform(PolicyTransform(line_policy(domain)))
        x_g = tree.transform_database(Database(domain, counts))
        assert np.allclose(x_g, np.cumsum(counts)[:-1])

    @given(data=domain_and_counts(), center_seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_tree_transform_roundtrip(self, data, center_seed):
        domain, counts = data
        policy = star_policy(domain, center=center_seed % domain.size)
        tree = TreeTransform(PolicyTransform(policy))
        database = Database(domain, counts)
        recovered = tree.inverse_transform(tree.transform_database(database))
        assert np.allclose(recovered, counts[tree.transform.kept_vertices])

    @given(
        data=domain_and_counts(),
        edge_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_lemma_4_9_neighbor_distance_is_one(self, data, edge_seed):
        domain, counts = data
        counts = counts + 1.0  # ensure every vertex has a record to move
        policy = line_policy(domain)
        tree = TreeTransform(PolicyTransform(policy))
        database = Database(domain, counts)
        edge_index = edge_seed % len(policy.edges)
        assert tree.verify_neighbor_preservation(database, edge_index)

    @given(data=domain_and_counts())
    @settings(max_examples=40, deadline=None)
    def test_transformed_values_bounded_by_total(self, data):
        domain, counts = data
        tree = TreeTransform(PolicyTransform(line_policy(domain)))
        x_g = tree.transform_database(Database(domain, counts))
        assert np.all(np.abs(x_g) <= counts.sum() + 1e-9)
