"""Property-based tests for the post-processing primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.postprocess import (
    consistent_prefix_sums,
    isotonic_regression,
    project_non_negative,
    rescale_to_total,
)

FLOAT_ARRAYS = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=60),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
)


class TestIsotonicProperties:
    @given(values=FLOAT_ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_output_is_monotone(self, values):
        result = isotonic_regression(values)
        assert np.all(np.diff(result) >= -1e-9)

    @given(values=FLOAT_ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_mean_preserved(self, values):
        result = isotonic_regression(values)
        assert np.isclose(result.mean(), values.mean(), rtol=1e-9, atol=1e-6)

    @given(values=FLOAT_ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_idempotent(self, values):
        once = isotonic_regression(values)
        twice = isotonic_regression(once)
        assert np.allclose(once, twice, atol=1e-9)

    @given(values=FLOAT_ARRAYS)
    @settings(max_examples=50, deadline=None)
    def test_projection_is_closer_to_any_monotone_vector(self, values):
        # Characteristic property of a projection onto a convex cone: for the
        # specific monotone vector "all equal to the mean", the projection is
        # at least as close as the original point.
        target = np.full_like(values, values.mean())
        projected = isotonic_regression(values)
        assert np.sum((projected - target) ** 2) <= np.sum((values - target) ** 2) + 1e-6

    @given(values=FLOAT_ARRAYS)
    @settings(max_examples=50, deadline=None)
    def test_monotone_input_is_fixed_point(self, values):
        monotone = np.sort(values)
        assert np.allclose(isotonic_regression(monotone), monotone)


class TestPrefixConsistencyProperties:
    @given(values=FLOAT_ARRAYS, total=st.floats(min_value=0, max_value=1e4))
    @settings(max_examples=80, deadline=None)
    def test_output_within_bounds(self, values, total):
        result = consistent_prefix_sums(values, total=total)
        assert np.all(result >= -1e-9)
        assert np.all(result <= total + 1e-9)
        assert np.all(np.diff(result) >= -1e-9)


class TestProjectionProperties:
    @given(values=FLOAT_ARRAYS)
    @settings(max_examples=60, deadline=None)
    def test_non_negative_projection(self, values):
        result = project_non_negative(values)
        assert np.all(result >= 0)
        assert np.all(result >= values - 1e-12)

    @given(values=FLOAT_ARRAYS, total=st.floats(min_value=0.1, max_value=1e4))
    @settings(max_examples=60, deadline=None)
    def test_rescale_hits_total(self, values, total):
        result = rescale_to_total(values, total)
        assert np.isclose(result.sum(), total, rtol=1e-6)
        assert np.all(result >= 0)
