"""Property-based tests for mechanism-level invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core import Database, Domain, identity_workload
from repro.mechanisms import (
    DawaMechanism,
    LaplaceHistogram,
    PriveletMechanism,
    greedy_partition,
    haar_strategy,
    hierarchical_strategy,
    identity_strategy,
)
from repro.blowfish import PolicyMatrixMechanism
from repro.policy import line_policy, threshold_policy

COUNT_ARRAYS = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=40),
    elements=st.integers(min_value=0, max_value=50).map(float),
)


class TestStrategyProperties:
    @given(size=st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_haar_sensitivity_matches_column_norm(self, size):
        strategy = haar_strategy(size)
        column_norms = np.abs(strategy.matrix.toarray()).sum(axis=0)
        assert column_norms.max() <= strategy.sensitivity + 1e-9

    @given(size=st.integers(min_value=1, max_value=64), branching=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_hierarchical_sensitivity_matches_column_norm(self, size, branching):
        strategy = hierarchical_strategy(size, branching)
        column_norms = np.abs(strategy.matrix.toarray()).sum(axis=0)
        assert np.isclose(column_norms.max(), strategy.sensitivity)

    @given(data=COUNT_ARRAYS)
    @settings(max_examples=40, deadline=None)
    def test_haar_reconstruction_exact(self, data):
        strategy = haar_strategy(data.shape[0])
        measurements = strategy.matrix @ data
        assert np.allclose(strategy.apply_pseudo_inverse(measurements), data, atol=1e-6)


class TestEstimatorProperties:
    @given(data=COUNT_ARRAYS)
    @settings(max_examples=30, deadline=None)
    def test_privelet_is_unbiased_reconstruction_without_noise(self, data):
        mechanism = PriveletMechanism(1e12, data.shape[0])
        estimate = mechanism.estimate_vector(data, random_state=0)
        assert np.allclose(estimate, data, atol=1e-3)

    @given(data=COUNT_ARRAYS)
    @settings(max_examples=30, deadline=None)
    def test_laplace_histogram_estimate_is_finite(self, data):
        mechanism = LaplaceHistogram(0.5)
        estimate = mechanism.estimate_vector(data, random_state=1)
        assert np.all(np.isfinite(estimate))
        assert estimate.shape == data.shape

    @given(data=COUNT_ARRAYS)
    @settings(max_examples=20, deadline=None)
    def test_dawa_estimate_is_finite_and_right_shape(self, data):
        mechanism = DawaMechanism(0.5, (data.shape[0],))
        estimate = mechanism.estimate_vector(data, random_state=2)
        assert estimate.shape == data.shape
        assert np.all(np.isfinite(estimate))

    @given(data=COUNT_ARRAYS)
    @settings(max_examples=30, deadline=None)
    def test_greedy_partition_covers_domain(self, data):
        buckets = greedy_partition(data, bucket_cost=1.0, noise_level=0.5)
        covered = [i for start, end in buckets for i in range(start, end)]
        assert covered == list(range(data.shape[0]))


class TestBlowfishMechanismProperties:
    @given(
        data=COUNT_ARRAYS,
        theta=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_policy_matrix_mechanism_noise_is_additive_and_finite(self, data, theta, seed):
        domain = Domain((data.shape[0],))
        policy = threshold_policy(domain, min(theta, data.shape[0] - 1))
        database = Database(domain, data)
        workload = identity_workload(domain)
        mechanism = PolicyMatrixMechanism(policy, epsilon=0.5)
        answers = mechanism.answer(workload, database, seed)
        assert answers.shape == (domain.size,)
        assert np.all(np.isfinite(answers))

    @given(data=COUNT_ARRAYS, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_policy_matrix_mechanism_error_independent_of_shift(self, data, seed):
        # Adding the same constant to all counts shifts the answers but not the
        # noise: with the same seed the residual noise must be identical
        # (data independence of matrix mechanisms, Theorem 4.1's precondition).
        domain = Domain((data.shape[0],))
        policy = line_policy(domain)
        workload = identity_workload(domain)
        mechanism = PolicyMatrixMechanism(policy, epsilon=0.7)
        base = Database(domain, data)
        shifted = Database(domain, data + 5.0)
        noise_base = mechanism.answer(workload, base, seed) - workload.answer(base)
        noise_shifted = mechanism.answer(workload, shifted, seed) - workload.answer(shifted)
        assert np.allclose(noise_base, noise_shifted)
