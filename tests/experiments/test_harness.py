"""Tests for :mod:`repro.experiments.harness` and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload
from repro.exceptions import ExperimentError
from repro.blowfish import blowfish_transformed_laplace, dp_laplace_baseline
from repro.experiments import (
    ComparisonResult,
    format_table,
    mean_error_of,
    pivot_results,
    render_results,
    results_by_algorithm,
    run_comparison,
)
from repro.policy import line_policy


@pytest.fixture
def tiny_setup():
    domain = Domain((32,))
    database = Database(domain, np.full(32, 3.0), name="tiny")
    workload = identity_workload(domain)
    policy = line_policy(domain)
    algorithms = [dp_laplace_baseline(0.5), blowfish_transformed_laplace(policy, 0.5)]
    return algorithms, workload, database


class TestRunComparison:
    def test_one_result_per_algorithm(self, tiny_setup):
        algorithms, workload, database = tiny_setup
        results = run_comparison(algorithms, workload, database, epsilon=0.5, trials=2, random_state=0)
        assert len(results) == 2
        assert {r.algorithm for r in results} == {"Laplace", "Transformed+Laplace"}

    def test_trials_recorded(self, tiny_setup):
        algorithms, workload, database = tiny_setup
        results = run_comparison(algorithms, workload, database, epsilon=0.5, trials=3, random_state=0)
        assert all(r.trials == 3 for r in results)

    def test_reproducible_with_seed(self, tiny_setup):
        algorithms, workload, database = tiny_setup
        first = run_comparison(algorithms, workload, database, epsilon=0.5, trials=2, random_state=7)
        second = run_comparison(algorithms, workload, database, epsilon=0.5, trials=2, random_state=7)
        assert [r.mean_error for r in first] == [r.mean_error for r in second]

    def test_extra_metadata_propagates(self, tiny_setup):
        algorithms, workload, database = tiny_setup
        results = run_comparison(
            algorithms, workload, database, epsilon=0.5, trials=1,
            random_state=0, extra={"policy": "G^1"},
        )
        assert all(r.extra["policy"] == "G^1" for r in results)
        assert all(r.as_dict()["policy"] == "G^1" for r in results)

    def test_invalid_arguments(self, tiny_setup):
        algorithms, workload, database = tiny_setup
        with pytest.raises(ExperimentError):
            run_comparison(algorithms, workload, database, epsilon=0.5, trials=0)
        with pytest.raises(ExperimentError):
            run_comparison([], workload, database, epsilon=0.5, trials=1)

    def test_mean_error_positive(self, tiny_setup):
        algorithms, workload, database = tiny_setup
        results = run_comparison(algorithms, workload, database, epsilon=0.5, trials=2, random_state=0)
        assert all(r.mean_error > 0 for r in results)


class TestResultHelpers:
    def _results(self):
        return [
            ComparisonResult("Laplace", "A", 0.1, "Hist", 10.0, 0.1, 3),
            ComparisonResult("Laplace", "B", 0.1, "Hist", 20.0, 0.1, 3),
            ComparisonResult("Blowfish", "A", 0.1, "Hist", 2.0, 0.1, 3),
        ]

    def test_results_by_algorithm(self):
        grouped = results_by_algorithm(self._results())
        assert len(grouped["Laplace"]) == 2
        assert len(grouped["Blowfish"]) == 1

    def test_mean_error_of(self):
        assert mean_error_of(self._results(), "Laplace") == 15.0
        assert mean_error_of(self._results(), "Laplace", dataset="A") == 10.0

    def test_mean_error_of_missing_algorithm(self):
        with pytest.raises(ExperimentError):
            mean_error_of(self._results(), "Unknown")

    def test_pivot_results(self):
        table = pivot_results(self._results())
        assert table[0]["dataset"] == "A"
        assert table[0]["Laplace"] == 10.0
        assert table[0]["Blowfish"] == 2.0
        assert table[1]["Blowfish"] == ""

    def test_render_results_contains_all_names(self):
        text = render_results(self._results(), title="demo")
        assert "demo" in text
        assert "Laplace" in text and "Blowfish" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_alignment(self):
        text = format_table([{"a": 1.0, "b": "x"}, {"a": 22.5, "b": "yy"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) >= 1
