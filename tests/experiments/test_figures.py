"""Integration tests for the figure/table runners (reduced-size configurations).

These tests run every experiment runner on miniature configurations and check
both the plumbing (result shapes, labels) and the qualitative findings the
paper reports for each panel.  The full-size runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablate_consistency,
    ablate_dawa_budget_split,
    ablate_grid_strategy,
    ablate_spanner_stretch,
    empirical_scaling_1d,
    figure10_rows,
    figure3_rows,
    mean_error_of,
    qualitative_findings_1d,
    qualitative_findings_2d,
    run_figure10a,
    run_figure10b,
    run_hist_experiment,
    run_range1d_experiment,
    run_range1d_theta_experiment,
    run_range2d_experiment,
    table1_fidelity,
    table1_rows,
)


class TestTable1Runner:
    def test_rows_cover_all_datasets(self):
        rows = table1_rows(random_state=0)
        assert len(rows) == 10

    def test_fidelity_is_tight(self):
        fidelity = table1_fidelity(random_state=0)
        for stats in fidelity.values():
            assert stats["scale_relative_error"] < 1e-6
            assert stats["zero_percent_absolute_error"] < 8.0


class TestFigure3Runner:
    def test_table_rows(self):
        rows = figure3_rows()
        assert len(rows) == 4
        assert all(row["improvement"] > 1 for row in rows)

    def test_empirical_scaling_1d_blowfish_flat(self):
        results = empirical_scaling_1d(
            epsilon=0.2, domain_sizes=(64, 256), num_queries=150, trials=2, random_state=0
        )
        blowfish = [r for r in results if r.algorithm == "Transformed+Laplace"]
        privelet = [r for r in results if r.algorithm == "Privelet"]
        # Blowfish error roughly flat; Privelet error grows with the domain.
        assert blowfish[-1].mean_error < 5 * blowfish[0].mean_error
        assert privelet[-1].mean_error > privelet[0].mean_error


class TestFigure8Runners:
    def test_hist_panel_qualitative(self):
        results = run_hist_experiment(
            epsilon=0.1, datasets=("E",), trials=2, domain_size=1024, random_state=0
        )
        assert mean_error_of(results, "Transformed+ConsistentEst") < mean_error_of(
            results, "Laplace"
        )
        assert mean_error_of(results, "Transformed+Laplace") < mean_error_of(results, "Laplace")

    def test_range1d_panel_qualitative(self):
        results = run_range1d_experiment(
            epsilon=0.1, datasets=("D",), num_queries=200, trials=2,
            domain_size=1024, random_state=0,
        )
        assert mean_error_of(results, "Transformed+Laplace") < mean_error_of(
            results, "Privelet"
        ) / 20

    def test_range1d_theta_panel_qualitative(self):
        results = run_range1d_theta_experiment(
            epsilon=0.1, theta=4, domain_sizes=(512, 1024), num_queries=200,
            trials=2, random_state=0,
        )
        # Blowfish beats Privelet at every domain size, and its error does not
        # blow up with the domain size.
        for size in (512, 1024):
            blowfish = mean_error_of(results, "Transformed+Laplace", dataset=str(size))
            privelet = mean_error_of(results, "Privelet", dataset=str(size))
            assert blowfish < privelet
        blowfish_small = mean_error_of(results, "Transformed+Laplace", dataset="512")
        blowfish_large = mean_error_of(results, "Transformed+Laplace", dataset="1024")
        assert blowfish_large < 5 * blowfish_small

    def test_range2d_panel_qualitative(self):
        results = run_range2d_experiment(
            epsilon=0.1, datasets=("T25",), num_queries=200, trials=2, random_state=0
        )
        assert mean_error_of(results, "Transformed+Privelet") < mean_error_of(
            results, "Privelet"
        )

    def test_results_carry_policy_metadata(self):
        results = run_hist_experiment(
            epsilon=0.1, datasets=("G",), trials=1, domain_size=512, random_state=0
        )
        assert all("policy" in r.extra for r in results)


class TestFigure10Runners:
    def test_figure10a_findings(self):
        points = run_figure10a(domain_sizes=(32, 64), thetas=(1, 2, 4))
        findings = qualitative_findings_1d(points)
        assert findings["unbounded_grows_faster_than_theta1"]

    def test_figure10b_findings(self):
        points = run_figure10b(domain_sizes=(16, 36), thetas=(1, 2))
        findings = qualitative_findings_2d(points)
        assert findings["theta1_below_unbounded"]
        assert findings["all_theta_below_bounded"]

    def test_rows_pivot(self):
        points = run_figure10a(domain_sizes=(32,), thetas=(1,))
        rows = figure10_rows(points)
        assert rows[0]["domain_size"] == 32
        assert "theta=1" in rows[0]


class TestAblations:
    def test_consistency_helps_more_on_sparse_data(self):
        results = ablate_consistency(
            epsilon=0.1, domain_size=256, zero_fractions=(0.2, 0.95), trials=2, random_state=0
        )

        def gain(zero_fraction):
            raw = [
                r.mean_error
                for r in results
                if r.algorithm == "Transformed+Laplace"
                and r.extra["zero_fraction"] == zero_fraction
            ][0]
            consistent = [
                r.mean_error
                for r in results
                if r.algorithm == "Transformed+ConsistentEst"
                and r.extra["zero_fraction"] == zero_fraction
            ][0]
            return raw / consistent

        assert gain(0.95) > gain(0.2)

    def test_dawa_budget_split_returns_all_fractions(self):
        results = ablate_dawa_budget_split(
            epsilon=0.1, domain_size=256, fractions=(0.25, 0.5), trials=1, random_state=0
        )
        assert {r.extra["rho"] for r in results} == {0.25, 0.5}

    def test_spanner_stretch_penalty_grows_with_theta(self):
        results = ablate_spanner_stretch(
            epsilon=0.2, domain_size=256, thetas=(1, 8), num_queries=150, trials=2, random_state=0
        )
        error_theta1 = [r.mean_error for r in results if r.extra["theta"] == 1][0]
        error_theta8 = [r.mean_error for r in results if r.extra["theta"] == 8][0]
        assert error_theta8 > error_theta1

    def test_grid_strategy_ablation_runs(self):
        results = ablate_grid_strategy(
            epsilon=0.2, grid_size=12, num_queries=100, trials=1, random_state=0
        )
        assert {r.algorithm for r in results} == {"slab-haar", "slab-identity"}
