"""Tests for :mod:`repro.mechanisms.dawa`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload
from repro.exceptions import MechanismError
from repro.mechanisms import (
    DawaMechanism,
    LaplaceHistogram,
    bucket_deviation,
    greedy_partition,
    optimal_partition,
)


class TestBucketDeviation:
    def test_constant_bucket_has_zero_deviation(self):
        assert bucket_deviation(np.full(10, 3.0)) == 0.0

    def test_deviation_around_median(self):
        assert bucket_deviation(np.array([0.0, 0.0, 10.0])) == 10.0

    def test_noise_adjustment_reduces_deviation(self):
        values = np.array([0.0, 1.0, -1.0, 0.5])
        assert bucket_deviation(values, noise_level=1.0) <= bucket_deviation(values)

    def test_empty_bucket(self):
        assert bucket_deviation(np.array([])) == 0.0


class TestPartitions:
    def test_greedy_covers_domain(self):
        noisy = np.array([0.0, 0.1, -0.2, 5.0, 5.1, 4.9, 0.0, 0.05])
        buckets = greedy_partition(noisy, bucket_cost=1.0, noise_level=0.1)
        covered = []
        for start, end in buckets:
            covered.extend(range(start, end))
        assert covered == list(range(8))

    def test_greedy_merges_constant_regions(self):
        noisy = np.zeros(64)
        buckets = greedy_partition(noisy, bucket_cost=1.0, noise_level=0.0)
        assert len(buckets) == 1

    def test_greedy_splits_heterogeneous_regions(self):
        noisy = np.array([0.0] * 8 + [100.0] * 8)
        buckets = greedy_partition(noisy, bucket_cost=1.0, noise_level=0.0)
        assert len(buckets) >= 2

    def test_optimal_covers_domain(self):
        noisy = np.array([1.0, 1.0, 8.0, 8.0, 1.0])
        buckets = optimal_partition(noisy, bucket_cost=0.5, noise_level=0.0)
        covered = []
        for start, end in buckets:
            covered.extend(range(start, end))
        assert covered == list(range(5))

    def test_optimal_cost_not_worse_than_greedy(self):
        rng = np.random.default_rng(0)
        noisy = np.concatenate([np.zeros(10), rng.normal(20, 1, 10), np.zeros(10)])
        bucket_cost, noise_level = 2.0, 1.0

        def cost(buckets):
            return sum(
                bucket_deviation(noisy[s:e], noise_level) + bucket_cost for s, e in buckets
            )

        greedy_cost = cost(greedy_partition(noisy, bucket_cost, noise_level))
        optimal_cost = cost(optimal_partition(noisy, bucket_cost, noise_level))
        assert optimal_cost <= greedy_cost + 1e-9

    def test_empty_input(self):
        assert greedy_partition(np.array([]), 1.0, 0.0) == []
        assert optimal_partition(np.array([]), 1.0, 0.0) == []


class TestDawaMechanism:
    def test_estimate_shape(self, rng):
        mechanism = DawaMechanism(1.0, (64,))
        estimate = mechanism.estimate_vector(np.zeros(64), rng)
        assert estimate.shape == (64,)

    def test_budget_split(self):
        mechanism = DawaMechanism(1.0, partition_budget_fraction=0.25)
        assert mechanism.partition_epsilon == 0.25
        assert mechanism.measurement_epsilon == 0.75

    def test_invalid_budget_fraction(self):
        with pytest.raises(MechanismError):
            DawaMechanism(1.0, partition_budget_fraction=0.0)
        with pytest.raises(MechanismError):
            DawaMechanism(1.0, partition_budget_fraction=1.0)

    def test_invalid_sensitivity(self):
        with pytest.raises(MechanismError):
            DawaMechanism(1.0, sensitivity=0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MechanismError):
            DawaMechanism(1.0, (8, 8)).estimate_vector(np.zeros(10))

    def test_beats_laplace_on_sparse_data(self, rng):
        # The defining behaviour the paper relies on (Section 5.4.1): on sparse
        # data DAWA's partitioning collapses the error well below Laplace.
        k = 512
        domain = Domain((k,))
        counts = np.zeros(k)
        counts[[10, 200, 401]] = [50.0, 80.0, 30.0]
        database = Database(domain, counts)
        workload = identity_workload(domain)
        epsilon = 0.1
        true_answers = workload.answer(database)

        def mean_error(mechanism):
            errors = []
            for _ in range(5):
                noisy = mechanism.answer(workload, database, rng)
                errors.append(np.mean((noisy - true_answers) ** 2))
            return np.mean(errors)

        assert mean_error(DawaMechanism(epsilon, (k,))) < 0.5 * mean_error(
            LaplaceHistogram(epsilon)
        )

    def test_comparable_to_laplace_on_irregular_data(self, rng):
        # On highly irregular data DAWA should not be catastrophically worse
        # than Laplace (within a small constant factor).
        k = 256
        domain = Domain((k,))
        counts = rng.integers(0, 1000, k).astype(float)
        database = Database(domain, counts)
        workload = identity_workload(domain)
        epsilon = 1.0
        true_answers = workload.answer(database)

        def mean_error(mechanism):
            errors = []
            for _ in range(5):
                noisy = mechanism.answer(workload, database, rng)
                errors.append(np.mean((noisy - true_answers) ** 2))
            return np.mean(errors)

        assert mean_error(DawaMechanism(epsilon, (k,))) < 200 * mean_error(
            LaplaceHistogram(epsilon)
        )

    def test_partition_for_exposes_buckets(self, rng):
        mechanism = DawaMechanism(1.0, (32,))
        buckets = mechanism.partition_for(np.zeros(32), rng)
        assert buckets[0][0] == 0
        assert buckets[-1][1] == 32

    def test_optimal_partition_variant(self, rng):
        mechanism = DawaMechanism(1.0, (16,), use_optimal_partition=True)
        estimate = mechanism.estimate_vector(np.zeros(16), rng)
        assert estimate.shape == (16,)

    def test_2d_data_uses_hilbert_ordering(self, rng):
        mechanism = DawaMechanism(0.5, (8, 8))
        estimate = mechanism.estimate_vector(np.zeros(64), rng)
        assert estimate.shape == (64,)

    def test_data_dependent_flag(self):
        assert DawaMechanism(1.0).data_dependent is True
