"""Tests for :mod:`repro.mechanisms.exponential`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain
from repro.exceptions import MechanismError
from repro.mechanisms import ExponentialMechanism, graph_distance_exponential_mechanism
from repro.policy import cycle_policy, line_policy, policy_from_edges


class TestExponentialMechanism:
    def test_probabilities_sum_to_one(self):
        mechanism = ExponentialMechanism(
            1.0, candidates=[0, 1, 2], score=lambda d, c: -abs(d - c), score_sensitivity=1.0
        )
        assert mechanism.probabilities(1).sum() == pytest.approx(1.0)

    def test_best_candidate_is_most_likely(self):
        mechanism = ExponentialMechanism(
            2.0, candidates=[0, 1, 2, 3], score=lambda d, c: -abs(d - c), score_sensitivity=1.0
        )
        probabilities = mechanism.probabilities(2)
        assert np.argmax(probabilities) == 2

    def test_higher_epsilon_concentrates_more(self):
        def score(d, c):
            return -abs(d - c)

        weak = ExponentialMechanism(0.1, [0, 1, 2, 3], score, 1.0).probabilities(0)
        strong = ExponentialMechanism(5.0, [0, 1, 2, 3], score, 1.0).probabilities(0)
        assert strong[0] > weak[0]

    def test_sampling_respects_distribution(self, rng):
        mechanism = ExponentialMechanism(
            3.0, candidates=["a", "b"], score=lambda d, c: 1.0 if c == d else 0.0,
            score_sensitivity=1.0,
        )
        samples = [mechanism.sample("a", rng) for _ in range(300)]
        assert samples.count("a") > 200

    def test_empty_candidates_rejected(self):
        with pytest.raises(MechanismError):
            ExponentialMechanism(1.0, [], lambda d, c: 0.0, 1.0)

    def test_bad_sensitivity_rejected(self):
        with pytest.raises(MechanismError):
            ExponentialMechanism(1.0, [1], lambda d, c: 0.0, 0.0)


class TestGraphDistanceMechanism:
    def test_output_probabilities_follow_graph_distance(self):
        policy = cycle_policy(Domain((6,)))
        mechanism = graph_distance_exponential_mechanism(policy, 1.0)
        probabilities = mechanism.probabilities(0)
        # Probability is proportional to exp(-eps * dist); distances on a
        # 6-cycle from 0 are [0, 1, 2, 3, 2, 1].
        expected = np.exp(-1.0 * np.array([0, 1, 2, 3, 2, 1]))
        expected /= expected.sum()
        assert np.allclose(probabilities, expected)

    def test_blowfish_privacy_on_policy_edges(self):
        # For inputs adjacent in the policy graph the output ratio is bounded
        # by exp(eps) — the (eps, G)-Blowfish guarantee of the mechanism.
        epsilon = 0.8
        policy = cycle_policy(Domain((7,)))
        mechanism = graph_distance_exponential_mechanism(policy, epsilon)
        for u, v in policy.edges:
            p_u = mechanism.probabilities(int(u))
            p_v = mechanism.probabilities(int(v))
            ratios = p_u / p_v
            assert np.all(ratios <= np.exp(epsilon) + 1e-9)

    def test_privacy_degrades_with_distance(self):
        # Theorem 4.4's mechanism distinguishes far-apart values much better
        # than adjacent ones, which is exactly the behaviour standard DP on any
        # transformed instance could not reproduce for a cycle.
        epsilon = 1.0
        policy = cycle_policy(Domain((8,)))
        mechanism = graph_distance_exponential_mechanism(policy, epsilon)
        p_0 = mechanism.probabilities(0)
        p_far = mechanism.probabilities(4)
        worst_ratio = np.max(p_0 / p_far)
        assert worst_ratio > np.exp(epsilon) + 1e-6

    def test_line_policy_also_supported(self):
        mechanism = graph_distance_exponential_mechanism(line_policy(Domain((5,))), 1.0)
        assert mechanism.probabilities(2).shape == (5,)

    def test_disconnected_policy_rejected(self):
        policy = policy_from_edges(Domain((4,)), [(0, 1), (2, 3)])
        with pytest.raises(MechanismError):
            graph_distance_exponential_mechanism(policy, 1.0)
