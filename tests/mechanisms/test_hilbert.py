"""Tests for :mod:`repro.mechanisms.hilbert`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MechanismError
from repro.mechanisms import hilbert_index, hilbert_order, ordering_for_shape


class TestHilbertIndex:
    def test_bijection_on_small_grid(self):
        order = 3
        n = 1 << order
        indices = {hilbert_index(order, x, y) for x in range(n) for y in range(n)}
        assert indices == set(range(n * n))

    def test_adjacent_curve_positions_are_adjacent_cells(self):
        order = 3
        n = 1 << order
        position_of = {}
        for x in range(n):
            for y in range(n):
                position_of[hilbert_index(order, x, y)] = (x, y)
        for position in range(n * n - 1):
            x1, y1 = position_of[position]
            x2, y2 = position_of[position + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(MechanismError):
            hilbert_index(2, 4, 0)


class TestHilbertOrder:
    def test_is_permutation_square(self):
        perm = hilbert_order((8, 8))
        assert sorted(perm.tolist()) == list(range(64))

    def test_is_permutation_rectangular(self):
        perm = hilbert_order((5, 9))
        assert sorted(perm.tolist()) == list(range(45))

    def test_locality_beats_row_major(self):
        # Average Manhattan distance between consecutive cells in the ordering
        # should be lower for the Hilbert curve than for row-major order on a
        # reasonably sized grid (row-major jumps at the end of every row).
        rows, cols = 16, 16
        perm = hilbert_order((rows, cols))
        coordinates = np.stack([perm // cols, perm % cols], axis=1)
        hilbert_jumps = np.abs(np.diff(coordinates, axis=0)).sum(axis=1)
        row_major = np.arange(rows * cols)
        rm_coordinates = np.stack([row_major // cols, row_major % cols], axis=1)
        row_major_jumps = np.abs(np.diff(rm_coordinates, axis=0)).sum(axis=1)
        assert hilbert_jumps.mean() <= row_major_jumps.mean()

    def test_rejects_bad_shape(self):
        with pytest.raises(MechanismError):
            hilbert_order((0, 4))
        with pytest.raises(MechanismError):
            hilbert_order((4,))  # type: ignore[arg-type]


class TestOrderingForShape:
    def test_1d_is_identity(self):
        assert np.array_equal(ordering_for_shape((10,)), np.arange(10))

    def test_2d_uses_hilbert(self):
        perm = ordering_for_shape((4, 4))
        assert sorted(perm.tolist()) == list(range(16))
        assert not np.array_equal(perm, np.arange(16))

    def test_3d_falls_back_to_identity(self):
        assert np.array_equal(ordering_for_shape((2, 2, 2)), np.arange(8))

    def test_degenerate_2d_falls_back(self):
        assert np.array_equal(ordering_for_shape((1, 8)), np.arange(8))
