"""Tests for :mod:`repro.mechanisms.gaussian` (the (ε, δ) substrate of Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms import (
    GaussianHistogram,
    gaussian_estimator_factory,
    gaussian_noise,
    gaussian_sigma,
)
from repro.blowfish import TreeTransformMechanism
from repro.policy import line_policy


class TestGaussianSigma:
    def test_classic_formula(self):
        assert gaussian_sigma(1.0, 1e-5, 1.0) == pytest.approx(np.sqrt(2 * np.log(1.25e5)))

    def test_scales_with_sensitivity_and_epsilon(self):
        base = gaussian_sigma(1.0, 1e-5, 1.0)
        assert gaussian_sigma(1.0, 1e-5, 2.0) == pytest.approx(2 * base)
        assert gaussian_sigma(0.5, 1e-5, 1.0) == pytest.approx(2 * base)

    def test_smaller_delta_means_more_noise(self):
        assert gaussian_sigma(1.0, 1e-8) > gaussian_sigma(1.0, 1e-2)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1])
    def test_invalid_delta_rejected(self, delta):
        with pytest.raises(PrivacyBudgetError):
            gaussian_sigma(1.0, delta)

    def test_invalid_sensitivity_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            gaussian_sigma(1.0, 1e-5, -1.0)


class TestGaussianNoise:
    def test_empirical_standard_deviation(self, rng):
        sigma = gaussian_sigma(1.0, 1e-5)
        samples = gaussian_noise(1.0, 1e-5, 100_000, random_state=rng)
        assert np.std(samples) == pytest.approx(sigma, rel=0.05)

    def test_zero_sensitivity_gives_zero_noise(self):
        assert np.all(gaussian_noise(1.0, 1e-5, 10, l2_sensitivity=0.0) == 0.0)


class TestGaussianHistogram:
    def test_estimate_shape_and_unbiasedness(self, rng, line_domain_16, dense_database_16):
        mechanism = GaussianHistogram(1.0, 1e-5)
        estimates = np.mean(
            [mechanism.estimate_histogram(dense_database_16, rng) for _ in range(200)], axis=0
        )
        assert estimates.shape == (16,)
        assert np.allclose(estimates, dense_database_16.counts, atol=1.5)

    def test_expected_error_matches_sigma_squared(self):
        mechanism = GaussianHistogram(0.5, 1e-6, l2_sensitivity=1.0)
        assert mechanism.expected_error_per_cell() == pytest.approx(mechanism.sigma**2)

    def test_answers_workload(self, rng, line_domain_16, dense_database_16):
        answers = GaussianHistogram(1.0, 1e-5).answer(
            identity_workload(line_domain_16), dense_database_16, rng
        )
        assert answers.shape == (16,)

    def test_delta_recorded(self):
        assert GaussianHistogram(1.0, 1e-4).delta == 1e-4


class TestEpsilonDeltaBlowfish:
    def test_tree_mechanism_with_gaussian_estimator(self, rng):
        # The (eps, delta, G)-Blowfish construction of Appendix A: run the
        # Gaussian mechanism on the tree-transformed instance.
        domain = Domain((128,))
        policy = line_policy(domain)
        counts = np.zeros(128)
        counts[[10, 64, 100]] = [30.0, 50.0, 20.0]
        database = Database(domain, counts)
        mechanism = TreeTransformMechanism(
            policy,
            epsilon=0.5,
            estimator_factory=gaussian_estimator_factory(delta=1e-5),
            consistency="auto",
        )
        workload = identity_workload(domain)
        answers = mechanism.answer(workload, database, rng)
        assert answers.shape == (128,)
        assert np.all(np.isfinite(answers))

    def test_gaussian_variance_ordering_against_laplace(self, rng):
        # At the same epsilon the classic Gaussian calibration costs more
        # variance than Laplace for strict deltas (2 ln(1.25/delta) > 2) and the
        # gap shrinks monotonically as delta grows — the usual (eps, delta)
        # trade-off users of the Appendix A extension should expect.
        lenient = GaussianHistogram(1.0, 1e-2).expected_error_per_cell()
        strict = GaussianHistogram(1.0, 1e-9).expected_error_per_cell()
        laplace_variance = 2.0
        assert strict > lenient > laplace_variance
