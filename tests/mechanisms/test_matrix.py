"""Tests for :mod:`repro.mechanisms.matrix` (the matrix mechanism, Equation 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.exceptions import MechanismError
from repro.mechanisms import (
    MatrixMechanism,
    haar_strategy,
    hierarchical_strategy,
    identity_strategy,
    laplace_matrix_mechanism,
    total_strategy,
)


@pytest.fixture
def small_instance():
    domain = Domain((8,))
    database = Database(domain, np.array([3.0, 0, 1, 5, 2, 2, 0, 7]))
    return domain, database


class TestMatrixMechanism:
    def test_unbiasedness_at_huge_epsilon(self, small_instance, rng):
        domain, database = small_instance
        mechanism = MatrixMechanism(1e9, haar_strategy(8))
        workload = cumulative_workload(domain)
        answers = mechanism.answer(workload, database, rng)
        assert np.allclose(answers, workload.answer(database), atol=1e-3)

    def test_identity_strategy_equals_laplace_histogram_error(self, small_instance, rng):
        domain, database = small_instance
        workload = identity_workload(domain)
        mechanism = laplace_matrix_mechanism(0.5, 8)
        errors = []
        for _ in range(300):
            noisy = mechanism.answer(workload, database, rng)
            errors.append(np.mean((noisy - database.counts) ** 2))
        assert np.mean(errors) == pytest.approx(2 / 0.25, rel=0.15)

    def test_vector_length_check(self, small_instance):
        domain, database = small_instance
        mechanism = MatrixMechanism(1.0, identity_strategy(4))
        with pytest.raises(MechanismError):
            mechanism.answer(identity_workload(domain), database)

    def test_check_supports_identity(self, small_instance):
        domain, _ = small_instance
        mechanism = MatrixMechanism(1.0, identity_strategy(8))
        assert mechanism.check_supports(identity_workload(domain).matrix)

    def test_check_supports_fails_for_total_strategy(self, small_instance):
        domain, _ = small_instance
        mechanism = MatrixMechanism(1.0, total_strategy(8))
        assert not mechanism.check_supports(identity_workload(domain).matrix)

    def test_expected_error_identity(self, small_instance):
        domain, _ = small_instance
        mechanism = MatrixMechanism(1.0, identity_strategy(8))
        errors = mechanism.expected_error_per_query(identity_workload(domain).matrix)
        assert np.allclose(errors, 2.0)

    def test_expected_error_prefers_haar_for_ranges(self):
        # For the cumulative workload on a large enough domain, the Haar
        # strategy's worst-case per-query error (O(log^3 k)) beats the identity
        # strategy's (Theta(k)).
        domain = Domain((256,))
        workload = cumulative_workload(domain)
        identity_error = MatrixMechanism(1.0, identity_strategy(256)).expected_error_per_query(
            workload.matrix
        )
        haar_error = MatrixMechanism(1.0, haar_strategy(256)).expected_error_per_query(
            workload.matrix
        )
        assert haar_error.max() < identity_error.max()

    def test_hierarchical_strategy_supports_ranges(self):
        domain = Domain((16,))
        mechanism = MatrixMechanism(1.0, hierarchical_strategy(16))
        assert mechanism.check_supports(cumulative_workload(domain).matrix)

    def test_empirical_error_matches_expected(self, rng):
        domain = Domain((16,))
        database = Database(domain, rng.integers(0, 20, 16).astype(float))
        workload = cumulative_workload(domain)
        mechanism = MatrixMechanism(1.0, haar_strategy(16))
        expected = mechanism.expected_error_per_query(workload.matrix)
        observed = np.zeros(workload.num_queries)
        trials = 400
        true_answers = workload.answer(database)
        for _ in range(trials):
            noisy = mechanism.answer(workload, database, rng)
            observed += (noisy - true_answers) ** 2
        observed /= trials
        assert np.mean(observed) == pytest.approx(np.mean(expected), rel=0.15)

    def test_data_independent_flag(self):
        assert MatrixMechanism(1.0, identity_strategy(4)).data_dependent is False
