"""Tests for :mod:`repro.mechanisms.laplace` and the mechanism base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms import LaplaceHistogram, LaplaceMechanism, check_epsilon, laplace_noise


class TestCheckEpsilon:
    def test_accepts_positive(self):
        assert check_epsilon(0.5) == 0.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_invalid(self, value):
        with pytest.raises(PrivacyBudgetError):
            check_epsilon(value)


class TestLaplaceNoise:
    def test_zero_scale_gives_zeros(self):
        assert np.all(laplace_noise(0.0, 10) == 0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            laplace_noise(-1.0, 5)

    def test_deterministic_with_seed(self):
        assert np.allclose(laplace_noise(1.0, 5, 3), laplace_noise(1.0, 5, 3))

    def test_empirical_variance(self, rng):
        samples = laplace_noise(2.0, 100_000, rng)
        assert np.var(samples) == pytest.approx(2 * 4.0, rel=0.05)


class TestLaplaceMechanism:
    def test_noise_magnitude_scales_with_sensitivity(self, line_domain_16, dense_database_16, rng):
        # C_k has sensitivity k; its answers should be far noisier than I_k's.
        identity_error = []
        cumulative_error = []
        for _ in range(20):
            mechanism = LaplaceMechanism(epsilon=1.0)
            identity = identity_workload(line_domain_16)
            cumulative = cumulative_workload(line_domain_16)
            identity_error.append(
                np.mean((mechanism.answer(identity, dense_database_16, rng) - identity.answer(dense_database_16)) ** 2)
            )
            cumulative_error.append(
                np.mean((mechanism.answer(cumulative, dense_database_16, rng) - cumulative.answer(dense_database_16)) ** 2)
            )
        assert np.mean(cumulative_error) > 10 * np.mean(identity_error)

    def test_explicit_sensitivity_override(self, line_domain_16, dense_database_16, rng):
        mechanism = LaplaceMechanism(epsilon=1e9, sensitivity=0.0)
        answers = mechanism.answer(identity_workload(line_domain_16), dense_database_16, rng)
        assert np.allclose(answers, dense_database_16.counts)

    def test_sensitivity_for_bounded(self, line_domain_16):
        mechanism = LaplaceMechanism(epsilon=1.0, bounded=True)
        assert mechanism.sensitivity_for(identity_workload(line_domain_16).matrix) == 2.0

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0, sensitivity=-1.0)

    def test_expected_error_formula(self, line_domain_16):
        mechanism = LaplaceMechanism(epsilon=0.5)
        expected = mechanism.expected_error_per_query(identity_workload(line_domain_16).matrix)
        assert expected == pytest.approx(2 * (1 / 0.5) ** 2)

    def test_domain_mismatch_rejected(self, dense_database_16):
        mechanism = LaplaceMechanism(epsilon=1.0)
        with pytest.raises(ValueError):
            mechanism.answer(identity_workload(Domain((8,))), dense_database_16)

    def test_empirical_error_matches_theorem_2_1(self, rng):
        # Average squared error over many runs ~ 2 Delta^2 / eps^2 per query.
        domain = Domain((32,))
        database = Database(domain, np.arange(32, dtype=float))
        workload = identity_workload(domain)
        epsilon = 0.5
        mechanism = LaplaceMechanism(epsilon=epsilon)
        errors = []
        for _ in range(200):
            noisy = mechanism.answer(workload, database, rng)
            errors.append(np.mean((noisy - database.counts) ** 2))
        assert np.mean(errors) == pytest.approx(2 / epsilon**2, rel=0.15)


class TestLaplaceHistogram:
    def test_estimate_shape(self, dense_database_16, rng):
        mechanism = LaplaceHistogram(epsilon=1.0)
        estimate = mechanism.estimate_histogram(dense_database_16, rng)
        assert estimate.shape == (16,)

    def test_answers_consistent_with_estimate(self, line_domain_16, dense_database_16):
        # Answering through the histogram estimator must equal W @ estimate.
        mechanism = LaplaceHistogram(epsilon=1e9)
        answers = mechanism.answer(cumulative_workload(line_domain_16), dense_database_16, 0)
        assert np.allclose(answers, np.cumsum(dense_database_16.counts), atol=1e-3)

    def test_sensitivity_scales_noise(self, rng):
        domain = Domain((64,))
        database = Database(domain, np.zeros(64))
        base = LaplaceHistogram(epsilon=1.0, sensitivity=1.0)
        doubled = LaplaceHistogram(epsilon=1.0, sensitivity=2.0)
        base_error = np.mean(base.estimate_histogram(database, rng) ** 2)
        doubled_error = np.mean(doubled.estimate_histogram(database, rng) ** 2)
        assert doubled_error > 2 * base_error

    def test_expected_error_per_cell(self):
        assert LaplaceHistogram(1.0, sensitivity=1.0).expected_error_per_cell() == 2.0

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            LaplaceHistogram(epsilon=1.0, sensitivity=-0.5)

    def test_data_independent_flag(self):
        assert LaplaceHistogram(1.0).data_dependent is False
        assert LaplaceMechanism(1.0).data_dependent is False
