"""Tests for :mod:`repro.mechanisms.geometric`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms import GeometricHistogram, geometric_noise


class TestGeometricNoise:
    def test_integrality(self, rng):
        noise = geometric_noise(1.0, 1.0, 1000, rng)
        assert noise.dtype == np.int64

    def test_zero_sensitivity_gives_zeros(self):
        assert np.all(geometric_noise(1.0, 0.0, 10) == 0)

    def test_symmetric_around_zero(self, rng):
        noise = geometric_noise(0.5, 1.0, 100_000, rng)
        assert abs(np.mean(noise)) < 0.1

    def test_variance_matches_formula(self, rng):
        epsilon, sensitivity = 0.5, 1.0
        noise = geometric_noise(epsilon, sensitivity, 200_000, rng)
        alpha = np.exp(-epsilon / sensitivity)
        expected_variance = 2 * alpha / (1 - alpha) ** 2
        assert np.var(noise) == pytest.approx(expected_variance, rel=0.05)

    def test_rejects_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            geometric_noise(0.0, 1.0, 5)

    def test_rejects_negative_sensitivity(self):
        with pytest.raises(ValueError):
            geometric_noise(1.0, -1.0, 5)


class TestGeometricHistogram:
    def test_estimate_preserves_integrality(self, rng):
        domain = Domain((16,))
        database = Database(domain, np.arange(16, dtype=float))
        estimate = GeometricHistogram(1.0).estimate_histogram(database, rng)
        assert np.allclose(estimate, np.round(estimate))

    def test_answers_workload(self, rng, line_domain_16, dense_database_16):
        answers = GeometricHistogram(1.0).answer(
            identity_workload(line_domain_16), dense_database_16, rng
        )
        assert answers.shape == (16,)

    def test_expected_error_formula(self):
        mechanism = GeometricHistogram(1.0, sensitivity=1.0)
        alpha = np.exp(-1.0)
        assert mechanism.expected_error_per_cell() == pytest.approx(
            2 * alpha / (1 - alpha) ** 2
        )

    def test_zero_sensitivity_error(self):
        assert GeometricHistogram(1.0, sensitivity=0.0).expected_error_per_cell() == 0.0

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            GeometricHistogram(1.0, sensitivity=-1.0)
