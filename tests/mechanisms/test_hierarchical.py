"""Tests for :mod:`repro.mechanisms.hierarchical`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.exceptions import MechanismError
from repro.mechanisms import HierarchicalMechanism, build_interval_tree


class TestIntervalTree:
    def test_root_covers_domain(self):
        nodes = build_interval_tree(8)
        assert nodes[0].lower == 0 and nodes[0].upper == 8

    def test_leaf_count(self):
        nodes = build_interval_tree(8)
        leaves = [node for node in nodes if node.width == 1]
        assert len(leaves) == 8

    def test_node_count_binary(self):
        nodes = build_interval_tree(8, branching=2)
        assert len(nodes) == 15  # complete binary tree over 8 leaves

    def test_levels_are_disjoint_and_leaves_cover_domain(self):
        nodes = build_interval_tree(10, branching=2)
        by_level = {}
        for node in nodes:
            by_level.setdefault(node.level, []).append(node)
        # Within each level the intervals are disjoint (each coordinate is
        # counted at most once per level, which is what the sensitivity bound uses).
        for level_nodes in by_level.values():
            covered = []
            for node in level_nodes:
                covered.extend(range(node.lower, node.upper))
            assert len(covered) == len(set(covered))
        # The unit intervals (leaves) cover the whole domain exactly once.
        leaves = sorted(node.lower for node in nodes if node.width == 1)
        assert leaves == list(range(10))

    def test_invalid_arguments(self):
        with pytest.raises(MechanismError):
            build_interval_tree(0)
        with pytest.raises(MechanismError):
            build_interval_tree(8, branching=1)


class TestHierarchicalMechanism:
    def test_sensitivity_is_levels(self):
        mechanism = HierarchicalMechanism(1.0, size=8, branching=2)
        assert mechanism.sensitivity == 4.0

    def test_sensitivity_multiplier(self):
        mechanism = HierarchicalMechanism(1.0, size=8, sensitivity_multiplier=2.0)
        assert mechanism.sensitivity == 8.0

    def test_invalid_multiplier(self):
        with pytest.raises(MechanismError):
            HierarchicalMechanism(1.0, size=8, sensitivity_multiplier=0.0)

    def test_measure_length(self, rng):
        mechanism = HierarchicalMechanism(1.0, size=8)
        counts = mechanism.measure(np.arange(8.0), rng)
        assert counts.shape == (15,)

    def test_measure_wrong_length(self):
        with pytest.raises(MechanismError):
            HierarchicalMechanism(1.0, size=8).measure(np.ones(4))

    def test_decompose_range_covers_exactly(self):
        mechanism = HierarchicalMechanism(1.0, size=16)
        nodes = mechanism.nodes
        for lower, upper in [(0, 16), (3, 11), (5, 6), (0, 1), (15, 16)]:
            pieces = mechanism.decompose_range(lower, upper)
            covered = sorted(
                position
                for index in pieces
                for position in range(nodes[index].lower, nodes[index].upper)
            )
            assert covered == list(range(lower, upper))

    def test_decompose_range_uses_few_nodes(self):
        mechanism = HierarchicalMechanism(1.0, size=256)
        pieces = mechanism.decompose_range(1, 255)
        assert len(pieces) <= 2 * int(np.log2(256)) + 2

    def test_decompose_invalid_range(self):
        with pytest.raises(MechanismError):
            HierarchicalMechanism(1.0, size=8).decompose_range(5, 3)

    def test_range_answers_unbiased_at_huge_epsilon(self, rng):
        domain = Domain((32,))
        database = Database(domain, rng.integers(0, 10, 32).astype(float))
        mechanism = HierarchicalMechanism(1e9, size=32)
        workload = cumulative_workload(domain)
        answers = mechanism.answer(workload, database, rng)
        assert np.allclose(answers, workload.answer(database), atol=1e-3)

    def test_non_range_queries_fall_back_to_leaves(self, rng):
        domain = Domain((16,))
        database = Database(domain, np.arange(16, dtype=float))
        mechanism = HierarchicalMechanism(1e9, size=16)
        workload = identity_workload(domain)
        answers = mechanism.answer(workload, database, rng)
        assert np.allclose(answers, database.counts, atol=1e-3)

    def test_range_error_beats_per_cell_sum_for_long_ranges(self, rng):
        # A long range answered by O(log k) nodes should be much less noisy
        # than summing per-cell Laplace estimates of the same range.
        domain = Domain((256,))
        database = Database(domain, np.zeros(256))
        workload = cumulative_workload(domain).subset([255])
        epsilon = 1.0
        mechanism = HierarchicalMechanism(epsilon, size=256)
        hierarchical_errors = []
        naive_errors = []
        for _ in range(60):
            noisy = mechanism.answer(workload, database, rng)
            hierarchical_errors.append(noisy[0] ** 2)
            naive = np.sum(rng.laplace(0, 1 / epsilon, 256))
            naive_errors.append(naive**2)
        assert np.mean(hierarchical_errors) < np.mean(naive_errors)
