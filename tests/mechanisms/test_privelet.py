"""Tests for :mod:`repro.mechanisms.privelet`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, random_range_queries_workload
from repro.exceptions import MechanismError
from repro.mechanisms import LaplaceHistogram, PriveletMechanism


class TestConstruction:
    def test_integer_shape_becomes_tuple(self):
        assert PriveletMechanism(1.0, 16).shape == (16,)

    def test_sensitivity_1d(self):
        assert PriveletMechanism(1.0, 16).sensitivity == 5.0  # 1 + log2(16)

    def test_sensitivity_2d_is_product(self):
        mechanism = PriveletMechanism(1.0, (16, 16))
        assert mechanism.sensitivity == 25.0

    def test_sensitivity_with_padding(self):
        assert PriveletMechanism(1.0, 100).sensitivity == 8.0  # padded to 128

    def test_sensitivity_multiplier(self):
        assert PriveletMechanism(1.0, 16, sensitivity_multiplier=2.0).sensitivity == 10.0

    def test_rejects_bad_shape(self):
        with pytest.raises(MechanismError):
            PriveletMechanism(1.0, (0, 4))

    def test_rejects_bad_multiplier(self):
        with pytest.raises(MechanismError):
            PriveletMechanism(1.0, 16, sensitivity_multiplier=0.0)


class TestEstimation:
    def test_exact_reconstruction_at_huge_epsilon_1d(self, rng):
        data = rng.integers(0, 50, 32).astype(float)
        mechanism = PriveletMechanism(1e9, 32)
        assert np.allclose(mechanism.estimate_vector(data, rng), data, atol=1e-3)

    def test_exact_reconstruction_with_padding(self, rng):
        data = rng.integers(0, 50, 20).astype(float)
        mechanism = PriveletMechanism(1e9, 20)
        assert np.allclose(mechanism.estimate_vector(data, rng), data, atol=1e-3)

    def test_exact_reconstruction_2d(self, rng):
        data = rng.integers(0, 20, 36).astype(float)
        mechanism = PriveletMechanism(1e9, (6, 6))
        assert np.allclose(mechanism.estimate_vector(data, rng), data, atol=1e-3)

    def test_wrong_length_rejected(self):
        with pytest.raises(MechanismError):
            PriveletMechanism(1.0, 16).estimate_vector(np.ones(8))

    def test_estimate_is_noisy(self, rng):
        data = np.zeros(64)
        estimate = PriveletMechanism(0.5, 64).estimate_vector(data, rng)
        assert not np.allclose(estimate, 0.0)


class TestRangeQueryError:
    def test_beats_laplace_on_long_ranges_large_domain(self, rng):
        # The whole point of Privelet: on large domains the per-range error is
        # polylogarithmic while per-cell Laplace noise accumulates linearly.
        k = 1024
        domain = Domain((k,))
        database = Database(domain, np.zeros(k))
        workload = random_range_queries_workload(domain, 150, random_state=0)
        epsilon = 1.0
        privelet = PriveletMechanism(epsilon, k)
        laplace = LaplaceHistogram(epsilon)
        true_answers = workload.answer(database)

        def mean_error(mechanism):
            errors = []
            for _ in range(5):
                noisy = mechanism.answer(workload, database, rng)
                errors.append(np.mean((noisy - true_answers) ** 2))
            return np.mean(errors)

        assert mean_error(privelet) < mean_error(laplace)

    def test_error_bound_helper_monotone_in_domain(self):
        small = PriveletMechanism(1.0, 64).expected_error_per_range_query_bound()
        large = PriveletMechanism(1.0, 4096).expected_error_per_range_query_bound()
        assert large > small

    def test_error_grows_with_dimension(self):
        one_d = PriveletMechanism(1.0, 64).expected_error_per_range_query_bound()
        two_d = PriveletMechanism(1.0, (64, 64)).expected_error_per_range_query_bound()
        assert two_d > one_d

    def test_data_independent_flag(self):
        assert PriveletMechanism(1.0, 8).data_dependent is False
