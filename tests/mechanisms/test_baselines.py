"""Tests for :mod:`repro.mechanisms.baselines`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload, total_workload
from repro.mechanisms import UniformMechanism, ZeroMechanism


class TestUniformMechanism:
    def test_estimate_is_constant(self, rng):
        estimate = UniformMechanism(1.0).estimate_vector(np.arange(8.0), rng)
        assert np.allclose(estimate, estimate[0])

    def test_total_is_preserved_approximately(self, rng, line_domain_16, dense_database_16):
        mechanism = UniformMechanism(1e9)
        answers = mechanism.answer(total_workload(line_domain_16), dense_database_16, rng)
        assert answers[0] == pytest.approx(dense_database_16.scale, abs=1e-3)

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            UniformMechanism(1.0, sensitivity=-1.0)

    def test_empty_vector(self, rng):
        assert UniformMechanism(1.0).estimate_vector(np.array([]), rng).shape == (0,)


class TestZeroMechanism:
    def test_always_zero(self, rng, line_domain_16, dense_database_16):
        answers = ZeroMechanism(1.0).answer(
            identity_workload(line_domain_16), dense_database_16, rng
        )
        assert np.all(answers == 0.0)

    def test_error_equals_data_energy(self, line_domain_16, dense_database_16):
        answers = ZeroMechanism(1.0).answer(
            identity_workload(line_domain_16), dense_database_16, None
        )
        error = np.mean((answers - dense_database_16.counts) ** 2)
        assert error == pytest.approx(np.mean(dense_database_16.counts**2))
