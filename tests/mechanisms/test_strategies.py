"""Tests for :mod:`repro.mechanisms.strategies`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MechanismError
from repro.mechanisms import (
    Strategy,
    block_diagonal_strategy,
    haar_strategy,
    hierarchical_strategy,
    identity_strategy,
    kron_strategy,
    total_strategy,
)


class TestIdentityAndTotal:
    def test_identity_shape_and_sensitivity(self):
        strategy = identity_strategy(8)
        assert strategy.matrix.shape == (8, 8)
        assert strategy.sensitivity == 1.0

    def test_identity_pseudo_inverse(self):
        strategy = identity_strategy(5)
        values = np.arange(5.0)
        assert np.allclose(strategy.apply_pseudo_inverse(values), values)

    def test_total_reconstruction_spreads_uniformly(self):
        strategy = total_strategy(4)
        assert np.allclose(strategy.apply_pseudo_inverse(np.array([8.0])), 2.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(MechanismError):
            identity_strategy(0)
        with pytest.raises(MechanismError):
            total_strategy(-1)

    def test_apply_pseudo_inverse_length_check(self):
        with pytest.raises(MechanismError):
            identity_strategy(4).apply_pseudo_inverse(np.ones(5))


class TestHierarchicalStrategy:
    def test_sensitivity_is_number_of_levels(self):
        strategy = hierarchical_strategy(8, branching=2)
        assert strategy.sensitivity == 4.0  # levels: 8, 4, 2, 1

    def test_rows_include_total_and_leaves(self):
        strategy = hierarchical_strategy(8)
        dense = strategy.matrix.toarray()
        assert np.allclose(dense[0], 1.0)  # root row counts everything
        # The unit rows (leaves) appear exactly once per coordinate.
        unit_rows = [row for row in dense if row.sum() == 1.0 and np.all((row == 0) | (row == 1))]
        assert len(unit_rows) == 8

    def test_branching_controls_levels(self):
        binary = hierarchical_strategy(16, branching=2)
        quaternary = hierarchical_strategy(16, branching=4)
        assert quaternary.sensitivity < binary.sensitivity

    def test_non_power_of_two(self):
        strategy = hierarchical_strategy(10, branching=2)
        # Full row space: least-squares reconstruction is exact.
        values = strategy.matrix @ np.arange(10.0)
        assert np.allclose(strategy.apply_pseudo_inverse(values), np.arange(10.0))

    def test_invalid_branching(self):
        with pytest.raises(MechanismError):
            hierarchical_strategy(8, branching=1)


class TestHaarStrategy:
    def test_sensitivity_power_of_two(self):
        assert haar_strategy(16).sensitivity == 1.0 + 4.0

    def test_sensitivity_padded(self):
        assert haar_strategy(10).sensitivity == 1.0 + 4.0  # padded to 16

    def test_power_of_two_has_explicit_pinv(self):
        assert haar_strategy(16).pseudo_inverse is not None

    def test_non_power_of_two_falls_back_to_lsqr(self):
        strategy = haar_strategy(12)
        assert strategy.pseudo_inverse is None
        values = strategy.matrix @ np.arange(12.0)
        assert np.allclose(strategy.apply_pseudo_inverse(values), np.arange(12.0), atol=1e-6)

    def test_rows_are_orthogonal_for_power_of_two(self):
        dense = haar_strategy(8).matrix.toarray()
        gram = dense @ dense.T
        off_diagonal = gram - np.diag(np.diag(gram))
        assert np.allclose(off_diagonal, 0.0)

    def test_reconstruction_is_exact(self):
        strategy = haar_strategy(16)
        data = np.random.default_rng(0).normal(size=16)
        measurements = strategy.matrix @ data
        assert np.allclose(strategy.apply_pseudo_inverse(measurements), data)

    def test_column_l1_norm_equals_sensitivity(self):
        dense = np.abs(haar_strategy(32).matrix.toarray())
        assert dense.sum(axis=0).max() == pytest.approx(haar_strategy(32).sensitivity)


class TestKronStrategy:
    def test_shapes_multiply(self):
        first, second = haar_strategy(4), haar_strategy(8)
        product = kron_strategy(first, second)
        assert product.matrix.shape == (
            first.num_measurements * second.num_measurements,
            first.num_columns * second.num_columns,
        )

    def test_sensitivity_multiplies(self):
        product = kron_strategy(haar_strategy(4), haar_strategy(8))
        assert product.sensitivity == haar_strategy(4).sensitivity * haar_strategy(8).sensitivity

    def test_pinv_propagates(self):
        product = kron_strategy(haar_strategy(4), haar_strategy(4))
        assert product.pseudo_inverse is not None
        data = np.random.default_rng(1).normal(size=16)
        measurements = product.matrix @ data
        assert np.allclose(product.apply_pseudo_inverse(measurements), data)

    def test_pinv_not_propagated_when_missing(self):
        product = kron_strategy(haar_strategy(4), haar_strategy(12))
        assert product.pseudo_inverse is None


class TestBlockDiagonalStrategy:
    def test_partitioned_identity(self):
        strategy = block_diagonal_strategy(
            [([0, 1], identity_strategy(2)), ([2, 3], identity_strategy(2))],
            num_columns=4,
        )
        assert strategy.matrix.shape == (4, 4)
        assert strategy.sensitivity == 1.0

    def test_sensitivity_is_max_over_groups(self):
        strategy = block_diagonal_strategy(
            [([0, 1, 2, 3], haar_strategy(4)), ([4, 5], identity_strategy(2))],
            num_columns=6,
        )
        assert strategy.sensitivity == haar_strategy(4).sensitivity

    def test_reconstruction_per_group(self):
        strategy = block_diagonal_strategy(
            [([0, 1, 2, 3], haar_strategy(4)), ([4, 5, 6, 7], haar_strategy(4))],
            num_columns=8,
        )
        data = np.arange(8.0)
        measurements = strategy.matrix @ data
        assert np.allclose(strategy.apply_pseudo_inverse(measurements), data)

    def test_uncovered_coordinates_reconstruct_to_zero(self):
        strategy = block_diagonal_strategy(
            [([0, 1], identity_strategy(2))], num_columns=4
        )
        measurements = np.array([5.0, 6.0])
        reconstruction = strategy.apply_pseudo_inverse(measurements)
        assert np.allclose(reconstruction, [5.0, 6.0, 0.0, 0.0])

    def test_overlapping_groups_rejected(self):
        with pytest.raises(MechanismError):
            block_diagonal_strategy(
                [([0, 1], identity_strategy(2)), ([1, 2], identity_strategy(2))],
                num_columns=3,
            )

    def test_size_mismatch_rejected(self):
        with pytest.raises(MechanismError):
            block_diagonal_strategy([([0, 1, 2], identity_strategy(2))], num_columns=3)

    def test_permuted_coordinates(self):
        strategy = block_diagonal_strategy(
            [([3, 1], identity_strategy(2)), ([0, 2], identity_strategy(2))],
            num_columns=4,
        )
        data = np.array([10.0, 20.0, 30.0, 40.0])
        measurements = strategy.matrix @ data
        assert np.allclose(strategy.apply_pseudo_inverse(measurements), data)
