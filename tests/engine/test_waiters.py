"""Ticket waiters: lifecycle latch, trigger policy, timeout semantics."""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload
from repro.core.workload import Workload
from repro.engine import (
    BatchingExecutor,
    BatchTriggers,
    PrivateQueryEngine,
    ThreadTicketWaiter,
    TicketLifecycle,
)
from repro.exceptions import AskTimeoutError, PrivacyBudgetError
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[3, 7, 11]] = [5.0, 2.0, 9.0]
    return Database(domain, counts, name="waiters16")


@pytest.fixture
def engine(database: Database, domain: Domain) -> PrivateQueryEngine:
    return PrivateQueryEngine(
        database,
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        random_state=23,
    )


def row_workload(domain: Domain, index: int) -> Workload:
    matrix = np.zeros((1, domain.size))
    matrix[0, index] = 1.0
    return Workload(domain, matrix, name=f"row{index}")


class RecordingWaiter:
    """Counts its notifications (the protocol is just ``notify()``)."""

    def __init__(self) -> None:
        self.notifications = 0

    def notify(self) -> None:
        self.notifications += 1


class TestTicketLifecycle:
    def test_starts_unresolved_and_resolve_is_idempotent(self):
        lifecycle = TicketLifecycle()
        assert not lifecycle.resolved
        lifecycle.resolve()
        assert lifecycle.resolved
        lifecycle.resolve()
        assert lifecycle.resolved

    def test_registered_waiter_notified_exactly_once(self):
        lifecycle = TicketLifecycle()
        waiter = RecordingWaiter()
        assert lifecycle.add_waiter(waiter) is False
        lifecycle.resolve()
        lifecycle.resolve()
        assert waiter.notifications == 1

    def test_waiter_added_after_resolution_notified_inline(self):
        lifecycle = TicketLifecycle()
        lifecycle.resolve()
        waiter = RecordingWaiter()
        assert lifecycle.add_waiter(waiter) is True
        assert waiter.notifications == 1

    def test_many_waiters_all_wake_exactly_once(self):
        lifecycle = TicketLifecycle()
        waiters = [RecordingWaiter() for _ in range(32)]
        for waiter in waiters:
            lifecycle.add_waiter(waiter)
        lifecycle.resolve()
        assert [w.notifications for w in waiters] == [1] * 32

    def test_concurrent_thread_waiters_wake_exactly_once(self):
        """N threads park on one lifecycle; one resolve wakes every one."""
        lifecycle = TicketLifecycle()
        wakes = []
        wake_lock = threading.Lock()
        started = threading.Barrier(9)

        def park() -> None:
            waiter = ThreadTicketWaiter()
            lifecycle.add_waiter(waiter)
            started.wait()
            assert waiter.wait(5.0)
            with wake_lock:
                wakes.append(waiter.notified)

        threads = [threading.Thread(target=park) for _ in range(8)]
        for thread in threads:
            thread.start()
        started.wait()
        lifecycle.resolve()
        for thread in threads:
            thread.join(timeout=5.0)
        assert wakes == [True] * 8

    def test_shared_thread_waiter_is_reused(self):
        lifecycle = TicketLifecycle()
        assert lifecycle.thread_waiter() is lifecycle.thread_waiter()

    def test_resolve_races_add_waiter(self):
        """A waiter added around resolution is notified exactly once, never
        zero times — the latch's whole point."""
        for _ in range(200):
            lifecycle = TicketLifecycle()
            waiter = RecordingWaiter()
            resolver = threading.Thread(target=lifecycle.resolve)
            resolver.start()
            lifecycle.add_waiter(waiter)
            resolver.join()
            assert waiter.notifications == 1

    def test_claim_is_exclusive_and_loses_after_resolve(self):
        lifecycle = TicketLifecycle()
        assert lifecycle.claim() is True
        assert lifecycle.claim() is False  # first caller owns it
        resolved = TicketLifecycle()
        resolved.resolve()
        assert resolved.claim() is False  # terminal state never re-claims

    def test_concurrent_claimers_exactly_one_wins(self):
        """The cancel-vs-pipeline arbitration: N racers, exactly one claim."""
        for _ in range(100):
            lifecycle = TicketLifecycle()
            wins = []
            wins_lock = threading.Lock()
            started = threading.Barrier(8)

            def race() -> None:
                started.wait()
                if lifecycle.claim():
                    with wins_lock:
                        wins.append(threading.get_ident())

            threads = [threading.Thread(target=race) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=5.0)
            assert len(wins) == 1


class TestLifecycleChurn:
    """Satellite stress: waiters churning against a resolver and a canceller.

    The serving tier hangs three things off one lifecycle at once — client
    waiters (HTTP polls, asks), the admission controller's release waiter,
    and a claim race between the flush pipeline and ``cancel()``.  This
    class drives all of them concurrently and asserts the latch's
    contract: every waiter ever added is woken **exactly once**, and
    exactly one claimer wins.
    """

    def test_waiter_churn_against_resolver_and_canceller(self):
        for _ in range(30):
            lifecycle = TicketLifecycle()
            recorded = []
            recorded_lock = threading.Lock()
            claims = []
            claims_lock = threading.Lock()
            start = threading.Barrier(8)

            def add_waiters() -> None:
                start.wait()
                for _ in range(25):
                    waiter = RecordingWaiter()
                    lifecycle.add_waiter(waiter)
                    with recorded_lock:
                        recorded.append(waiter)

            def park_and_wait() -> None:
                start.wait()
                waiter = ThreadTicketWaiter()
                lifecycle.add_waiter(waiter)
                assert waiter.wait(5.0)
                with recorded_lock:
                    recorded.append(waiter)

            def resolver() -> None:
                start.wait()
                # The pipeline path: claim, then resolve.
                if lifecycle.claim():
                    with claims_lock:
                        claims.append("pipeline")
                lifecycle.resolve()

            def canceller() -> None:
                start.wait()
                # The client path: only resolve if the claim was won.
                if lifecycle.claim():
                    with claims_lock:
                        claims.append("cancel")
                    lifecycle.resolve()

            threads = (
                [threading.Thread(target=add_waiters) for _ in range(4)]
                + [threading.Thread(target=park_and_wait) for _ in range(2)]
                + [threading.Thread(target=resolver)]
                + [threading.Thread(target=canceller)]
            )
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive()
            # Exactly one claimer won the ticket.
            assert len(claims) == 1
            # Every waiter — added before, during, or after resolution —
            # woke exactly once.
            assert len(recorded) == 4 * 25 + 2
            for waiter in recorded:
                if isinstance(waiter, RecordingWaiter):
                    assert waiter.notifications == 1
                else:
                    assert waiter.notified

    def test_churn_with_late_resolve_still_wakes_every_waiter(self):
        """Waiters pile up first; resolution lands mid-churn."""
        lifecycle = TicketLifecycle()
        waiters = []
        waiters_lock = threading.Lock()
        stop_adding = threading.Event()

        def churn() -> None:
            while not stop_adding.is_set():
                waiter = RecordingWaiter()
                lifecycle.add_waiter(waiter)
                with waiters_lock:
                    waiters.append(waiter)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.02)
        lifecycle.resolve()
        time.sleep(0.02)
        stop_adding.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert waiters  # the churn actually ran
        for waiter in waiters:
            assert waiter.notifications == 1


class TestThreadLoopWaiterParity:
    """Both waiter kinds observe one ticket resolution identically."""

    def test_thread_and_loop_waiter_wake_on_one_resolution(self, engine, domain):
        from repro.engine.serving import LoopTicketWaiter

        engine.open_session("alice", 5.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)

        async def watch() -> bool:
            loop_waiter = LoopTicketWaiter()
            ticket.add_waiter(loop_waiter)
            flusher = threading.Thread(target=engine.flush)
            flusher.start()
            # The thread waiter wakes on the flusher thread's resolution...
            assert ticket.wait(5.0)
            # ...and the loop waiter's future completes via the loop.
            await asyncio.wait_for(loop_waiter.future, timeout=5.0)
            flusher.join()
            return True

        assert asyncio.run(watch())
        assert ticket.status == "answered"

    def test_loop_waiter_on_already_resolved_ticket(self, engine, domain):
        from repro.engine.serving import LoopTicketWaiter

        engine.open_session("alice", 5.0)
        answers = engine.ask("alice", identity_workload(domain), epsilon=0.5)

        async def attach_late() -> None:
            ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.flush()
            waiter = LoopTicketWaiter()
            ticket.add_waiter(waiter)
            await asyncio.wait_for(waiter.future, timeout=5.0)

        asyncio.run(attach_late())
        assert answers.shape == (domain.size,)


class TestBatchTriggers:
    def test_shared_policy_semantics(self):
        triggers = BatchTriggers(max_batch_size=4, max_delay=0.5)
        assert not triggers.size_reached(3)
        assert triggers.size_reached(4)
        assert triggers.size_reached(9)
        assert triggers.deadline_from(10.0) == pytest.approx(10.5)

    @pytest.mark.parametrize("size,delay", [(0, 0.1), (-1, 0.1), (4, 0.0), (4, -2.0)])
    def test_rejects_non_positive_configuration(self, size, delay):
        with pytest.raises(ValueError):
            BatchTriggers(max_batch_size=size, max_delay=delay)


class TestRefusalDiagnostics:
    def test_refused_result_names_ticket_and_client(self, engine, domain):
        engine.open_session("poor", 0.1)
        ticket = engine.submit("poor", identity_workload(domain), epsilon=5.0)
        engine.flush()
        assert ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError) as excinfo:
            ticket.result()
        message = str(excinfo.value)
        # Whatever the refusal text, the handle's identity must be in it so
        # an operator can chase the ticket through logs and audit streams.
        assert "poor" in message

    def test_refused_without_error_text_still_identifies_the_ticket(
        self, engine, domain
    ):
        engine.open_session("alice", 5.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        # Force the degenerate path: refused status with no recorded reason.
        ticket.status = "refused"
        ticket.error = None
        ticket._notify_resolved()
        with pytest.raises(PrivacyBudgetError) as excinfo:
            ticket.result()
        message = str(excinfo.value)
        assert str(ticket.ticket_id) in message
        assert "alice" in message


class TestAskTimeout:
    def test_engine_ask_timeout_leaves_ticket_resolvable(self, engine, domain):
        """A timed-out ask is a *wait* failure, not a query failure: the
        ticket stays pending and a later flush resolves it normally."""
        engine.open_session("alice", 5.0)
        real_flush = engine.flush
        stolen = []

        def racing_flush(random_state=None):
            # Simulate a concurrent flush winning the queue race: it drains
            # the pending queue but has not resolved the tickets yet.
            with engine._queue_lock:
                stolen.extend(engine._pending)
                engine._pending = []
            return []

        engine.flush = racing_flush
        try:
            with pytest.raises(AskTimeoutError) as excinfo:
                engine.ask(
                    "alice", identity_workload(domain), epsilon=0.5, timeout=0.05
                )
        finally:
            engine.flush = real_flush
        ticket = excinfo.value.ticket
        assert excinfo.value.timeout == pytest.approx(0.05)
        assert ticket.status == "pending"
        assert str(ticket.ticket_id) in str(excinfo.value)

        # The "racing" flush now completes its pipeline run: the abandoned
        # ask's ticket resolves and stays fully consumable.
        with engine._queue_lock:
            engine._pending = stolen + engine._pending
        engine.flush()
        assert ticket.status == "answered"
        assert ticket.result().shape == (domain.size,)

    def test_executor_ask_timeout_then_later_flush_resolves(self, engine, domain):
        engine.open_session("alice", 5.0)
        executor = BatchingExecutor(engine, max_batch_size=64, max_delay=30.0)
        try:
            with pytest.raises(AskTimeoutError) as excinfo:
                # Deadline is 30 s away and the batch is nowhere near full:
                # the 50 ms wait must expire first.
                executor.ask(
                    "alice", identity_workload(domain), epsilon=0.5, timeout=0.05
                )
            ticket = excinfo.value.ticket
            assert ticket.status == "pending"
        finally:
            executor.close()
        # close() drains: the abandoned ask's ticket was still resolved.
        assert ticket.status == "answered"
        assert ticket.result().shape == (domain.size,)

    def test_ask_without_timeout_blocks_until_resolution(self, engine, domain):
        engine.open_session("alice", 5.0)
        results = {}

        def asker() -> None:
            results["answers"] = engine.ask(
                "alice", identity_workload(domain), epsilon=0.5
            )

        thread = threading.Thread(target=asker)
        thread.start()
        deadline = time.monotonic() + 5.0
        while engine.pending_count == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        engine.flush()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results["answers"].shape == (domain.size,)
