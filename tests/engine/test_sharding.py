"""Domain sharding: component shards, scatter/gather, exact ε accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload, total_workload
from repro.core.workload import Workload
from repro.engine import PrivateQueryEngine, ShardSet
from repro.exceptions import PrivacyBudgetError
from repro.policy import PolicyGraph, line_policy
from repro.policy.builders import sensitive_attribute_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.arange(16, dtype=float)
    return Database(domain, counts, name="ramp16")


@pytest.fixture
def split_policy(domain: Domain) -> PolicyGraph:
    """Two disconnected line segments: cells 0–7 and 8–15."""
    return PolicyGraph(
        domain,
        edges=[(i, i + 1) for i in range(7)] + [(i, i + 1) for i in range(8, 15)],
        name="two-segments",
    )


def left_workload(domain: Domain) -> Workload:
    return Workload(domain, np.hstack([np.eye(8), np.zeros((8, 8))]), name="left")


def right_workload(domain: Domain) -> Workload:
    return Workload(domain, np.hstack([np.zeros((8, 8)), np.eye(8)]), name="right")


class TestShardSetConstruction:
    def test_two_component_policy_builds_two_shards(
        self, split_policy, database, domain
    ):
        shard_set = ShardSet.build(split_policy, database)
        assert shard_set is not None and len(shard_set) == 2
        left, right = shard_set.shards
        np.testing.assert_array_equal(left.cells, np.arange(8))
        np.testing.assert_array_equal(right.cells, np.arange(8, 16))
        assert left.domain.size == right.domain.size == 8
        # Induced sub-policies are shard-local line graphs.
        assert left.policy.num_edges == right.policy.num_edges == 7
        assert left.policy.has_edge(0, 1) and right.policy.has_edge(0, 1)
        # Projected sub-histograms carry the shard's counts.
        np.testing.assert_array_equal(left.database.counts, np.arange(8, dtype=float))
        np.testing.assert_array_equal(
            right.database.counts, np.arange(8, 16, dtype=float)
        )

    def test_connected_policy_is_not_sharded(self, database, domain):
        assert ShardSet.build(line_policy(domain), database) is None

    def test_edgeless_component_disables_sharding(self, database, domain):
        # Cells 0–14 form one component; cell 15 is isolated (no edges), so
        # it has no transformed coordinates and sharding falls back.
        policy = PolicyGraph(domain, edges=[(i, i + 1) for i in range(14)])
        assert ShardSet.build(policy, database) is None

    def test_sensitive_attribute_policy_shards_per_disclosed_value(self, domain):
        grid = Domain((4, 4))
        counts = np.ones(grid.size)
        db = Database(grid, counts, name="grid")
        policy = sensitive_attribute_policy(grid, sensitive_axes=[1])
        shard_set = ShardSet.build(policy, db)
        # Axis 0 is disclosed exactly: one component per first coordinate.
        assert shard_set is not None and len(shard_set) == 4
        for shard in shard_set.shards:
            assert shard.num_cells == 4

    def test_scatter_splits_component_confined_rows(
        self, split_policy, database, domain
    ):
        shard_set = ShardSet.build(split_policy, database)
        scatter = shard_set.scatter(identity_workload(domain))
        assert scatter is not None and len(scatter.pieces) == 2
        piece_left, piece_right = scatter.pieces
        np.testing.assert_array_equal(piece_left.rows, np.arange(8))
        np.testing.assert_array_equal(piece_right.rows, np.arange(8, 16))
        assert piece_left.workload.shape == (8, 8)

    def test_component_spanning_row_prevents_scatter(
        self, split_policy, database, domain
    ):
        shard_set = ShardSet.build(split_policy, database)
        assert shard_set.scatter(total_workload(domain)) is None

    def test_gather_reassembles_rows_in_submission_order(
        self, split_policy, database, domain
    ):
        shard_set = ShardSet.build(split_policy, database)
        # Interleaved rows: left, right, left, right.
        matrix = np.zeros((4, 16))
        matrix[0, 2] = matrix[2, 5] = 1.0
        matrix[1, 10] = matrix[3, 13] = 1.0
        scatter = shard_set.scatter(Workload(domain, matrix))
        exact = [
            piece.workload.answer(piece.shard.database) for piece in scatter.pieces
        ]
        gathered = scatter.gather(exact)
        np.testing.assert_allclose(gathered, [2.0, 10.0, 5.0, 13.0])


class TestShardedEngineExecution:
    def make_engine(self, database, split_policy, **overrides) -> PrivateQueryEngine:
        options = dict(
            total_epsilon=50.0,
            default_policy=split_policy,
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=3,
        )
        options.update(overrides)
        return PrivateQueryEngine(database, **options)

    def test_scatter_gather_answers_are_near_exact_at_huge_epsilon(
        self, database, split_policy, domain
    ):
        engine = self.make_engine(database, split_policy)
        engine.open_session("alice", 30.0)
        answers = engine.ask("alice", identity_workload(domain), epsilon=20.0)
        np.testing.assert_allclose(answers, np.arange(16, dtype=float), atol=2.0)
        stats = engine.stats
        assert stats.sharded_batches == 1
        assert stats.mechanism_invocations == 2  # one per touched shard
        assert engine.shard_count() == 2

    def test_epsilon_accounting_is_byte_identical_to_unsharded(
        self, database, split_policy, domain
    ):
        """The acceptance bar: scatter/gather must not change the ledger."""

        def serve(enable_sharding: bool):
            engine = self.make_engine(
                database, split_policy, enable_sharding=enable_sharding
            )
            session = engine.open_session("alice", 10.0)
            engine.ask("alice", identity_workload(domain), epsilon=0.75)
            engine.ask("alice", left_workload(domain), epsilon=0.5)
            engine.ask("alice", right_workload(domain), epsilon=0.25)
            return engine, session

        sharded_engine, sharded_session = serve(True)
        plain_engine, plain_session = serve(False)
        assert sharded_engine.stats.sharded_batches >= 1
        assert plain_engine.stats.sharded_batches == 0
        # Identical spend at every level of the accounting hierarchy.
        assert sharded_session.spent() == plain_session.spent()
        assert sharded_engine.accountant.spent() == plain_engine.accountant.spent()
        # And identical ledgers, operation by operation.
        sharded_ops = sharded_session.accountant.operations
        plain_ops = plain_session.accountant.operations
        assert [(op.epsilon, op.partition) for op in sharded_ops] == [
            (op.epsilon, op.partition) for op in plain_ops
        ]

    def test_sharded_and_unsharded_paths_coexist_in_one_flush(
        self, database, split_policy, domain
    ):
        engine = self.make_engine(database, split_policy)
        engine.open_session("alice", 10.0)
        splittable = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        # The grand total spans both components → unsharded fallback.
        spanning = engine.submit("alice", total_workload(domain), epsilon=0.25)
        engine.flush()
        assert splittable.status == spanning.status == "answered"
        stats = engine.stats
        assert stats.batches_executed == 2
        assert stats.sharded_batches == 1

    def test_per_shard_plan_caches_are_used(self, database, split_policy, domain):
        engine = self.make_engine(database, split_policy)
        engine.open_session("alice", 10.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        engine.ask("alice", left_workload(domain), epsilon=0.5)
        # The sharded path planned in the per-shard caches, not the main one.
        assert engine.plan_cache.stats.misses == 0
        shard_set = engine._shard_set_for(split_policy)
        for shard in shard_set.shards:
            assert len(shard.plan_cache) == 1
            assert shard.plan_cache.stats.hits >= 1

    def test_sharding_can_be_disabled(self, database, split_policy, domain):
        engine = self.make_engine(database, split_policy, enable_sharding=False)
        engine.open_session("alice", 10.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        assert engine.stats.sharded_batches == 0
        assert engine.shard_count() == 0

    def test_sharded_answer_cache_replay_still_free(
        self, database, split_policy, domain
    ):
        engine = self.make_engine(
            database, split_policy, enable_answer_cache=True
        )
        session = engine.open_session("alice", 10.0)
        first = engine.ask("alice", left_workload(domain), epsilon=0.5)
        spent = session.spent()
        replay = engine.ask("alice", left_workload(domain), epsilon=0.5)
        np.testing.assert_array_equal(first, replay)
        assert session.spent() == pytest.approx(spent)

    def test_sharded_data_dependent_plans_are_allowed(
        self, database, split_policy, domain
    ):
        """Each shard mechanism reads one component only, so DAWA is fine."""
        engine = self.make_engine(
            database,
            split_policy,
            prefer_data_dependent=True,
            consistency=True,
        )
        engine.open_session("alice", 10.0)
        answers = engine.ask("alice", identity_workload(domain), epsilon=5.0)
        assert answers.shape == (16,)
        assert engine.stats.sharded_batches == 1


class TestPerShardDrawIds:
    def make_engine(self, database, split_policy, **overrides) -> PrivateQueryEngine:
        options = dict(
            total_epsilon=50.0,
            default_policy=split_policy,
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=3,
        )
        options.update(overrides)
        return PrivateQueryEngine(database, **options)

    def test_each_shard_invocation_gets_its_own_draw_id(
        self, database, split_policy, domain
    ):
        engine = self.make_engine(database, split_policy)
        engine.open_session("alice", 10.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        # The identity workload touches both shards: two invocations, two
        # distinct draw ids, and no single batch-level id (the gathered
        # vector mixes two draws).
        assert ticket.draw_id is None
        assert ticket.shard_draw_ids is not None
        assert set(ticket.shard_draw_ids) == {0, 1}
        assert len(set(ticket.shard_draw_ids.values())) == 2

    def test_single_shard_ticket_carries_that_shards_id(
        self, database, split_policy, domain
    ):
        engine = self.make_engine(database, split_policy)
        engine.open_session("alice", 10.0)
        ticket = engine.submit("alice", left_workload(domain), epsilon=0.5)
        engine.flush()
        assert ticket.shard_draw_ids is not None
        assert set(ticket.shard_draw_ids) == {0}
        assert ticket.draw_id == ticket.shard_draw_ids[0]

    def test_batch_mates_share_per_shard_ids(self, database, split_policy, domain):
        engine = self.make_engine(database, split_policy)
        engine.open_session("alice", 10.0)
        narrow = engine.submit("alice", left_workload(domain), epsilon=0.5)
        wide = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        # Same batch, same shard-0 invocation: its draw id is shared, and
        # the wide ticket additionally records shard 1's independent draw.
        assert narrow.shard_draw_ids[0] == wide.shard_draw_ids[0]
        assert wide.shard_draw_ids[1] != wide.shard_draw_ids[0]

    def test_unsharded_tickets_keep_plain_draw_ids(self, database, domain):
        engine = self.make_engine(database, line_policy(domain))
        engine.open_session("alice", 10.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        assert ticket.draw_id is not None
        assert ticket.shard_draw_ids is None

    def test_replays_carry_the_shard_draw_mapping(
        self, database, split_policy, domain
    ):
        engine = self.make_engine(
            database, split_policy, enable_answer_cache=True
        )
        engine.open_session("alice", 10.0)
        paid = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        replay = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        assert replay.from_cache
        assert replay.shard_draw_ids == paid.shard_draw_ids

    def test_entries_by_draw_groups_on_shared_shard_invocations(
        self, database, split_policy, domain
    ):
        engine = self.make_engine(
            database, split_policy, enable_answer_cache=True
        )
        engine.open_session("alice", 10.0)
        narrow = engine.submit("alice", left_workload(domain), epsilon=0.5)
        wide = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        grouped = engine.answer_cache.entries_by_draw(split_policy)
        shared = grouped[narrow.shard_draw_ids[0]]
        assert len(shared) == 2  # both answers mix shard 0's draw
        alone = grouped[wide.shard_draw_ids[1]]
        assert len(alone) == 1


class TestBottomLinkedPartitionSoundness:
    """Cells related only through ⊥ share a shard but can be split by a
    partition that passes the submit-time edge-closure check (it skips ⊥
    edges).  A data-dependent shard invocation reads the *whole* shard, so
    granting the parallel-composition discount to a sub-shard partition
    would undercount the privacy loss."""

    @pytest.fixture
    def bottom_policy(self):
        from repro.policy import BOTTOM

        domain = Domain((4,))
        return domain, PolicyGraph(
            domain,
            edges=[(0, BOTTOM), (1, BOTTOM), (2, 3)],
            name="bottom-linked",
        )

    def make_engine(self, bottom_policy):
        domain, policy = bottom_policy
        database = Database(domain, np.array([3.0, 5.0, 2.0, 7.0]))
        engine = PrivateQueryEngine(
            database,
            total_epsilon=20.0,
            default_policy=policy,
            prefer_data_dependent=True,  # per-shard plans are data dependent
            random_state=0,
        )
        assert engine.shard_count() == 2  # {0,1,⊥} and {2,3}
        return domain, engine

    def row(self, domain, index):
        matrix = np.zeros((1, domain.size))
        matrix[0, index] = 1.0
        return Workload(domain, matrix, name=f"cell{index}")

    def test_sub_shard_partition_is_refused_on_data_dependent_shards(
        self, bottom_policy
    ):
        domain, engine = self.make_engine(bottom_policy)
        session = engine.open_session("cheat", 1.0)
        # Both submissions pass the edge-closure check (⊥ edges are skipped),
        # but both cells live in the same shard whose DAWA invocation reads
        # cells {0, 1} — the releases are NOT functions of the disjoint
        # partitions, so the discount must be refused at charge time.
        t0 = engine.submit("cheat", self.row(domain, 0), epsilon=0.8, partition=[0])
        t1 = engine.submit("cheat", self.row(domain, 1), epsilon=0.8, partition=[1])
        engine.flush()
        assert t0.status == t1.status == "refused"
        for ticket in (t0, t1):
            with pytest.raises(PrivacyBudgetError, match="undeclared cells"):
                ticket.result()
        assert session.spent() == 0.0

    def test_whole_shard_partition_keeps_the_discount(self, bottom_policy):
        domain, engine = self.make_engine(bottom_policy)
        session = engine.open_session("alice", 1.0)
        left = Workload(
            domain, np.hstack([np.eye(2), np.zeros((2, 2))]), name="left"
        )
        right = Workload(
            domain, np.hstack([np.zeros((2, 2)), np.eye(2)]), name="right"
        )
        t_left = engine.submit("alice", left, epsilon=0.8, partition=[0, 1])
        t_right = engine.submit("alice", right, epsilon=0.8, partition=[2, 3])
        engine.flush()
        assert t_left.status == t_right.status == "answered"
        # Whole components declared: disjoint releases, max not sum.
        assert session.spent() == pytest.approx(0.8)


class TestWorkloadSplittingPrimitives:
    def test_restrict_to_columns_checks_confinement(self, domain):
        shard_domain = Domain((8,))
        confined = left_workload(domain)
        restricted = confined.restrict_to_columns(range(8), shard_domain)
        np.testing.assert_array_equal(restricted.dense(), np.eye(8))
        with pytest.raises(Exception, match="outside"):
            identity_workload(domain).restrict_to_columns(range(8), shard_domain)

    def test_rows_by_column_label_detects_spanning_rows(self, domain):
        labels = np.array([0] * 8 + [1] * 8)
        groups = identity_workload(domain).rows_by_column_label(labels)
        assert sorted(groups) == [0, 1]
        assert groups[0] == list(range(8))
        assert groups[1] == list(range(8, 16))
        assert total_workload(domain).rows_by_column_label(labels) is None

    def test_rows_with_empty_support_attach_to_a_group(self, domain):
        labels = np.array([0] * 8 + [1] * 8)
        matrix = np.zeros((2, 16))
        matrix[0, 3] = 1.0  # row 1 is all-zero
        groups = Workload(domain, matrix).rows_by_column_label(labels)
        assert sorted(sum(groups.values(), [])) == [0, 1]
