"""Content signatures used as cache keys by the serving engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain, Workload, cumulative_workload, identity_workload
from repro.engine import (
    answer_key,
    domain_signature,
    plan_key,
    policy_signature,
    workload_signature,
)
from repro.policy import line_policy, threshold_policy


class TestDomainSignature:
    def test_equal_domains_share_signature(self):
        assert domain_signature(Domain((8, 8))) == domain_signature(Domain((8, 8)))

    def test_shape_changes_signature(self):
        assert domain_signature(Domain((64,))) != domain_signature(Domain((8, 8)))


class TestPolicySignature:
    def test_equal_policies_share_signature(self):
        domain = Domain((16,))
        assert policy_signature(line_policy(domain)) == policy_signature(
            line_policy(domain)
        )

    def test_different_policies_differ(self):
        domain = Domain((16,))
        assert policy_signature(line_policy(domain)) != policy_signature(
            threshold_policy(domain, 3)
        )

    def test_edge_order_matters(self):
        """Columns of ``P_G`` follow edge order, so order is part of identity."""
        from repro.policy import PolicyGraph

        domain = Domain((4,))
        forward = PolicyGraph(domain, [(0, 1), (1, 2), (2, 3)])
        reversed_ = PolicyGraph(domain, [(2, 3), (1, 2), (0, 1)])
        assert policy_signature(forward) != policy_signature(reversed_)

    def test_policy_signature_is_memoised_on_the_graph(self):
        domain = Domain((16,))
        policy = line_policy(domain)
        first = policy_signature(policy)
        assert getattr(policy, "_repro_signature") == first
        assert policy_signature(policy) is first


class TestWorkloadSignature:
    def test_equal_workloads_share_signature(self):
        domain = Domain((16,))
        assert workload_signature(identity_workload(domain)) == workload_signature(
            identity_workload(domain)
        )

    def test_different_workloads_differ(self):
        domain = Domain((16,))
        assert workload_signature(identity_workload(domain)) != workload_signature(
            cumulative_workload(domain)
        )

    def test_signature_is_memoised(self):
        workload = identity_workload(Domain((16,)))
        first = workload.signature()
        assert workload.__dict__.get("_signature") == first
        assert workload.signature() is first

    def test_value_changes_signature(self):
        domain = Domain((4,))
        a = Workload(domain, np.array([[1.0, 0.0, 0.0, 0.0]]))
        b = Workload(domain, np.array([[2.0, 0.0, 0.0, 0.0]]))
        assert a.signature() != b.signature()

    def test_representation_details_do_not_change_signature(self):
        """Explicit zeros / unsorted indices are canonicalised before hashing."""
        import scipy.sparse as sp

        domain = Domain((4,))
        clean = Workload(domain, np.array([[1.0, 0.0, 2.0, 0.0]]))
        # Same semantic matrix with an explicit stored zero and unsorted cols.
        messy_matrix = sp.csr_matrix(
            (np.array([2.0, 1.0, 0.0]), (np.array([0, 0, 0]), np.array([2, 0, 3]))),
            shape=(1, 4),
        )
        assert not messy_matrix.has_sorted_indices or (messy_matrix.data == 0).any()
        messy = Workload(domain, messy_matrix)
        assert clean.signature() == messy.signature()


class TestCompositeKeys:
    def test_plan_key_depends_on_epsilon_and_config(self):
        policy = line_policy(Domain((8,)))
        base = plan_key(policy, 1.0, True, True)
        assert base == plan_key(policy, 1.0, True, True)
        assert base != plan_key(policy, 0.5, True, True)
        assert base != plan_key(policy, 1.0, False, True)

    def test_answer_key_depends_on_workload(self):
        domain = Domain((8,))
        policy = line_policy(domain)
        key_a = answer_key(policy, identity_workload(domain), 1.0)
        key_b = answer_key(policy, cumulative_workload(domain), 1.0)
        assert key_a != key_b
