"""BatchingExecutor: deadline/size auto-flush under concurrent submitters."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.core.workload import Workload
from repro.engine import BatchingExecutor, PrivateQueryEngine
from repro.exceptions import MechanismError, PrivacyBudgetError
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[2, 9, 14]] = [4.0, 8.0, 2.0]
    return Database(domain, counts, name="exec16")


@pytest.fixture
def engine(database: Database, domain: Domain) -> PrivateQueryEngine:
    return PrivateQueryEngine(
        database,
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        random_state=11,
    )


def row_workload(domain: Domain, index: int) -> Workload:
    matrix = np.zeros((1, domain.size))
    matrix[0, index] = 1.0
    return Workload(domain, matrix, name=f"row{index}")


class TestTriggers:
    def test_size_trigger_flushes_in_the_submitting_thread(self, engine, domain):
        engine.open_session("alice", 5.0)
        with BatchingExecutor(engine, max_batch_size=3, max_delay=60.0) as executor:
            tickets = [
                executor.submit("alice", row_workload(domain, index), epsilon=0.1)
                for index in range(3)
            ]
            # The third submit hit the size trigger: resolved synchronously,
            # long before the 60 s deadline could fire.
            assert all(ticket.done() for ticket in tickets)
            assert all(ticket.status == "answered" for ticket in tickets)
        # One compatible group → one vectorised invocation for all three.
        assert engine.stats.mechanism_invocations == 1

    def test_deadline_trigger_catches_stragglers(self, engine, domain):
        engine.open_session("alice", 5.0)
        with BatchingExecutor(engine, max_batch_size=1000, max_delay=0.03) as executor:
            ticket = executor.submit("alice", identity_workload(domain), epsilon=0.1)
            assert ticket.wait(5.0), "deadline flusher never resolved the ticket"
            assert ticket.status == "answered"

    def test_ask_blocks_until_some_flush_resolves(self, engine, domain):
        engine.open_session("alice", 5.0)
        with BatchingExecutor(engine, max_batch_size=1000, max_delay=0.02) as executor:
            answers = executor.ask(
                "alice", identity_workload(domain), epsilon=0.1, timeout=5.0
            )
        assert answers.shape == (16,)

    def test_close_flushes_remaining_queries(self, engine, domain):
        engine.open_session("alice", 5.0)
        executor = BatchingExecutor(engine, max_batch_size=1000, max_delay=600.0)
        ticket = executor.submit("alice", identity_workload(domain), epsilon=0.1)
        executor.close()
        assert ticket.done() and ticket.status == "answered"
        assert executor.closed

    def test_submit_after_close_is_rejected(self, engine, domain):
        engine.open_session("alice", 5.0)
        executor = BatchingExecutor(engine, max_batch_size=4, max_delay=0.02)
        executor.close()
        with pytest.raises(MechanismError):
            executor.submit("alice", identity_workload(domain), epsilon=0.1)

    def test_invalid_parameters_rejected(self, engine):
        with pytest.raises(ValueError):
            BatchingExecutor(engine, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingExecutor(engine, max_delay=0.0)


class TestConcurrentSubmitters:
    def test_cross_thread_submissions_share_flushes_and_respect_budgets(
        self, engine, domain
    ):
        num_threads, per_thread = 4, 8
        for index in range(num_threads):
            engine.open_session(f"client{index}", 0.5)
        errors: list = []

        def client(index: int) -> None:
            workloads = [identity_workload(domain), cumulative_workload(domain)]
            for round_index in range(per_thread):
                try:
                    executor.ask(
                        f"client{index}",
                        workloads[round_index % 2],
                        epsilon=0.1,
                        timeout=10.0,
                    )
                except PrivacyBudgetError:
                    pass
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

        with BatchingExecutor(engine, max_batch_size=8, max_delay=0.01) as executor:
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        stats = engine.stats
        assert stats.queries_submitted == num_threads * per_thread
        assert stats.queries_answered + stats.queries_refused == stats.queries_submitted
        for index in range(num_threads):
            assert engine.session(f"client{index}").spent() <= 0.5 + 1e-9
        # Cross-thread accumulation actually batched: strictly fewer
        # mechanism invocations than answered queries (replays aside).
        paid = stats.queries_answered - stats.answer_cache_replays
        assert stats.mechanism_invocations <= paid

    def test_submit_racing_close_never_strands_a_ticket(self, engine, domain):
        """Deterministic close: every accepted ticket resolves, every late
        submit raises — no ticket is ever left pending."""
        for index in range(4):
            engine.open_session(f"racer{index}", 10.0)
        executor = BatchingExecutor(engine, max_batch_size=64, max_delay=5.0)
        start = threading.Barrier(5)
        accepted: list = []
        rejected = []
        lock = threading.Lock()

        def submitter(index: int) -> None:
            start.wait()
            for round_index in range(20):
                try:
                    ticket = executor.submit(
                        f"racer{index}",
                        row_workload(domain, (index + round_index) % domain.size),
                        epsilon=0.01,
                    )
                except MechanismError:
                    with lock:
                        rejected.append((index, round_index))
                    return
                with lock:
                    accepted.append(ticket)

        threads = [threading.Thread(target=submitter, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        start.wait()
        executor.close()
        for thread in threads:
            thread.join()
        # close() returned before some submitters finished, but its contract
        # held: every ticket accepted before the flag flipped is resolved.
        assert all(ticket.done() for ticket in accepted)
        assert engine.pending_count == 0

    def test_concurrent_close_blocks_until_drained(self, engine, domain):
        executor = BatchingExecutor(engine, max_batch_size=64, max_delay=5.0)
        engine.open_session("closer", 10.0)
        tickets = [
            executor.submit("closer", row_workload(domain, index), epsilon=0.01)
            for index in range(4)
        ]
        results = []

        def closer() -> None:
            executor.close()
            # Whichever closer returns, the drain is complete.
            results.append(all(ticket.done() for ticket in tickets))

        threads = [threading.Thread(target=closer) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [True, True, True]
        assert executor.closed

    def test_close_is_idempotent(self, engine, domain):
        executor = BatchingExecutor(engine, max_batch_size=4, max_delay=0.01)
        executor.close()
        executor.close()  # second close returns once the drain completed
        assert executor.closed

    def test_flush_now_forces_immediate_resolution(self, engine, domain):
        engine.open_session("alice", 5.0)
        with BatchingExecutor(engine, max_batch_size=1000, max_delay=600.0) as executor:
            ticket = executor.submit("alice", identity_workload(domain), epsilon=0.1)
            assert not ticket.done()
            executor.flush_now()
            assert ticket.done()


class TestFlusherResilience:
    def test_deadline_flusher_survives_a_failing_flush(self, engine, domain):
        """Regression: a flush exception must not kill the flusher thread.

        Before the fix, any exception escaping ``engine.flush()`` on the
        deadline path terminated the daemon flusher silently — every later
        light-traffic submission then waited forever.  Now the flusher logs
        a warning and keeps watching deadlines.
        """
        engine.open_session("alice", 5.0)
        real_flush = engine.flush
        failures = threading.Event()

        def flaky_flush(*args, **kwargs):
            if not failures.is_set():
                failures.set()
                raise RuntimeError("injected flush failure")
            return real_flush(*args, **kwargs)

        engine.flush = flaky_flush
        try:
            executor = BatchingExecutor(engine, max_batch_size=1000, max_delay=0.01)
            try:
                first = executor.submit(
                    "alice", identity_workload(domain), epsilon=0.1
                )
                # The deadline flush for this ticket raises; the ticket
                # stays pending and the flusher thread must stay alive.
                assert failures.wait(5.0)
                assert executor._flusher.is_alive()
                # The *next* deadline window is still watched: a later
                # flush (driven by the same thread) resolves everything.
                second = executor.submit(
                    "alice", cumulative_workload(domain), epsilon=0.1
                )
                assert first.wait(5.0)
                assert second.wait(5.0)
                assert first.status == "answered"
                assert second.status == "answered"
            finally:
                executor.close()
        finally:
            engine.flush = real_flush
