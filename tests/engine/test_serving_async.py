"""AsyncQueryEngine: awaitable tickets, loop-timed flushes, determinism."""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.core.workload import Workload
from repro.engine import BatchingExecutor, PrivateQueryEngine
from repro.engine.serving import AsyncQueryEngine, AsyncTicket
from repro.exceptions import AskTimeoutError, MechanismError
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[1, 6, 12]] = [3.0, 7.0, 5.0]
    return Database(domain, counts, name="async16")


def build_engine(database: Database, domain: Domain, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=31,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


def row_workload(domain: Domain, index: int) -> Workload:
    matrix = np.zeros((1, domain.size))
    matrix[0, index] = 1.0
    return Workload(domain, matrix, name=f"row{index}")


def ledger(engine: PrivateQueryEngine, client_id: str):
    return [
        (op.label, op.epsilon, op.partition)
        for op in engine.session(client_id).accountant.operations
    ]


class TestAwaitableTickets:
    def test_ask_answers_via_size_trigger(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            async with AsyncQueryEngine(engine, max_batch_size=2, max_delay=30.0) as front:
                return await asyncio.gather(
                    front.ask("alice", identity_workload(domain), 0.5),
                    front.ask("alice", cumulative_workload(domain), 0.5),
                )

        histogram, prefix = asyncio.run(scenario())
        assert histogram.shape == (domain.size,)
        assert prefix.shape == (domain.size,)
        # Both rode one size-triggered flush: a single vectorised invocation.
        assert engine.stats.mechanism_invocations == 1

    def test_deadline_trigger_fires_without_further_submissions(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            async with AsyncQueryEngine(engine, max_batch_size=64, max_delay=0.02) as front:
                started = time.monotonic()
                answers = await asyncio.wait_for(
                    front.ask("alice", identity_workload(domain), 0.5), timeout=5.0
                )
                return answers, time.monotonic() - started

        answers, elapsed = asyncio.run(scenario())
        assert answers.shape == (domain.size,)
        # Resolved by the call_later timer, nowhere near the 64-query size cap.
        assert elapsed < 4.0

    def test_await_ticket_directly(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            async with AsyncQueryEngine(engine, max_batch_size=64, max_delay=0.01) as front:
                ticket = front.submit("alice", identity_workload(domain), 0.5)
                assert isinstance(ticket, AsyncTicket)
                assert not ticket.done()
                answers = await ticket
                assert ticket.done()
                assert ticket.ticket.status == "answered"
                return answers

        assert asyncio.run(scenario()).shape == (domain.size,)

    def test_multiple_awaiters_on_one_ticket(self, database, domain):
        """Several coroutines awaiting one ticket all wake on its flush."""
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            async with AsyncQueryEngine(engine, max_batch_size=64, max_delay=0.01) as front:
                ticket = front.submit("alice", identity_workload(domain), 0.5)
                results = await asyncio.gather(*(ticket.result() for _ in range(5)))
                return results

        results = asyncio.run(scenario())
        assert len(results) == 5
        for answers in results[1:]:
            assert np.array_equal(answers, results[0])


class TestTimeouts:
    def test_timed_out_ask_resolves_on_a_later_flush(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            front = AsyncQueryEngine(engine, max_batch_size=64, max_delay=30.0)
            try:
                with pytest.raises(AskTimeoutError) as excinfo:
                    # Deadline 30 s out, queue far from full: only the
                    # 50 ms wait can win.
                    await front.ask(
                        "alice", identity_workload(domain), 0.5, timeout=0.05
                    )
                ticket = excinfo.value.ticket
                assert ticket.status == "pending"
                resolved = await front.flush()
                assert ticket in resolved
                assert ticket.status == "answered"
                return ticket.result()
            finally:
                await front.aclose()

        assert asyncio.run(scenario()).shape == (domain.size,)

    def test_timeout_does_not_disturb_other_awaiters(self, database, domain):
        """The shielded wait: one awaiter timing out must not cancel the
        shared future other awaiters are suspended on."""
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            async with AsyncQueryEngine(engine, max_batch_size=64, max_delay=0.2) as front:
                ticket = front.submit("alice", identity_workload(domain), 0.5)
                patient = asyncio.ensure_future(ticket.result())
                assert not await ticket.wait(timeout=0.01)  # times out first
                return await asyncio.wait_for(patient, timeout=5.0)

        assert asyncio.run(scenario()).shape == (domain.size,)


class TestLifecycle:
    def test_aclose_drains_pending_tickets(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            front = AsyncQueryEngine(engine, max_batch_size=64, max_delay=30.0)
            tickets = [
                front.submit("alice", row_workload(domain, index), 0.1)
                for index in range(3)
            ]
            await front.aclose()
            return tickets

        tickets = asyncio.run(scenario())
        assert all(t.ticket.status == "answered" for t in tickets)

    def test_submit_after_aclose_is_rejected(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)

        async def scenario():
            front = AsyncQueryEngine(engine)
            await front.aclose()
            assert front.closed
            with pytest.raises(MechanismError):
                front.submit("alice", identity_workload(domain), 0.5)
            await front.aclose()  # idempotent

        asyncio.run(scenario())

    def test_executor_close_races_inflight_async_ask(self, database, domain):
        """A thread front-end closing mid-service must not strand a
        coroutine awaiting a ticket: close() drains the shared engine, and
        the loop waiter is woken cross-thread by the executor's flush."""
        engine = build_engine(database, domain)
        engine.open_session("alice", 5.0)
        executor = BatchingExecutor(engine, max_batch_size=64, max_delay=30.0)

        async def scenario():
            front = AsyncQueryEngine(engine, max_batch_size=64, max_delay=30.0)
            try:
                # Submitted through the async front-end, far from either
                # trigger: only the racing executor.close() can resolve it.
                pending = asyncio.ensure_future(
                    front.ask("alice", identity_workload(domain), 0.5)
                )
                await asyncio.sleep(0.05)  # the ask is parked on its waiter
                closer = threading.Thread(target=executor.close)
                closer.start()
                answers = await asyncio.wait_for(pending, timeout=5.0)
                closer.join(timeout=5.0)
                return answers
            finally:
                await front.aclose()

        assert asyncio.run(scenario()).shape == (domain.size,)


class TestDeterminism:
    def test_async_path_matches_direct_flush_byte_for_byte(self, database, domain):
        """Same seed, same submission order, same flush boundaries: the
        async front-end's draws and ε ledger are identical to a direct
        ``flush()`` — the front-end adds no privacy semantics."""
        direct = build_engine(database, domain)
        direct.open_session("alice", 5.0)
        direct_tickets = [
            direct.submit("alice", identity_workload(domain), 0.5),
            direct.submit("alice", cumulative_workload(domain), 0.25),
        ]
        direct.flush()
        direct_answers = [t.result() for t in direct_tickets]

        served = build_engine(database, domain)
        served.open_session("alice", 5.0)

        async def scenario():
            async with AsyncQueryEngine(served, max_batch_size=64, max_delay=30.0) as front:
                tickets = [
                    front.submit("alice", identity_workload(domain), 0.5),
                    front.submit("alice", cumulative_workload(domain), 0.25),
                ]
                await front.flush()
                return [t.ticket.result() for t in tickets]

        served_answers = asyncio.run(scenario())
        for direct_vector, served_vector in zip(direct_answers, served_answers):
            assert np.array_equal(direct_vector, served_vector)
        assert ledger(direct, "alice") == ledger(served, "alice")

    def test_async_path_matches_thread_executor_byte_for_byte(self, database, domain):
        """The two front-ends share BatchTriggers semantics and the flush
        pipeline: same seed + same batches → identical draws and ledgers."""
        threaded = build_engine(database, domain)
        threaded.open_session("alice", 5.0)
        with BatchingExecutor(threaded, max_batch_size=2, max_delay=30.0) as executor:
            thread_tickets = [
                executor.submit("alice", row_workload(domain, index), 0.1)
                for index in range(2)
            ]
        thread_answers = [t.result() for t in thread_tickets]

        served = build_engine(database, domain)
        served.open_session("alice", 5.0)

        async def scenario():
            async with AsyncQueryEngine(served, max_batch_size=2, max_delay=30.0) as front:
                return await asyncio.gather(
                    front.ask("alice", row_workload(domain, 0), 0.1),
                    front.ask("alice", row_workload(domain, 1), 0.1),
                )

        served_answers = asyncio.run(scenario())
        for thread_vector, served_vector in zip(thread_answers, served_answers):
            assert np.array_equal(thread_vector, served_vector)
        assert ledger(threaded, "alice") == ledger(served, "alice")


class TestImportIsolation:
    def test_sync_engine_imports_no_asyncio_serving_machinery(self):
        """Engines that never serve a network path must not pay for one:
        importing repro.engine may not pull in the serving package (and the
        engine core itself must not import asyncio)."""
        code = (
            "import sys\n"
            "import repro.engine\n"
            "assert 'repro.engine.serving' not in sys.modules, 'serving leaked'\n"
            "offenders = [name for name, module in sys.modules.items()\n"
            "             if name.startswith('repro') and module is not None\n"
            "             and getattr(module, 'asyncio', None) is not None]\n"
            "assert not offenders, f'asyncio imported by {offenders}'\n"
            "print('clean')\n"
        )
        env = dict(os.environ)
        src_dir = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout
