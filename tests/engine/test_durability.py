"""Durable state tier: crash-safe ε-ledger, snapshotter, fault injection.

The heart of this module is the subprocess kill matrix: a child engine is
killed (``os._exit``, the in-process double of ``kill -9``) at every named
crash point, with the durable ledger on and off, and the relaunched
process must prove the one-directional invariant — *the recovered ledger
counts at least every ε charged before the crash, and never less* — plus
agreement between the durable ledger and the ε-audit stream.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.accounting import PrivacyAccountant
from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.engine import PrivateQueryEngine
from repro.engine.durability import (
    CRASH_POINTS,
    FaultInjector,
    LedgerStore,
    Snapshotter,
    fault_point,
    kill_one_worker,
    read_answer_store,
    recover_accountant,
)
from repro.engine.observability import AuditLog, read_audit_events
from repro.exceptions import (
    DurabilityError,
    PlanStoreError,
    PrivacyBudgetError,
)
from repro.policy import line_policy

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    """Every test starts and ends with the fault hooks in production state."""
    FaultInjector.clear()
    yield
    FaultInjector.clear()


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[1, 5, 6, 12]] = [3, 7, 1, 9]
    return Database(domain, counts, name="sparse16")


def make_engine(database, domain, **kwargs):
    kwargs.setdefault("total_epsilon", 10.0)
    kwargs.setdefault("default_policy", line_policy(domain))
    kwargs.setdefault("random_state", 7)
    return PrivateQueryEngine(database, **kwargs)


# ---------------------------------------------------------------------------
# The subprocess kill matrix: 4 crash points x durable {on, off}.
# ---------------------------------------------------------------------------
#: ε the child provably charged before each crash point fired: nothing
#: before the first charge, the first ticket's 1.0 after it, both tickets'
#: 1.75 once every charge preceded the crash.
CHARGED_BEFORE_CRASH = {
    "pre-charge": 0.0,
    "post-charge": 1.0,
    "pre-resolve": 1.75,
    "mid-snapshot": 1.75,
}

CRASH_CHILD = """
import sys

import numpy as np

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.engine import FaultInjector, PrivateQueryEngine
from repro.engine.observability import AuditLog, Observability
from repro.policy import line_policy

point, durable, workdir = sys.argv[1], sys.argv[2] == "1", sys.argv[3]
domain = Domain((16,))
counts = np.zeros(16)
counts[[1, 5, 6, 12]] = [3, 7, 1, 9]
database = Database(domain, counts, name="sparse16")
observability = Observability(
    enabled=False,
    audit=AuditLog(path=workdir + "/audit.jsonl", fsync=True),
)
engine = PrivateQueryEngine(
    database,
    total_epsilon=10.0,
    default_policy=line_policy(domain),
    random_state=7,
    observability=observability,
    durable_ledger=(workdir + "/ledger.db") if durable else None,
    snapshot_dir=(workdir + "/snaps") if point == "mid-snapshot" else None,
    snapshot_interval=0,
)
engine.open_session("alice", 5.0)
engine.submit("alice", identity_workload(domain), epsilon=1.0)
engine.submit("alice", cumulative_workload(domain), epsilon=0.75)
FaultInjector().crash_at(point, exit_code=42).install()
engine.flush()
if point == "mid-snapshot":
    engine.snapshot()
print("SURVIVED", flush=True)  # the parent asserts this is unreachable
sys.exit(0)
"""


def run_crash_child(tmp_path: Path, point: str, durable: bool):
    script = tmp_path / "crash_child.py"
    script.write_text(CRASH_CHILD)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(script), point, "1" if durable else "0", str(tmp_path)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def audited_session_net(audit_path: Path) -> float:
    """Net ε the audit stream attributes to session queries (charges - rollbacks)."""
    net = 0.0
    for event in read_audit_events(str(audit_path)):
        if not str(event.get("label", "")).startswith("query:"):
            continue
        if event["event"] == "charge":
            net += event["epsilon"]
        elif event["event"] == "rollback":
            net -= event["epsilon"]
    return net


@pytest.mark.parametrize("point", CRASH_POINTS)
class TestKillAtEveryCrashPoint:
    def test_durable_recovery_never_undercounts(
        self, tmp_path, database, domain, point
    ):
        result = run_crash_child(tmp_path, point, durable=True)
        assert result.returncode == 42, result.stderr
        assert "SURVIVED" not in result.stdout

        expected = CHARGED_BEFORE_CRASH[point]
        store, state = recover_accountant(str(tmp_path / "ledger.db"))
        try:
            # The session allotment was journalled before any crash point.
            assert state.accountant.spent() == pytest.approx(5.0)
            sessions = [s for s in state.scopes if s.label == "session:alice"]
            assert len(sessions) == 1
            recovered = sessions[0].accountant.spent()
            # The invariant: over-counting is allowed, under-counting never.
            assert recovered >= expected - 1e-12
            # In this deterministic scenario recovery is in fact exact.
            assert recovered == pytest.approx(expected)
            # Ledger/audit agreement: every audit-visible charge was written
            # durably first, so the stream can never claim more than the
            # recovered ledger holds.
            assert recovered >= audited_session_net(tmp_path / "audit.jsonl") - 1e-12
        finally:
            store.close()

        # Relaunch the server against the same ledger: the recovered spend
        # is enforced, not merely reported.
        engine = make_engine(
            database, domain, durable_ledger=str(tmp_path / "ledger.db")
        )
        with engine:
            session = engine.session("alice")
            assert session.recovered
            assert session.remaining() == pytest.approx(5.0 - expected)
            with pytest.raises(PrivacyBudgetError, match="already open"):
                engine.open_session("alice", 1.0)
            over = engine.submit(
                "alice", identity_workload(domain), epsilon=5.0 - expected + 0.25
            )
            engine.flush()
            assert over.status == "refused"
            affordable = engine.submit(
                "alice", identity_workload(domain), epsilon=0.5
            )
            engine.flush()
            assert affordable.status == "answered"

    def test_without_ledger_the_crash_forgets_everything(
        self, tmp_path, database, domain, point
    ):
        result = run_crash_child(tmp_path, point, durable=False)
        assert result.returncode == 42, result.stderr
        assert not (tmp_path / "ledger.db").exists()
        # The audit stream still shows what was admitted pre-crash...
        assert audited_session_net(tmp_path / "audit.jsonl") == pytest.approx(
            CHARGED_BEFORE_CRASH[point]
        )
        # ...but a relaunch without a durable ledger starts cold: the spent
        # budget is gone, which is exactly the violation the ledger closes.
        engine = make_engine(database, domain)
        with engine:
            assert engine.accountant.spent() == 0.0


class TestMidSnapshotCrash:
    def test_crash_leaves_both_stores_readable(self, tmp_path, database, domain):
        """The mid-snapshot kill leaves a fresh plan store beside the
        previous answer store — never a torn file on either side."""
        result = run_crash_child(tmp_path, "mid-snapshot", durable=True)
        assert result.returncode == 42, result.stderr
        snaps = tmp_path / "snaps"
        # The crash hit between the two writes: plans landed, answers did
        # not (this was the first snapshot, so no previous answer store).
        assert (snaps / "plans.pkl").exists()
        assert not (snaps / "answers.pkl").exists()
        assert not list(snaps.glob(".*tmp*")), "torn temp files left behind"
        # A relaunch restores the plan store and treats the missing answer
        # store as a cold cache.
        engine = make_engine(
            database,
            domain,
            durable_ledger=str(tmp_path / "ledger.db"),
            snapshot_dir=str(snaps),
            snapshot_interval=0,
        )
        with engine:
            assert len(engine.plan_cache) > 0


# ---------------------------------------------------------------------------
# Ledger store unit behaviour (in-process).
# ---------------------------------------------------------------------------
class TestLedgerStore:
    def test_charge_is_durable_before_anything_runs(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        store = LedgerStore(path)
        store.initialise(4.0)
        accountant = PrivacyAccountant(4.0)
        store.bind(accountant)
        accountant.charge("q1", 1.5)
        # A second connection (a "post-crash" reader) already sees the op.
        reader, state = recover_accountant(path)
        assert state.accountant.spent() == pytest.approx(1.5)
        reader.close()
        store.close()

    def test_disk_full_refuses_the_charge_fail_closed(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        store = LedgerStore(path)
        store.initialise(4.0)
        accountant = PrivacyAccountant(4.0)
        store.bind(accountant)
        FaultInjector().disk_full_at("ledger-append").install()
        with pytest.raises(PrivacyBudgetError, match="durable ledger append"):
            accountant.charge("q1", 1.0)
        # Fail-closed on both sides: nothing in memory, nothing on disk.
        assert accountant.spent() == 0.0
        assert accountant.operations == []
        FaultInjector.clear()
        accountant.charge("q2", 1.0)  # the store keeps working afterwards
        reader, state = recover_accountant(path)
        assert [op.label for op in state.accountant.operations] == ["q2"]
        reader.close()
        store.close()

    def test_rollback_deletes_durably(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        store = LedgerStore(path)
        store.initialise(4.0)
        accountant = PrivacyAccountant(4.0)
        store.bind(accountant)
        keep = accountant.charge("keep", 1.0)
        undo = accountant.charge("undo", 2.0)
        accountant.rollback(undo)
        reader, state = recover_accountant(path)
        assert [op.label for op in state.accountant.operations] == ["keep"]
        assert state.accountant.spent() == pytest.approx(keep.epsilon)
        reader.close()
        store.close()

    def test_scope_close_folds_spend_into_parent(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        store = LedgerStore(path)
        store.initialise(10.0)
        accountant = PrivacyAccountant(10.0)
        store.bind(accountant)
        scope = accountant.open_scope("session:bob", 4.0)
        scope.charge("q1", 1.5)
        accountant.charge("global", 1.0)
        scope.close()  # refunds 2.5; the reservation row rewrites to 1.5
        reader, state = recover_accountant(path)
        assert state.accountant.spent() == pytest.approx(2.5)
        assert state.scopes == []  # closed scopes stay closed
        reader.close()
        store.close()

    def test_partitioned_charges_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        store = LedgerStore(path)
        store.initialise(10.0)
        accountant = PrivacyAccountant(10.0)
        store.bind(accountant)
        accountant.charge("p1", 1.0, partition=[0, 1, 2])
        accountant.charge("p2", 1.0, partition=[3, 4])
        reader, state = recover_accountant(path)
        # Parallel composition survives recovery: disjoint partitions
        # compose to the max, exactly as the live ledger counted them.
        assert state.accountant.spent() == pytest.approx(accountant.spent())
        assert [op.partition for op in state.accountant.operations] == [
            frozenset({0, 1, 2}),
            frozenset({3, 4}),
        ]
        reader.close()
        store.close()

    def test_recover_refuses_a_fresh_store(self, tmp_path):
        store = LedgerStore(str(tmp_path / "fresh.db"))
        with pytest.raises(DurabilityError, match="never initialised"):
            store.recover()
        store.close()

    def test_future_format_version_is_refused(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        store = LedgerStore(path)
        store.initialise(1.0)
        store.close()
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE meta SET value = '99' WHERE key = 'format'")
        with pytest.raises(DurabilityError, match="format version 99"):
            LedgerStore(path)

    def test_engine_refuses_total_epsilon_mismatch(
        self, tmp_path, database, domain
    ):
        path = str(tmp_path / "ledger.db")
        make_engine(database, domain, total_epsilon=10.0, durable_ledger=path).close()
        with pytest.raises(DurabilityError, match="total_epsilon"):
            make_engine(database, domain, total_epsilon=11.0, durable_ledger=path)

    def test_durable_on_and_off_draw_identical_noise(
        self, tmp_path, database, domain
    ):
        """The durable hooks must never touch the noise path: a seeded
        engine's draws and ledgers are byte-identical either way."""

        def serve(durable):
            engine = make_engine(
                database,
                domain,
                durable_ledger=str(tmp_path / "on.db") if durable else None,
            )
            with engine:
                session = engine.open_session("alice", 5.0)
                tickets = [
                    engine.submit("alice", identity_workload(domain), epsilon=1.0),
                    engine.submit("alice", cumulative_workload(domain), epsilon=0.5),
                ]
                engine.flush()
                answers = [t.answers for t in tickets]
                ledger = [
                    (op.label, op.epsilon, op.partition)
                    for op in session.accountant.operations
                ]
            return answers, ledger

        durable_answers, durable_ledger = serve(durable=True)
        plain_answers, plain_ledger = serve(durable=False)
        assert durable_ledger == plain_ledger
        for durable_rows, plain_rows in zip(durable_answers, plain_answers):
            assert durable_rows is not None and plain_rows is not None
            assert np.asarray(durable_rows).tobytes() == (
                np.asarray(plain_rows).tobytes()
            )


# ---------------------------------------------------------------------------
# Snapshotter behaviour (in-process).
# ---------------------------------------------------------------------------
class TestSnapshotter:
    def serve_one(self, engine, domain, epsilon=1.0):
        ticket = engine.submit("alice", identity_workload(domain), epsilon=epsilon)
        engine.flush()
        assert ticket.status == "answered"
        return ticket

    def test_snapshot_and_restore_round_trip(self, tmp_path, database, domain):
        snaps = str(tmp_path / "snaps")
        engine = make_engine(database, domain, snapshot_dir=snaps, snapshot_interval=0)
        with engine:
            engine.open_session("alice", 5.0)
            self.serve_one(engine, domain)
            plans, answers = engine.snapshot()
            assert plans >= 1 and answers == 1
        warm = make_engine(database, domain, snapshot_dir=snaps, snapshot_interval=0)
        with warm:
            warm.open_session("alice", 5.0)
            self.serve_one(warm, domain)  # same query: replayed from the cache
            stats = warm.stats
            assert stats.plan_misses == 0
            assert stats.answer_hits == 1

    def test_restored_draw_ids_never_collide(self, tmp_path, database, domain):
        snaps = str(tmp_path / "snaps")
        engine = make_engine(database, domain, snapshot_dir=snaps, snapshot_interval=0)
        with engine:
            engine.open_session("alice", 5.0)
            self.serve_one(engine, domain)
            engine.snapshot()
            restored_max = engine.answer_cache.max_draw_id()
        warm = make_engine(database, domain, snapshot_dir=snaps, snapshot_interval=0)
        with warm:
            assert warm._next_draw_id() > restored_max

    def test_interrupted_snapshot_preserves_the_previous_one(
        self, tmp_path, database, domain
    ):
        """The torn-write test: an error between the two atomic writes
        leaves the fresh plan store beside the *previous* answer store."""
        snaps = str(tmp_path / "snaps")
        engine = make_engine(database, domain, snapshot_dir=snaps, snapshot_interval=0)
        with engine:
            engine.open_session("alice", 5.0)
            self.serve_one(engine, domain, epsilon=1.0)
            engine.snapshot()
            first_answers = (tmp_path / "snaps" / "answers.pkl").read_bytes()
            self.serve_one(engine, domain, epsilon=0.5)
            FaultInjector().disk_full_at("mid-snapshot").install()
            with pytest.raises(OSError):
                engine.snapshot()
            FaultInjector.clear()
            # os.replace atomicity: the answer store is bytewise the
            # previous snapshot, not a truncated half-write of the new one.
            assert (
                tmp_path / "snaps" / "answers.pkl"
            ).read_bytes() == first_answers
            assert not list((tmp_path / "snaps").glob(".*tmp*"))
            payload = read_answer_store(str(tmp_path / "snaps" / "answers.pkl"))
            assert len(payload["entries"]) == 1

    def test_corrupt_answer_store_degrades_to_cold_cache(
        self, tmp_path, database, domain, caplog
    ):
        snaps = tmp_path / "snaps"
        engine = make_engine(
            database, domain, snapshot_dir=str(snaps), snapshot_interval=0
        )
        with engine:
            engine.open_session("alice", 5.0)
            self.serve_one(engine, domain)
            engine.snapshot()
        # Tear the answer store in half; the plan store stays intact.
        blob = (snaps / "answers.pkl").read_bytes()
        (snaps / "answers.pkl").write_bytes(blob[: len(blob) // 2])
        with caplog.at_level("WARNING", logger="repro.engine.durability.snapshotter"):
            cold = make_engine(
                database, domain, snapshot_dir=str(snaps), snapshot_interval=0
            )
        with cold:
            assert len(cold.plan_cache) > 0  # plans survived
            assert len(cold.answer_cache.export_entries()) == 0
        assert any("degrading to cold" in message for message in caplog.messages)

    def test_background_thread_snapshots_periodically(
        self, tmp_path, database, domain
    ):
        snaps = tmp_path / "snaps"
        engine = make_engine(
            database, domain, snapshot_dir=str(snaps), snapshot_interval=0.05
        )
        with engine:
            engine.open_session("alice", 5.0)
            self.serve_one(engine, domain)
            deadline = time.time() + 5.0
            while time.time() < deadline:
                if engine.snapshotter.snapshots_taken >= 1:
                    break
                time.sleep(0.02)
            assert engine.snapshotter.snapshots_taken >= 1
        assert (snaps / "plans.pkl").exists()
        assert (snaps / "answers.pkl").exists()


# ---------------------------------------------------------------------------
# Audit stream robustness (satellite 1).
# ---------------------------------------------------------------------------
class TestAuditTornTail:
    def write_events(self, path, count=3):
        log = AuditLog(path=str(path))
        for index in range(count):
            log.emit("charge", label=f"q{index}", epsilon=0.5)
        log.close()

    def test_torn_final_line_is_skipped(self, tmp_path, caplog):
        path = tmp_path / "audit.jsonl"
        self.write_events(path)
        with open(path, "a") as handle:
            handle.write('{"event": "charge", "label": "torn')  # no newline
        with caplog.at_level("WARNING"):
            events = read_audit_events(str(path))
        assert [e["label"] for e in events] == ["q0", "q1", "q2"]
        assert any("torn" in m or "truncated" in m for m in caplog.messages)

    def test_strict_mode_raises_on_the_torn_tail(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self.write_events(path)
        with open(path, "a") as handle:
            handle.write('{"half')
        with pytest.raises(ValueError):
            read_audit_events(str(path), strict=True)

    def test_malformed_middle_line_always_raises(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self.write_events(path)
        lines = path.read_text().splitlines()
        lines[1] = '{"broken'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 2"):
            read_audit_events(str(path))

    def test_fsync_knob_still_produces_readable_events(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path=str(path), fsync=True)
        log.emit("charge", label="durable", epsilon=1.0)
        log.close()
        events = read_audit_events(str(path))
        assert [e["label"] for e in events] == ["durable"]


# ---------------------------------------------------------------------------
# Plan store corruption (satellite 2).
# ---------------------------------------------------------------------------
class TestCorruptPlanStore:
    def test_corrupt_store_raises_versioned_error(self, tmp_path, database, domain):
        path = tmp_path / "plans.pkl"
        path.write_bytes(b"not a pickle at all")
        engine = make_engine(database, domain)
        with engine:
            with pytest.raises(PlanStoreError) as excinfo:
                engine.load_plans(str(path))
            assert excinfo.value.path == str(path)

    def test_truncated_store_raises_versioned_error(self, tmp_path, database, domain):
        path = tmp_path / "plans.pkl"
        engine = make_engine(database, domain)
        with engine:
            engine.open_session("alice", 5.0)
            ticket = engine.submit("alice", identity_workload(domain), epsilon=1.0)
            engine.flush()
            assert ticket.status == "answered"
            engine.save_plans(str(path))
            blob = path.read_bytes()
            path.write_bytes(blob[: len(blob) // 2])
            with pytest.raises(PlanStoreError):
                engine.load_plans(str(path))

    def test_on_corrupt_cold_degrades_with_a_warning(
        self, tmp_path, database, domain, caplog
    ):
        path = tmp_path / "plans.pkl"
        path.write_bytes(pickle.dumps({"format": 99, "entries": []}))
        engine = make_engine(database, domain)
        with engine:
            with caplog.at_level("WARNING"):
                loaded = engine.load_plans(str(path), on_corrupt="cold")
            assert loaded == 0
            assert any("cold start" in message for message in caplog.messages)

    def test_on_corrupt_validates_its_argument(self, tmp_path, database, domain):
        engine = make_engine(database, domain)
        with engine:
            with pytest.raises(ValueError, match="on_corrupt"):
                engine.load_plans(str(tmp_path / "x.pkl"), on_corrupt="explode")


# ---------------------------------------------------------------------------
# Fault injector mechanics.
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_hooks_are_inert_without_an_installed_injector(self):
        fault_point("pre-charge")  # must not raise, count, or crash

    def test_fail_at_fires_on_the_exact_hit(self):
        injector = FaultInjector().fail_at(
            "pre-charge", lambda: RuntimeError("boom"), hits=3
        )
        injector.install()
        fault_point("pre-charge")
        fault_point("pre-charge")
        with pytest.raises(RuntimeError, match="boom"):
            fault_point("pre-charge")
        fault_point("pre-charge")  # later hits pass again
        assert injector.hits("pre-charge") == 4

    def test_clear_restores_the_noop_path(self):
        FaultInjector().fail_at("pre-charge", lambda: RuntimeError("boom")).install()
        FaultInjector.clear()
        fault_point("pre-charge")
        assert FaultInjector.active() is None

    def test_crash_points_are_the_documented_four(self):
        assert CRASH_POINTS == (
            "pre-charge",
            "post-charge",
            "pre-resolve",
            "mid-snapshot",
        )

    def test_arming_validates_inputs(self):
        with pytest.raises(ValueError, match="hits"):
            FaultInjector().crash_at("pre-charge", hits=0)
        with pytest.raises(ValueError, match="non-empty"):
            FaultInjector().fail_at("", lambda: RuntimeError())


# ---------------------------------------------------------------------------
# Broken worker pool degradation (satellite 3).
# ---------------------------------------------------------------------------
class TestBrokenPoolRespawn:
    def serve_round(self, engine, domain, epsilons):
        tickets = [
            engine.submit("alice", identity_workload(domain), epsilon=epsilons[0]),
            engine.submit("alice", cumulative_workload(domain), epsilon=epsilons[1]),
        ]
        engine.flush()
        return tickets

    def test_killed_worker_respawns_once_then_falls_back_inline(
        self, database, domain
    ):
        engine = make_engine(
            database,
            domain,
            total_epsilon=100.0,
            enable_answer_cache=False,
            execute_workers=2,
            execute_backend="process",
        )
        backend = engine._execute_backend
        backend._respawn_backoff = 0.01
        with engine:
            session = engine.open_session("alice", 90.0)
            answered = self.serve_round(engine, domain, (1.0, 1.25))
            assert [t.status for t in answered] == ["answered", "answered"]
            assert backend._pool is not None

            # Kill 1: the affected batch rolls back, the pool respawns.
            kill_one_worker(backend)
            time.sleep(0.3)
            broken = self.serve_round(engine, domain, (1.05, 1.3))
            assert engine.stats.pool_respawns == 1
            for ticket in broken:
                if ticket.status == "refused":
                    assert "rolled back" in ticket.error

            # The fresh pool serves.
            fresh = self.serve_round(engine, domain, (1.1, 1.35))
            assert [t.status for t in fresh] == ["answered", "answered"]
            assert engine.stats.pool_respawns == 1

            # Kill 2: the respawn budget (1) is exhausted -> inline, forever.
            kill_one_worker(backend)
            time.sleep(0.3)
            self.serve_round(engine, domain, (1.15, 1.4))
            inline = self.serve_round(engine, domain, (1.2, 1.45))
            assert [t.status for t in inline] == ["answered", "answered"]
            assert backend._pool is None
            assert engine.stats.pool_respawns == 1

            # Rollbacks held: the session paid for answers and nothing else.
            answered_epsilon = sum(
                t.epsilon
                for t in answered + broken + fresh + inline
                if t.status == "answered"
            )
            # The kill-2 round resolved too; count whatever it answered.
            assert session.spent() <= 90.0
            assert session.spent() >= answered_epsilon

    def test_stats_snapshot_keeps_respawns_after_close(self, database, domain):
        engine = make_engine(
            database,
            domain,
            total_epsilon=100.0,
            enable_answer_cache=False,
            execute_workers=2,
            execute_backend="process",
        )
        backend = engine._execute_backend
        backend._respawn_backoff = 0.01
        with engine:
            engine.open_session("alice", 50.0)
            self.serve_round(engine, domain, (1.0, 1.25))
            kill_one_worker(backend)
            time.sleep(0.3)
            self.serve_round(engine, domain, (1.05, 1.3))
            assert engine.stats.pool_respawns == 1
        assert engine.stats.pool_respawns == 1  # survives close()
