"""Process-parallel execute backend: determinism, ledgers, stats, lifecycle."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.core.workload import Workload
from repro.engine import PlanCache, PrivateQueryEngine
from repro.engine.parallel import (
    ExecuteUnit,
    ProcessExecuteBackend,
    create_execute_backend,
    run_unit,
)
from repro.policy import PolicyGraph, line_policy

DOMAIN_SIZE = 32
HALF = DOMAIN_SIZE // 2


@pytest.fixture(scope="module")
def domain() -> Domain:
    return Domain((DOMAIN_SIZE,))


@pytest.fixture(scope="module")
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(DOMAIN_SIZE, dtype=float), name="ramp")


@pytest.fixture(scope="module")
def split_policy(domain: Domain) -> PolicyGraph:
    return PolicyGraph(
        domain,
        edges=[(i, i + 1) for i in range(HALF - 1)]
        + [(i, i + 1) for i in range(HALF, DOMAIN_SIZE - 1)],
        name="two-segments",
    )


def left_workload(domain: Domain) -> Workload:
    return Workload(
        domain, np.hstack([np.eye(HALF), np.zeros((HALF, HALF))]), name="left"
    )


def serve_stream(domain, database, split_policy, backend: str):
    """One fixed submission mix through the given backend; returns evidence.

    Three ε groups on the connected line policy (three unsharded batches)
    plus a sharded batch on the two-component policy — enough unit diversity
    to exercise per-batch and per-shard child streams.
    """
    engine = PrivateQueryEngine(
        database,
        total_epsilon=100.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=42,
        execute_workers=2,
        execute_backend=backend,
    )
    with engine:
        session = engine.open_session("alice", 50.0)
        tickets = [
            engine.submit("alice", identity_workload(domain), epsilon=0.5),
            engine.submit("alice", cumulative_workload(domain), epsilon=0.25),
            engine.submit("alice", total_workload(domain), epsilon=0.125),
            engine.submit(
                "alice", left_workload(domain), epsilon=0.4, policy=split_policy
            ),
            engine.submit(
                "alice", identity_workload(domain), epsilon=0.4, policy=split_policy
            ),
        ]
        engine.flush()
        stats = engine.stats
        ledger = [
            (op.label, op.epsilon, op.partition)
            for op in session.accountant.operations
        ]
    return {
        "statuses": [t.status for t in tickets],
        "answers": [t.answers for t in tickets],
        "ledger": ledger,
        "stats": stats,
        "engine": engine,
    }


@pytest.fixture(scope="module")
def thread_run(domain, database, split_policy):
    return serve_stream(domain, database, split_policy, "thread")


@pytest.fixture(scope="module")
def process_run(domain, database, split_policy):
    return serve_stream(domain, database, split_policy, "process")


class TestBackendSelection:
    def test_default_engine_reports_inline_backend(self, domain, database):
        engine = PrivateQueryEngine(
            database, total_epsilon=10.0, default_policy=line_policy(domain)
        )
        stats = engine.stats
        assert stats.execute_backend == "inline"
        assert stats.worker_dispatches == 0
        assert stats.serialization_seconds == 0.0

    def test_single_worker_stays_inline(self, domain, database):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            execute_workers=1,
            execute_backend="process",
        )
        assert engine._execute_backend is None
        assert engine.stats.execute_backend == "inline"

    def test_unknown_backend_is_rejected(self, domain, database):
        with pytest.raises(ValueError, match="execute backend"):
            PrivateQueryEngine(
                database,
                total_epsilon=10.0,
                default_policy=line_policy(domain),
                execute_workers=2,
                execute_backend="subinterpreter",
            )
        with pytest.raises(ValueError, match="execute backend"):
            create_execute_backend("greenlet", 4)


class TestThreadVsProcessDeterminism:
    def test_every_ticket_answers_on_both_backends(self, thread_run, process_run):
        assert thread_run["statuses"] == ["answered"] * 5
        assert process_run["statuses"] == ["answered"] * 5

    def test_same_seed_draws_identical_noise(self, thread_run, process_run):
        """Identical seed derivations: thread and process produce the same
        vectors bit-for-bit, so switching backends never changes answers."""
        for thread_vec, process_vec in zip(
            thread_run["answers"], process_run["answers"]
        ):
            np.testing.assert_array_equal(thread_vec, process_vec)

    def test_epsilon_ledgers_are_byte_identical(self, thread_run, process_run):
        assert thread_run["ledger"] == process_run["ledger"]
        assert len(thread_run["ledger"]) == 5

    def test_backend_costs_are_observable(self, thread_run, process_run):
        thread_stats, process_stats = thread_run["stats"], process_run["stats"]
        assert thread_stats.execute_backend == "thread"
        assert process_stats.execute_backend == "process"
        # 3 unsharded units + 2 per-shard units of the sharded batch.
        assert thread_stats.worker_dispatches == 5
        assert process_stats.worker_dispatches == 5
        assert thread_stats.serialization_seconds == 0.0
        assert process_stats.serialization_seconds > 0.0

    def test_sharded_batches_took_the_scatter_path(self, process_run):
        assert process_run["stats"].sharded_batches == 1


class TestLifecycle:
    def test_closed_engine_serves_inline_and_keeps_telemetry(
        self, thread_run, process_run
    ):
        # Module fixtures already closed these engines via the context
        # manager; they must keep answering on the flushing thread, while
        # stats keep reporting the backend's lifetime telemetry (not zeros).
        for run, backend_name in ((thread_run, "thread"), (process_run, "process")):
            engine = run["engine"]
            answers = engine.ask(
                "alice", identity_workload(engine.database.domain), epsilon=0.25
            )
            assert answers.shape == (DOMAIN_SIZE,)
            stats = engine.stats
            assert stats.execute_backend == backend_name
            assert stats.worker_dispatches == run["stats"].worker_dispatches

    def test_broken_worker_pool_rolls_the_batch_back(self, domain, database):
        """A crashed pool is a batch failure (rollback + clear error), not a
        silent fall-back to inline execution."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.exceptions import PrivacyBudgetError

        engine = PrivateQueryEngine(
            database,
            total_epsilon=50.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=1,
            execute_workers=2,
            execute_backend="thread",
        )
        with engine:
            session = engine.open_session("carol", 20.0)

            def broken_submit(unit):
                raise BrokenProcessPool("worker died")

            engine._execute_backend.submit = broken_submit
            # Two epsilon groups: multi-unit flushes go through the backend
            # (a lone unit would short-circuit to inline execution).
            first = engine.submit("carol", identity_workload(domain), epsilon=0.5)
            second = engine.submit(
                "carol", cumulative_workload(domain), epsilon=0.25
            )
            engine.flush()
            assert first.status == second.status == "refused"
            with pytest.raises(PrivacyBudgetError, match="worker pool broke"):
                first.result()
            assert session.spent() == 0.0  # charges rolled back

    def test_single_unit_flush_runs_inline(self, domain, database):
        """A lone work unit skips the dispatch (no pool win to buy)."""
        engine = PrivateQueryEngine(
            database,
            total_epsilon=50.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=1,
            execute_workers=2,
            execute_backend="thread",
        )
        with engine:
            engine.open_session("dave", 20.0)
            answers = engine.ask("dave", identity_workload(domain), epsilon=0.5)
            assert answers.shape == (DOMAIN_SIZE,)
            assert engine.stats.worker_dispatches == 0
            # A two-group flush does use the pool.
            engine.submit("dave", identity_workload(domain), epsilon=0.5)
            engine.submit("dave", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            assert engine.stats.worker_dispatches == 2

    def test_close_clears_the_blob_memos(self, domain, database):
        """The db memo pins Database objects (and their histograms); both
        memos must empty on close instead of outliving the backend."""
        backend = ProcessExecuteBackend(max_workers=1, preload=(database,))
        cache = PlanCache()
        plan = cache.plan_for(
            line_policy(domain), 0.5, prefer_data_dependent=False, consistency=False
        )
        unit = ExecuteUnit(
            plan=plan,
            workloads=[identity_workload(domain)],
            database=database,
            rng=np.random.default_rng(0),
        )
        backend.submit(unit).result()
        assert backend._plan_blobs and backend._db_blobs
        backend.close()
        assert not backend._plan_blobs
        assert not backend._db_blobs
        assert not backend._shipped_digests
        with pytest.raises(RuntimeError):
            backend.submit(unit)

    def test_worker_plan_memo_keeps_dispatching(self, domain, database):
        """Repeat flushes reuse worker-side plans (dispatch count grows,
        answers stay deterministic against a single-flush reference)."""
        def run_twice():
            engine = PrivateQueryEngine(
                database,
                total_epsilon=50.0,
                default_policy=line_policy(domain),
                prefer_data_dependent=False,
                consistency=False,
                enable_answer_cache=False,
                random_state=7,
                execute_workers=2,
                execute_backend="process",
            )
            with engine:
                engine.open_session("bob", 20.0)
                first = engine.submit("bob", identity_workload(domain), epsilon=0.5)
                second = engine.submit(
                    "bob", cumulative_workload(domain), epsilon=0.25
                )
                engine.flush()
                third = engine.submit("bob", identity_workload(domain), epsilon=0.5)
                fourth = engine.submit(
                    "bob", cumulative_workload(domain), epsilon=0.25
                )
                engine.flush()
                stats = engine.stats
            return [t.answers for t in (first, second, third, fourth)], stats

        answers, stats = run_twice()
        assert stats.worker_dispatches == 4
        reference, _ = run_twice()
        for vector, expected in zip(answers, reference):
            np.testing.assert_array_equal(vector, expected)


class TestMissOnlyBlobProtocol:
    """Steady-state dispatches ship digests, misses recover bit-identically."""

    @pytest.fixture()
    def plan(self, domain):
        cache = PlanCache()
        return cache.plan_for(
            line_policy(domain), 0.5, prefer_data_dependent=False, consistency=False
        )

    def make_unit(self, plan, domain, database, seed):
        """A unit plus an identically-seeded inline reference generator."""
        rng = np.random.default_rng(seed)
        reference_rng = pickle.loads(pickle.dumps(rng))
        unit = ExecuteUnit(
            plan=plan,
            workloads=[identity_workload(domain)],
            database=database,
            rng=rng,
        )
        return unit, reference_rng

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="blob protocol"):
            ProcessExecuteBackend(max_workers=1, blob_protocol="compressed")

    def test_steady_state_ships_only_the_payload(self, domain, database, plan):
        backend = ProcessExecuteBackend(max_workers=1, preload=(database,))
        try:
            unit, _ = self.make_unit(plan, domain, database, 1)
            backend.submit(unit).result()
            first = backend.bytes_shipped
            unit, _ = self.make_unit(plan, domain, database, 2)
            backend.submit(unit).result()
            steady = backend.bytes_shipped - first
            # The pool was created lazily at the first dispatch, so plan and
            # database were preloaded via the initializer: NO dispatch ever
            # carried their blobs, and the steady-state payload is orders of
            # magnitude below the plan pickle it no longer ships.
            plan_blob_bytes = len(pickle.dumps(plan))
            assert backend.blob_cache_misses == 0
            assert backend.preload_bytes > 0
            assert steady < plan_blob_bytes / 2
            assert abs(first - steady) < 1024  # first dispatch equally lean
        finally:
            backend.close()

    def test_always_protocol_reships_blobs_every_dispatch(
        self, domain, database, plan
    ):
        backend = ProcessExecuteBackend(
            max_workers=1, preload=(database,), blob_protocol="always"
        )
        try:
            unit, _ = self.make_unit(plan, domain, database, 1)
            backend.submit(unit).result()
            first = backend.bytes_shipped
            unit, _ = self.make_unit(plan, domain, database, 2)
            backend.submit(unit).result()
            steady = backend.bytes_shipped - first
            assert steady > len(pickle.dumps(plan))  # blobs cross every time
        finally:
            backend.close()

    def test_respawned_worker_recovers_through_the_miss_path(
        self, domain, database, plan
    ):
        """A plan shipped after pool creation is lost on respawn; the next
        digest-only dispatch must miss, resubmit with blobs, and draw
        exactly the noise the first attempt would have drawn."""
        backend = ProcessExecuteBackend(max_workers=1, preload=(database,))
        try:
            warm_unit, _ = self.make_unit(plan, domain, database, 1)
            backend.submit(warm_unit).result()  # creates the pool
            # Planned after pool creation → not in the initializer preload.
            late_plan = PlanCache().plan_for(
                line_policy(domain),
                0.25,
                prefer_data_dependent=False,
                consistency=False,
            )
            unit, _ = self.make_unit(late_plan, domain, database, 2)
            backend.submit(unit).result()  # eagerly ships the blob once
            assert backend.blob_cache_misses == 0

            assert backend.reset_resident_caches() == 1
            unit, reference_rng = self.make_unit(late_plan, domain, database, 3)
            vectors, _ = backend.submit(unit).result()
            reference, _ = run_unit(
                late_plan, unit.workloads, database, reference_rng
            )
            np.testing.assert_array_equal(vectors[0], reference[0])
            assert backend.blob_cache_misses == 1  # database was re-preloaded
            assert backend.resubmits == 1
        finally:
            backend.close()

    def test_preloaded_database_survives_the_respawn(self, domain, database, plan):
        """The initializer re-runs on respawn, so preloaded digests (the
        engine database, pool-creation-time plans) can never miss."""
        backend = ProcessExecuteBackend(max_workers=1, preload=(database,))
        try:
            unit, _ = self.make_unit(plan, domain, database, 1)
            backend.submit(unit).result()
            backend.reset_resident_caches()
            unit, reference_rng = self.make_unit(plan, domain, database, 2)
            vectors, _ = backend.submit(unit).result()
            reference, _ = run_unit(plan, unit.workloads, database, reference_rng)
            np.testing.assert_array_equal(vectors[0], reference[0])
            assert backend.blob_cache_misses == 0
            assert backend.resubmits == 0
        finally:
            backend.close()

    def test_engine_stats_surface_the_protocol_counters(self, domain, database):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=50.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=5,
            execute_workers=2,
            execute_backend="process",
        )
        with engine:
            engine.open_session("frank", 20.0)
            engine.submit("frank", identity_workload(domain), epsilon=0.5)
            engine.submit("frank", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            live = engine.stats
            assert live.bytes_shipped > 0
            assert live.blob_cache_misses >= 0
        closed = engine.stats  # lifetime telemetry survives close()
        assert closed.bytes_shipped == live.bytes_shipped
        assert closed.blob_cache_misses == live.blob_cache_misses

    def test_result_is_idempotent_after_a_miss_recovery(
        self, domain, database, plan
    ):
        """The future-like handle must serve the recovered value on a second
        result() call instead of re-running the whole recovery."""
        backend = ProcessExecuteBackend(max_workers=1, preload=(database,))
        try:
            warm_unit, _ = self.make_unit(plan, domain, database, 1)
            backend.submit(warm_unit).result()
            late_plan = PlanCache().plan_for(
                line_policy(domain),
                0.125,
                prefer_data_dependent=False,
                consistency=False,
            )
            unit, _ = self.make_unit(late_plan, domain, database, 2)
            backend.submit(unit).result()
            backend.reset_resident_caches()
            unit, _ = self.make_unit(late_plan, domain, database, 3)
            handle = backend.submit(unit)
            first = handle.result()
            resubmits = backend.resubmits
            misses = backend.blob_cache_misses
            second = handle.result()
            assert second is first
            assert backend.resubmits == resubmits
            assert backend.blob_cache_misses == misses
        finally:
            backend.close()
