"""Process-parallel execute backend: determinism, ledgers, stats, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.core.workload import Workload
from repro.engine import PrivateQueryEngine
from repro.engine.parallel import create_execute_backend
from repro.policy import PolicyGraph, line_policy

DOMAIN_SIZE = 32
HALF = DOMAIN_SIZE // 2


@pytest.fixture(scope="module")
def domain() -> Domain:
    return Domain((DOMAIN_SIZE,))


@pytest.fixture(scope="module")
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(DOMAIN_SIZE, dtype=float), name="ramp")


@pytest.fixture(scope="module")
def split_policy(domain: Domain) -> PolicyGraph:
    return PolicyGraph(
        domain,
        edges=[(i, i + 1) for i in range(HALF - 1)]
        + [(i, i + 1) for i in range(HALF, DOMAIN_SIZE - 1)],
        name="two-segments",
    )


def left_workload(domain: Domain) -> Workload:
    return Workload(
        domain, np.hstack([np.eye(HALF), np.zeros((HALF, HALF))]), name="left"
    )


def serve_stream(domain, database, split_policy, backend: str):
    """One fixed submission mix through the given backend; returns evidence.

    Three ε groups on the connected line policy (three unsharded batches)
    plus a sharded batch on the two-component policy — enough unit diversity
    to exercise per-batch and per-shard child streams.
    """
    engine = PrivateQueryEngine(
        database,
        total_epsilon=100.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=42,
        execute_workers=2,
        execute_backend=backend,
    )
    with engine:
        session = engine.open_session("alice", 50.0)
        tickets = [
            engine.submit("alice", identity_workload(domain), epsilon=0.5),
            engine.submit("alice", cumulative_workload(domain), epsilon=0.25),
            engine.submit("alice", total_workload(domain), epsilon=0.125),
            engine.submit(
                "alice", left_workload(domain), epsilon=0.4, policy=split_policy
            ),
            engine.submit(
                "alice", identity_workload(domain), epsilon=0.4, policy=split_policy
            ),
        ]
        engine.flush()
        stats = engine.stats
        ledger = [
            (op.label, op.epsilon, op.partition)
            for op in session.accountant.operations
        ]
    return {
        "statuses": [t.status for t in tickets],
        "answers": [t.answers for t in tickets],
        "ledger": ledger,
        "stats": stats,
        "engine": engine,
    }


@pytest.fixture(scope="module")
def thread_run(domain, database, split_policy):
    return serve_stream(domain, database, split_policy, "thread")


@pytest.fixture(scope="module")
def process_run(domain, database, split_policy):
    return serve_stream(domain, database, split_policy, "process")


class TestBackendSelection:
    def test_default_engine_reports_inline_backend(self, domain, database):
        engine = PrivateQueryEngine(
            database, total_epsilon=10.0, default_policy=line_policy(domain)
        )
        stats = engine.stats
        assert stats.execute_backend == "inline"
        assert stats.worker_dispatches == 0
        assert stats.serialization_seconds == 0.0

    def test_single_worker_stays_inline(self, domain, database):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            execute_workers=1,
            execute_backend="process",
        )
        assert engine._execute_backend is None
        assert engine.stats.execute_backend == "inline"

    def test_unknown_backend_is_rejected(self, domain, database):
        with pytest.raises(ValueError, match="execute backend"):
            PrivateQueryEngine(
                database,
                total_epsilon=10.0,
                default_policy=line_policy(domain),
                execute_workers=2,
                execute_backend="subinterpreter",
            )
        with pytest.raises(ValueError, match="execute backend"):
            create_execute_backend("greenlet", 4)


class TestThreadVsProcessDeterminism:
    def test_every_ticket_answers_on_both_backends(self, thread_run, process_run):
        assert thread_run["statuses"] == ["answered"] * 5
        assert process_run["statuses"] == ["answered"] * 5

    def test_same_seed_draws_identical_noise(self, thread_run, process_run):
        """Identical seed derivations: thread and process produce the same
        vectors bit-for-bit, so switching backends never changes answers."""
        for thread_vec, process_vec in zip(
            thread_run["answers"], process_run["answers"]
        ):
            np.testing.assert_array_equal(thread_vec, process_vec)

    def test_epsilon_ledgers_are_byte_identical(self, thread_run, process_run):
        assert thread_run["ledger"] == process_run["ledger"]
        assert len(thread_run["ledger"]) == 5

    def test_backend_costs_are_observable(self, thread_run, process_run):
        thread_stats, process_stats = thread_run["stats"], process_run["stats"]
        assert thread_stats.execute_backend == "thread"
        assert process_stats.execute_backend == "process"
        # 3 unsharded units + 2 per-shard units of the sharded batch.
        assert thread_stats.worker_dispatches == 5
        assert process_stats.worker_dispatches == 5
        assert thread_stats.serialization_seconds == 0.0
        assert process_stats.serialization_seconds > 0.0

    def test_sharded_batches_took_the_scatter_path(self, process_run):
        assert process_run["stats"].sharded_batches == 1


class TestLifecycle:
    def test_closed_engine_serves_inline_and_keeps_telemetry(
        self, thread_run, process_run
    ):
        # Module fixtures already closed these engines via the context
        # manager; they must keep answering on the flushing thread, while
        # stats keep reporting the backend's lifetime telemetry (not zeros).
        for run, backend_name in ((thread_run, "thread"), (process_run, "process")):
            engine = run["engine"]
            answers = engine.ask(
                "alice", identity_workload(engine.database.domain), epsilon=0.25
            )
            assert answers.shape == (DOMAIN_SIZE,)
            stats = engine.stats
            assert stats.execute_backend == backend_name
            assert stats.worker_dispatches == run["stats"].worker_dispatches

    def test_broken_worker_pool_rolls_the_batch_back(self, domain, database):
        """A crashed pool is a batch failure (rollback + clear error), not a
        silent fall-back to inline execution."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.exceptions import PrivacyBudgetError

        engine = PrivateQueryEngine(
            database,
            total_epsilon=50.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=1,
            execute_workers=2,
            execute_backend="thread",
        )
        with engine:
            session = engine.open_session("carol", 20.0)

            def broken_submit(unit):
                raise BrokenProcessPool("worker died")

            engine._execute_backend.submit = broken_submit
            # Two epsilon groups: multi-unit flushes go through the backend
            # (a lone unit would short-circuit to inline execution).
            first = engine.submit("carol", identity_workload(domain), epsilon=0.5)
            second = engine.submit(
                "carol", cumulative_workload(domain), epsilon=0.25
            )
            engine.flush()
            assert first.status == second.status == "refused"
            with pytest.raises(PrivacyBudgetError, match="worker pool broke"):
                first.result()
            assert session.spent() == 0.0  # charges rolled back

    def test_single_unit_flush_runs_inline(self, domain, database):
        """A lone work unit skips the dispatch (no pool win to buy)."""
        engine = PrivateQueryEngine(
            database,
            total_epsilon=50.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=1,
            execute_workers=2,
            execute_backend="thread",
        )
        with engine:
            engine.open_session("dave", 20.0)
            answers = engine.ask("dave", identity_workload(domain), epsilon=0.5)
            assert answers.shape == (DOMAIN_SIZE,)
            assert engine.stats.worker_dispatches == 0
            # A two-group flush does use the pool.
            engine.submit("dave", identity_workload(domain), epsilon=0.5)
            engine.submit("dave", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            assert engine.stats.worker_dispatches == 2

    def test_worker_plan_memo_keeps_dispatching(self, domain, database):
        """Repeat flushes reuse worker-side plans (dispatch count grows,
        answers stay deterministic against a single-flush reference)."""
        def run_twice():
            engine = PrivateQueryEngine(
                database,
                total_epsilon=50.0,
                default_policy=line_policy(domain),
                prefer_data_dependent=False,
                consistency=False,
                enable_answer_cache=False,
                random_state=7,
                execute_workers=2,
                execute_backend="process",
            )
            with engine:
                engine.open_session("bob", 20.0)
                first = engine.submit("bob", identity_workload(domain), epsilon=0.5)
                second = engine.submit(
                    "bob", cumulative_workload(domain), epsilon=0.25
                )
                engine.flush()
                third = engine.submit("bob", identity_workload(domain), epsilon=0.5)
                fourth = engine.submit(
                    "bob", cumulative_workload(domain), epsilon=0.25
                )
                engine.flush()
                stats = engine.stats
            return [t.answers for t in (first, second, third, fourth)], stats

        answers, stats = run_twice()
        assert stats.worker_dispatches == 4
        reference, _ = run_twice()
        for vector, expected in zip(answers, reference):
            np.testing.assert_array_equal(vector, expected)
