"""Serving chaos harness: faults on the live HTTP path.

Extends the durability tier's fault matrix (crash points, disk-full,
worker kill) to the serving tier: a stalled flusher, a failing flush, a
ledger that hits ENOSPC mid-serving, a worker SIGKILLed under live
traffic.  The claims under test are the robustness tentpole's:

* **shed, don't crash** — every fault degrades into refusals/sheds/5xx
  responses while the server keeps answering; no fault kills the process
  or strands a ticket.
* **fail closed on ε** — a fault that stops an answer also stops (or
  rolls back) its charge; admitted work that *does* answer produces
  draws byte-identical to an unfaulted run, because faults never consume
  RNG stream.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.core import Database, Domain
from repro.engine import (
    SERVING_FAULT_POINTS,
    FaultInjector,
    PrivateQueryEngine,
    recover_accountant,
)
from repro.engine.serving import AdmissionController, create_app
from repro.engine.serving.http import Request
from repro.policy import line_policy


@pytest.fixture(autouse=True)
def clear_faults():
    FaultInjector.clear()
    yield
    FaultInjector.clear()


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[1, 6, 12]] = [9.0, 2.0, 5.0]
    return Database(domain, counts, name="chaos16")


def build_engine(database: Database, domain: Domain, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=31,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


def request(method, path, body=None, query=None):
    payload = json.dumps(body).encode() if body is not None else b""
    return Request(method, path, query or {}, {}, payload, True)


SUBMIT = {
    "client_id": "alice",
    "workload": {"kind": "identity"},
    "epsilon": 0.1,
}


def test_serving_fault_points_registered():
    assert SERVING_FAULT_POINTS == ("serving-flush",)


class TestFlusherFaults:
    def test_failing_flush_leaves_tickets_pending_then_recovers(
        self, database, domain
    ):
        """A flush that dies before running charges nothing and strands nothing."""
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        app = create_app(engine, max_batch_size=1000, max_delay=60.0)
        session = engine.session("alice")

        async def scenario():
            submitted = await app.dispatch(request("POST", "/api/queries", SUBMIT))
            assert submitted.status == 202
            FaultInjector().fail_at(
                "serving-flush", lambda: RuntimeError("injected flusher death")
            ).install()
            broken = await app.dispatch(request("POST", "/api/flush"))
            # The fault fires before engine.flush(): the flush request
            # errors (500), the ticket stays pending, nothing was charged.
            assert broken.status == 500
            assert session.spent() == 0.0
            ticket_id = json.loads(submitted.body)["ticket_id"]
            poll = await app.dispatch(request("GET", f"/api/queries/{ticket_id}"))
            assert json.loads(poll.body)["status"] == "pending"
            FaultInjector.clear()
            fixed = await app.dispatch(request("POST", "/api/flush"))
            assert fixed.status == 200
            poll = await app.dispatch(request("GET", f"/api/queries/{ticket_id}"))
            assert json.loads(poll.body)["status"] == "answered"
            await app.aclose()

        asyncio.run(scenario())
        assert session.spent() == pytest.approx(0.1)
        engine.close()

    def test_stalled_flusher_sheds_new_load_and_grows_retry_hint(
        self, database, domain
    ):
        """While the flusher stalls, admission keeps shedding around it."""
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        app = create_app(engine, max_batch_size=1000, max_delay=60.0)
        app.admission = AdmissionController(engine, max_pending=1)
        app.async_engine.add_flush_observer(app.admission.observe_flush_seconds)

        async def scenario():
            submitted = await app.dispatch(request("POST", "/api/queries", SUBMIT))
            assert submitted.status == 202
            FaultInjector().stall_at("serving-flush", 0.3).install()
            flush_task = asyncio.ensure_future(app.async_engine.flush())
            # Let the flusher thread enter the stall; the pending queue is
            # not drained until the stall ends (the fault fires before
            # engine.flush()), so the admission edge still sees it full.
            await asyncio.sleep(0.05)
            shed = await app.dispatch(request("POST", "/api/queries", SUBMIT))
            assert shed.status == 503
            assert json.loads(shed.body)["reason"] == "queue_full"
            await flush_task
            ticket_id = json.loads(submitted.body)["ticket_id"]
            poll = await app.dispatch(request("GET", f"/api/queries/{ticket_id}"))
            assert json.loads(poll.body)["status"] == "answered"
            await app.aclose()

        asyncio.run(scenario())
        # The stall fed the Retry-After EWMA: the hint now reflects it.
        assert app.admission.retry_after() >= 0.3
        engine.close()

    def test_admitted_draws_identical_under_stall_chaos(self, database, domain):
        """Faults must not consume RNG: chaos and calm runs draw identically."""

        def run(with_stall: bool) -> list:
            engine = build_engine(database, domain)
            engine.open_session("alice", 10.0)
            app = create_app(engine, max_batch_size=1000, max_delay=60.0)
            if with_stall:
                FaultInjector().stall_at("serving-flush", 0.05).install()

            async def scenario():
                responses = []
                for _ in range(3):
                    responses.append(
                        await app.dispatch(request("POST", "/api/queries", SUBMIT))
                    )
                await app.async_engine.flush()
                answers = []
                for response in responses:
                    ticket_id = json.loads(response.body)["ticket_id"]
                    poll = await app.dispatch(
                        request("GET", f"/api/queries/{ticket_id}")
                    )
                    payload = json.loads(poll.body)
                    assert payload["status"] == "answered"
                    answers.append(payload["answers"])
                await app.aclose()
                return answers

            answers = asyncio.run(scenario())
            FaultInjector.clear()
            engine.close()
            return answers

        assert run(with_stall=True) == run(with_stall=False)


class TestLedgerFaults:
    def test_disk_full_mid_serving_refuses_fail_closed(
        self, database, domain, tmp_path
    ):
        """ENOSPC on the ledger append turns charges into refusals, not crashes."""
        path = str(tmp_path / "serving-ledger.db")
        engine = build_engine(database, domain, durable_ledger=path)
        engine.open_session("alice", 10.0)
        # Default triggers: the deadline flusher drives wait=true submits.
        app = create_app(engine)
        session = engine.session("alice")

        async def scenario():
            FaultInjector().disk_full_at("ledger-append").install()
            body = dict(SUBMIT, wait=True, timeout=10)
            broken = await app.dispatch(request("POST", "/api/queries", body))
            # The transport worked; the refusal is the payload.
            assert broken.status == 200
            payload = json.loads(broken.body)
            assert payload["status"] == "refused"
            assert "refused query" in payload["error"]
            FaultInjector.clear()
            healthy = await app.dispatch(request("POST", "/api/queries", body))
            assert json.loads(healthy.body)["status"] == "answered"
            await app.aclose()

        asyncio.run(scenario())
        # Fail-closed both in memory and on disk: only the healthy charge.
        assert session.spent() == pytest.approx(0.1)
        engine.close()

    def test_ledger_byte_identical_for_admitted_work_under_shed(
        self, database, domain, tmp_path
    ):
        """Shed traffic must leave the durable ledger untouched.

        Two servers: one loaded past its admission limits (extra submits
        all shed), one given only the admitted workload.  Their ledgers
        must agree byte-for-byte on the charges journalled.
        """

        def run(shed_extra: bool, path: str) -> bytes:
            engine = build_engine(database, domain, durable_ledger=path)
            engine.open_session("alice", 10.0)
            app = create_app(engine, max_batch_size=1000, max_delay=60.0)
            app.admission = AdmissionController(
                engine, client_rate=0.001, client_burst=2.0
            )

            async def scenario():
                admitted = 0
                attempts = 6 if shed_extra else 2
                for _ in range(attempts):
                    response = await app.dispatch(
                        request("POST", "/api/queries", SUBMIT)
                    )
                    if response.status == 202:
                        admitted += 1
                assert admitted == 2
                await app.async_engine.flush()
                await app.aclose()

            asyncio.run(scenario())
            engine.close()
            reader, state = recover_accountant(path)
            operations = [
                (scope.label, op.label, op.epsilon)
                for scope in state.scopes
                for op in scope.accountant.operations
            ]
            operations += [
                (None, op.label, op.epsilon)
                for op in state.accountant.operations
            ]
            reader.close()
            return json.dumps(operations).encode()

        loaded = run(shed_extra=True, path=str(tmp_path / "loaded.db"))
        calm = run(shed_extra=False, path=str(tmp_path / "calm.db"))
        assert loaded == calm


class TestWorkerKill:
    def test_kill_worker_mid_serving_rolls_back_then_recovers(
        self, database, domain
    ):
        """SIGKILLing a worker under live traffic: rollback, respawn, serve."""
        engine = build_engine(
            database,
            domain,
            total_epsilon=100.0,
            execute_workers=2,
            execute_backend="process",
        )
        engine._execute_backend._respawn_backoff = 0.01
        engine.open_session("alice", 50.0)
        app = create_app(engine, max_batch_size=1000, max_delay=60.0,
                         enable_chaos=True)
        session = engine.session("alice")

        async def round_trip(epsilons):
            """Submit two distinct workloads in one flush (spawns the pool —
            a lone unit would run inline) and return their terminal payloads."""
            submitted = []
            for kind, epsilon in zip(("identity", "cumulative"), epsilons):
                body = {
                    "client_id": "alice",
                    "workload": {"kind": kind},
                    "epsilon": epsilon,
                }
                response = await app.dispatch(request("POST", "/api/queries", body))
                assert response.status == 202
                submitted.append(json.loads(response.body)["ticket_id"])
            await app.async_engine.flush()
            payloads = []
            for ticket_id in submitted:
                poll = await app.dispatch(request("GET", f"/api/queries/{ticket_id}"))
                payloads.append(json.loads(poll.body))
            return payloads

        async def scenario():
            warm = await round_trip((1.0, 1.25))
            assert [p["status"] for p in warm] == ["answered", "answered"]
            killed = await app.dispatch(
                request("POST", "/api/chaos", {"action": "kill_worker"})
            )
            assert killed.status == 200
            assert json.loads(killed.body)["pid"] > 0
            await asyncio.sleep(0.3)
            # The round that hits the broken pool rolls back (refused) or
            # answers via respawn/inline — never crashes, never leaks ε.
            broken = await round_trip((1.05, 1.3))
            for payload in broken:
                assert payload["status"] in ("answered", "refused")
                if payload["status"] == "refused":
                    assert "rolled back" in payload["error"]
            fresh = await round_trip((1.1, 1.35))
            assert [p["status"] for p in fresh] == ["answered", "answered"]
            await app.aclose()
            return warm + broken + fresh

        payloads = asyncio.run(scenario())
        # ε accounting held through the kill: spent covers exactly the
        # answered queries (rollbacks refunded the rest).
        answered_epsilon = sum(
            p["epsilon"] for p in payloads if p["status"] == "answered"
        )
        assert session.spent() == pytest.approx(answered_epsilon)
        engine.close()

    def test_kill_worker_without_pool_is_409(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        app = create_app(engine, enable_chaos=True)

        async def scenario():
            response = await app.dispatch(
                request("POST", "/api/chaos", {"action": "kill_worker"})
            )
            await app.aclose()
            return response

        assert asyncio.run(scenario()).status == 409
        engine.close()


class TestChaosEndpoint:
    def test_not_installed_without_flag(self, database, domain):
        engine = build_engine(database, domain)
        app = create_app(engine)

        async def scenario():
            response = await app.dispatch(
                request("POST", "/api/chaos", {"action": "clear"})
            )
            await app.aclose()
            return response

        assert asyncio.run(scenario()).status == 404
        engine.close()

    def test_validation_rejects_unknown_actions_and_points(self, database, domain):
        engine = build_engine(database, domain)
        app = create_app(engine, enable_chaos=True)

        async def scenario():
            bad_action = await app.dispatch(
                request("POST", "/api/chaos", {"action": "explode"})
            )
            bad_point = await app.dispatch(
                request("POST", "/api/chaos", {"action": "stall", "point": "nope",
                                               "seconds": 1})
            )
            bad_hits = await app.dispatch(
                request("POST", "/api/chaos", {"action": "fail",
                                               "point": "serving-flush", "hits": 0})
            )
            bad_seconds = await app.dispatch(
                request("POST", "/api/chaos", {"action": "stall",
                                               "point": "serving-flush",
                                               "seconds": -1})
            )
            await app.aclose()
            return bad_action, bad_point, bad_hits, bad_seconds

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [400, 400, 400, 400]
        engine.close()

    def test_arm_and_clear_over_the_api(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        app = create_app(engine, max_batch_size=1000, max_delay=60.0,
                         enable_chaos=True)

        async def scenario():
            armed = await app.dispatch(
                request("POST", "/api/chaos",
                        {"action": "stall", "point": "serving-flush",
                         "seconds": 0.05})
            )
            assert armed.status == 200
            assert json.loads(armed.body)["status"] == "armed"
            assert FaultInjector.active() is not None
            start = time.monotonic()
            await app.dispatch(request("POST", "/api/queries", SUBMIT))
            await app.async_engine.flush()
            elapsed = time.monotonic() - start
            assert elapsed >= 0.05  # the stall fired
            cleared = await app.dispatch(
                request("POST", "/api/chaos", {"action": "clear"})
            )
            assert json.loads(cleared.body)["status"] == "cleared"
            assert FaultInjector.active() is None
            await app.aclose()

        asyncio.run(scenario())
        engine.close()
