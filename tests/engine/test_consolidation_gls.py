"""Draw-aware GLS consolidation: honest noise models, covariance, write-back."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.core.workload import Workload
from repro.engine import PrivateQueryEngine, stack_measurements
from repro.policy import PolicyGraph, line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((32,))


@pytest.fixture
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(32, dtype=float), name="ramp32")


def make_engine(database, policy, seed=0, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=1000.0,
        default_policy=policy,
        prefer_data_dependent=False,  # Laplace route: exact linear noise model
        consistency=False,
        random_state=seed,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


class TestNoiseMetadata:
    def test_measurements_carry_honest_stds_and_bases(self, database, domain):
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        engine.submit("a", identity_workload(domain), 1.0)
        engine.submit("a", cumulative_workload(domain), 1.0)
        engine.flush()
        entries = list(engine.answer_cache._entries.values())
        assert len(entries) == 2
        draws = set()
        for entry in entries:
            measurement = entry.measurements[0]
            assert measurement.noise_stds is not None
            assert np.all(measurement.noise_stds >= 0)
            assert measurement.noise_bases is not None
            draws.update(measurement.noise_bases.keys())
        # Batch-mates share ONE invocation: one draw id, one factor space.
        assert len(draws) == 1

    def test_batch_mates_share_factor_columns(self, database, domain):
        """Two entries of one invocation index the same factor space."""
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        engine.submit("a", identity_workload(domain), 1.0)
        engine.submit("a", cumulative_workload(domain), 1.0)
        engine.flush()
        bases = [
            next(iter(e.measurements[0].noise_bases.values()))
            for e in engine.answer_cache._entries.values()
        ]
        assert bases[0].shape[1] == bases[1].shape[1]

    def test_dawa_route_declares_no_model(self, database, domain):
        """Data-dependent estimators honestly refuse to state their noise."""
        engine = make_engine(
            database, line_policy(domain), prefer_data_dependent=True
        )
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        (entry,) = engine.answer_cache._entries.values()
        assert entry.measurements[0].noise_stds is None
        assert entry.measurements[0].noise_bases is None

    def test_noiseless_public_query_has_zero_std(self, database, domain):
        """The total is public under the line policy: honest std is 0."""
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        answers = engine.ask("a", total_workload(domain), 1.0)
        assert answers[0] == pytest.approx(float(database.counts.sum()))
        (entry,) = engine.answer_cache._entries.values()
        np.testing.assert_array_equal(entry.measurements[0].noise_stds, [0.0])


class TestCovarianceAssembly:
    def test_shared_draw_produces_cross_blocks(self, database, domain):
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        engine.submit("a", identity_workload(domain), 1.0)
        engine.submit("a", cumulative_workload(domain), 1.0)
        engine.flush()
        entries = list(engine.answer_cache._entries.values())
        stack = [(e.workload, e.measurements[0]) for e in entries]
        _, _, covariance = stack_measurements(stack)
        rows = entries[0].workload.num_queries
        cross = covariance[:rows, rows:]
        assert abs(cross).max() > 0  # the shared draw correlates the entries

    def test_distinct_draws_produce_block_diagonal(self, database, domain):
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)   # flush 1
        engine.ask("a", cumulative_workload(domain), 1.0)  # flush 2
        entries = list(engine.answer_cache._entries.values())
        stack = [(e.workload, e.measurements[0]) for e in entries]
        _, _, covariance = stack_measurements(stack)
        rows = entries[0].workload.num_queries
        assert abs(covariance[:rows, rows:]).max() == 0.0

    def test_proxy_variances_for_untagged_measurements(self, database, domain):
        engine = make_engine(
            database, line_policy(domain), prefer_data_dependent=True
        )
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 0.5)
        (entry,) = engine.answer_cache._entries.values()
        _, _, covariance = stack_measurements(
            [(entry.workload, entry.measurements[0])]
        )
        np.testing.assert_allclose(
            covariance.diagonal(), np.full(32, 2.0 / 0.5**2)
        )


class TestGlsConsolidation:
    def test_gls_equals_wls_bit_identically_on_distinct_draws(
        self, database, domain
    ):
        """No metadata + distinct draw ids: GLS must degenerate exactly.

        The DAWA route declares no noise model, so every measurement gets
        the 2/eps^2 proxy diagonal; with each entry bought in its own flush
        there is no shared draw either, and the assembled covariance is
        exactly the diagonal the WLS baseline uses.
        """
        answers = {}
        for method in ("gls", "wls"):
            engine = make_engine(
                database, line_policy(domain), seed=7, prefer_data_dependent=True
            )
            engine.open_session("a", 100.0)
            engine.ask("a", identity_workload(domain), 1.0)
            engine.ask("a", cumulative_workload(domain), 0.5)
            engine.ask("a", total_workload(domain), 2.0)
            assert engine.consolidate(method=method) == 3
            answers[method] = {
                key: entry.answers.copy()
                for key, entry in engine.answer_cache._entries.items()
            }
        assert answers["gls"].keys() == answers["wls"].keys()
        for key in answers["gls"]:
            np.testing.assert_array_equal(answers["gls"][key], answers["wls"][key])

    def test_gls_beats_wls_on_correlated_batches(self, database, domain):
        """Seeded correlated-batch scenario: GLS mean MSE <= WLS mean MSE.

        One flush buys identity + cumulative in a single invocation (shared
        noise draw); a second flush buys a sharper independent identity
        measurement.  WLS counts the correlated pair as independent evidence
        and over-weights it; the draw-aware GLS does not.
        """
        counts = database.counts

        def consolidated_error(seed, method):
            engine = make_engine(database, line_policy(domain), seed=seed)
            engine.open_session("a", 500.0)
            engine.submit("a", identity_workload(domain), 0.3)
            engine.submit("a", cumulative_workload(domain), 0.3)
            engine.flush()
            engine.ask("a", identity_workload(domain), 1.0)
            assert engine.consolidate(method=method) == 3
            error = 0.0
            for entry in engine.answer_cache._entries.values():
                truth = entry.workload.matrix @ counts
                error += float(np.mean((entry.answers - truth) ** 2))
            return error

        seeds = range(25)
        gls = np.mean([consolidated_error(s, "gls") for s in seeds])
        wls = np.mean([consolidated_error(s, "wls") for s in seeds])
        assert gls <= wls

    def test_consolidation_charges_zero_epsilon(self, database, domain):
        engine = make_engine(database, line_policy(domain))
        session = engine.open_session("a", 100.0)
        engine.submit("a", identity_workload(domain), 1.0)
        engine.submit("a", cumulative_workload(domain), 1.0)
        engine.flush()
        spent = session.spent()
        global_spent = engine.accountant.spent()
        assert engine.consolidate() == 2
        assert session.spent() == spent
        assert engine.accountant.spent() == global_spent
        # Replays of consolidated answers stay free too.
        engine.ask("a", identity_workload(domain), 1.0)
        assert session.spent() == spent

    def test_consolidated_answers_are_mutually_consistent(self, database, domain):
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        engine.submit("a", identity_workload(domain), 1.0)
        engine.submit("a", cumulative_workload(domain), 1.0)
        engine.flush()
        engine.consolidate()
        histogram = engine.ask("a", identity_workload(domain), 1.0)
        prefix = engine.ask("a", cumulative_workload(domain), 1.0)
        np.testing.assert_allclose(np.cumsum(histogram), prefix, rtol=1e-6)

    def test_unknown_method_rejected(self, database, domain):
        engine = make_engine(database, line_policy(domain))
        with pytest.raises(ValueError, match="method"):
            engine.answer_cache.consolidate(line_policy(domain), method="ols")


class TestShardDrawCorrelation:
    @pytest.fixture
    def split_policy(self, domain) -> PolicyGraph:
        return PolicyGraph(
            domain,
            edges=[(i, i + 1) for i in range(15)]
            + [(i, i + 1) for i in range(16, 31)],
            name="two-segments",
        )

    @staticmethod
    def spanning_workload(domain, shift: int) -> Workload:
        """Rows confined per component but touching BOTH components."""
        matrix = np.zeros((4, 32))
        for row in range(2):
            matrix[row, shift + row] = 1.0            # left component
            matrix[row + 2, 16 + shift + row] = 1.0   # right component
        return Workload(domain, matrix, name=f"span{shift}")

    def test_shard_draw_ids_key_the_factor_bases(
        self, database, domain, split_policy
    ):
        engine = make_engine(database, split_policy)
        engine.open_session("a", 100.0)
        w1, w2 = self.spanning_workload(domain, 0), self.spanning_workload(domain, 4)
        engine.submit("a", w1, 1.0)
        engine.submit("a", w2, 1.0)
        engine.flush()
        assert engine.stats.sharded_batches == 1
        entries = list(engine.answer_cache._entries.values())
        assert len(entries) == 2
        for entry in entries:
            measurement = entry.measurements[0]
            assert measurement.shard_draw_ids is not None
            assert len(measurement.shard_draw_ids) == 2
            # Factor bases are keyed by exactly the per-shard draw ids.
            assert set(measurement.noise_bases.keys()) == set(
                measurement.shard_draw_ids.values()
            )
        # Both tickets touched the same two shard invocations.
        first, second = (e.measurements[0] for e in entries)
        assert set(first.shard_draw_ids.values()) == set(
            second.shard_draw_ids.values()
        )

    def test_shared_shard_invocations_cross_correlate(
        self, database, domain, split_policy
    ):
        engine = make_engine(database, split_policy)
        engine.open_session("a", 100.0)
        # Overlapping cells (1 is in both workloads), so the shared shard
        # invocations correlate the entries through common transformed
        # coordinates — disjoint cell ranges would honestly cross out to 0.
        w1, w2 = self.spanning_workload(domain, 0), self.spanning_workload(domain, 1)
        engine.submit("a", w1, 1.0)
        engine.submit("a", w2, 1.0)
        engine.flush()
        entries = list(engine.answer_cache._entries.values())
        stack = [(e.workload, e.measurements[0]) for e in entries]
        _, _, covariance = stack_measurements(stack)
        rows = entries[0].workload.num_queries
        assert abs(covariance[:rows, rows:]).max() > 0
        # ...and consolidation over the sharded measurements still solves.
        assert engine.consolidate() == 2

    def test_grouping_includes_shard_draws(self, database, domain, split_policy):
        engine = make_engine(database, split_policy)
        engine.open_session("a", 100.0)
        engine.submit("a", self.spanning_workload(domain, 0), 1.0)
        engine.submit("a", self.spanning_workload(domain, 4), 1.0)
        engine.flush()
        grouped = engine.answer_cache.entries_by_draw(split_policy)
        assert len(grouped) == 2  # one group per shard invocation
        for keys in grouped.values():
            assert len(keys) == 2  # both entries mix both shard draws


class TestWriteBackRace:
    def test_superseded_entry_is_skipped_and_not_counted(self, database, domain):
        """A store() racing consolidate must not leave a blended ghost.

        The matrix stack happens outside the lock; if the same key is
        re-paid meanwhile, the superseded object must not be mutated or
        counted, and the live entry must stay unconsolidated (its fresh
        measurement was not part of the solve).
        """
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        engine.ask("a", cumulative_workload(domain), 1.0)
        cache = engine.answer_cache
        policy = line_policy(domain)

        import repro.engine.answer_cache as answer_cache_module

        original_stack = answer_cache_module.stack_measurements
        raced = {}

        def racing_stack(stack):
            if not raced:
                raced["entry"] = cache.store(
                    policy,
                    identity_workload(domain),
                    1.0,
                    np.zeros(32),
                    draw_id=999,
                )
            return original_stack(stack)

        answer_cache_module.stack_measurements, cleanup = racing_stack, None
        try:
            updated = cache.consolidate(policy)
        finally:
            answer_cache_module.stack_measurements = original_stack
        # Only the cumulative entry was still live for write-back.
        assert updated == 1
        live = cache.peek(policy, identity_workload(domain), 1.0)
        assert live is raced["entry"]
        assert not live.consolidated
        np.testing.assert_array_equal(live.answers, np.zeros(32))

    def test_eviction_mid_solve_is_not_counted(self, database, domain):
        engine = make_engine(database, line_policy(domain), answer_cache_size=3)
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        engine.ask("a", cumulative_workload(domain), 1.0)
        cache = engine.answer_cache
        policy = line_policy(domain)

        import repro.engine.answer_cache as answer_cache_module

        original_stack = answer_cache_module.stack_measurements
        evicted = {}

        def evicting_stack(stack):
            if not evicted:
                evicted["done"] = True
                # Two stores into a 3-slot cache evict the oldest entry.
                cache.store(policy, total_workload(domain), 1.0, np.ones(1))
                cache.store(policy, total_workload(domain), 2.0, np.ones(1))
            return original_stack(stack)

        answer_cache_module.stack_measurements = evicting_stack
        try:
            updated = cache.consolidate(policy)
        finally:
            answer_cache_module.stack_measurements = original_stack
        assert updated == 1  # the evicted identity entry must not count


class TestReviewHardening:
    """Regression coverage for the review findings on the GLS upgrade."""

    def test_proxy_variance_matches_honest_scale(self, database, domain):
        """The no-metadata proxy is 2/eps^2 — the honest Laplace variance
        scale — so mixed honest/proxy stacks are not mis-weighted 2x."""
        engine = make_engine(
            database, line_policy(domain), prefer_data_dependent=True
        )
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 0.5)
        (entry,) = engine.answer_cache._entries.values()
        np.testing.assert_allclose(
            entry.measurements[0].variances(), np.full(32, 2.0 / 0.5**2)
        )

    def test_concurrent_top_up_wins_over_stale_consolidate(
        self, database, domain
    ):
        """A top-up racing consolidate must not have its paid-for
        measurement overwritten by the stale solve's write-back."""
        engine = make_engine(database, line_policy(domain))
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        engine.ask("a", cumulative_workload(domain), 1.0)
        cache = engine.answer_cache
        policy = line_policy(domain)

        import repro.engine.answer_cache as answer_cache_module

        original_stack = answer_cache_module.stack_measurements
        raced = {}

        def racing_stack(stack):
            if not raced:
                raced["done"] = True
                answer_cache_module.stack_measurements = original_stack
                try:
                    raced["topped"] = engine.top_up(
                        "a", identity_workload(domain), extra_epsilon=0.5
                    )
                finally:
                    answer_cache_module.stack_measurements = racing_stack
            return original_stack(stack)

        answer_cache_module.stack_measurements = racing_stack
        try:
            updated = engine.consolidate()
        finally:
            answer_cache_module.stack_measurements = original_stack
        # The identity entry gained a measurement the solve never saw: it is
        # skipped (keeping the fresher top-up combination), only the
        # cumulative entry is counted.
        assert updated == 1
        live = cache.peek(policy, identity_workload(domain), 1.0)
        assert len(live.measurements) == 2
        assert not live.consolidated
        np.testing.assert_array_equal(live.answers, raced["topped"])

    def test_no_answer_cache_skips_noise_model_computation(
        self, database, domain, monkeypatch
    ):
        """want_noise=False units never touch the mechanisms' noise hooks."""
        from repro.blowfish.algorithms import NamedAlgorithm

        calls = {"count": 0}
        original = NamedAlgorithm.noise_model

        def counting(self, workload):
            calls["count"] += 1
            return original(self, workload)

        monkeypatch.setattr(NamedAlgorithm, "noise_model", counting)
        engine = make_engine(
            database, line_policy(domain), enable_answer_cache=False
        )
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        assert calls["count"] == 0
        # ...while a cache-enabled engine does compute it.
        cached_engine = make_engine(database, line_policy(domain))
        cached_engine.open_session("a", 100.0)
        cached_engine.ask("a", identity_workload(domain), 1.0)
        assert calls["count"] > 0

    def test_consistency_projection_drops_the_factor_basis(
        self, database, domain
    ):
        """A projected (nonlinear) release keeps honest stds but must not
        claim an exact linear factor basis."""
        engine = make_engine(database, line_policy(domain), consistency=True)
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        (entry,) = engine.answer_cache._entries.values()
        measurement = entry.measurements[0]
        assert measurement.noise_stds is not None  # conservative marginals
        assert measurement.noise_bases is None     # correlations unknown
