"""Session-scoped budget accounting: reservations, exhaustion, refunds."""

from __future__ import annotations

import pytest

from repro.accounting import PrivacyAccountant, ScopedAccountant
from repro.exceptions import PrivacyBudgetError


class TestOpenScope:
    def test_reservation_charges_the_parent_up_front(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        parent.open_scope("session:a", 0.75)
        assert parent.spent() == pytest.approx(0.75)

    def test_scope_tracks_its_own_spend(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 1.0)
        scope.charge("q1", 0.25)
        scope.charge("q2", 0.25)
        assert scope.spent() == pytest.approx(0.5)
        assert scope.remaining() == pytest.approx(0.5)
        # The parent saw only the reservation, not the individual queries.
        assert parent.spent() == pytest.approx(1.0)

    def test_overdrawn_reservation_is_refused(self):
        parent = PrivacyAccountant(total_epsilon=1.0)
        parent.open_scope("session:a", 0.8)
        with pytest.raises(PrivacyBudgetError):
            parent.open_scope("session:b", 0.5)

    def test_exhausted_scope_refuses_with_clear_error(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 0.5)
        scope.charge("q1", 0.4)
        with pytest.raises(PrivacyBudgetError):
            scope.charge("q2", 0.2)
        # The failed charge left no trace.
        assert scope.spent() == pytest.approx(0.4)

    def test_can_charge_predicts_charge(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 0.5)
        assert scope.can_charge(0.5)
        assert not scope.can_charge(0.6)
        assert not scope.can_charge(-1.0)

    def test_parallel_composition_inside_a_scope(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 0.5)
        scope.charge("left", 0.3, partition=["g0"])
        scope.charge("right", 0.3, partition=["g1"])
        # Disjoint partitions compose in parallel: max, not sum.
        assert scope.spent() == pytest.approx(0.3)


class TestCloseAndRefund:
    def test_close_refunds_unspent_budget(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 1.0)
        scope.charge("q1", 0.25)
        refund = scope.close()
        assert refund == pytest.approx(0.75)
        assert parent.spent() == pytest.approx(0.25)

    def test_close_with_nothing_spent_removes_the_reservation(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 1.0)
        scope.close()
        assert parent.spent() == pytest.approx(0.0)

    def test_closed_scope_refuses_charges(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 1.0)
        scope.close()
        with pytest.raises(PrivacyBudgetError):
            scope.charge("q", 0.1)

    def test_double_close_is_idempotent(self):
        parent = PrivacyAccountant(total_epsilon=2.0)
        scope = parent.open_scope("session:a", 1.0)
        assert scope.close() == pytest.approx(1.0)
        assert scope.close() == 0.0
        assert parent.spent() == pytest.approx(0.0)

    def test_refund_frees_room_for_new_scopes(self):
        parent = PrivacyAccountant(total_epsilon=1.0)
        scope = parent.open_scope("session:a", 0.9)
        scope.close()
        second = parent.open_scope("session:b", 0.9)
        assert isinstance(second, ScopedAccountant)
