"""The staged flush pipeline: lock narrowing, concurrency, rollback, draw ids."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.core.workload import Workload
from repro.engine import PrivateQueryEngine
from repro.exceptions import PrivacyBudgetError
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[1, 5, 6, 12]] = [3, 7, 1, 9]
    return Database(domain, counts, name="sparse16")


def make_engine(database, domain, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


class TestStageTimings:
    def test_stage_timings_accumulate_per_flush(self, database, domain):
        engine = make_engine(database, domain)
        engine.open_session("alice", 5.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        stats = engine.stats
        assert stats.flushes == 1
        for stage, seconds in stats.stage_seconds.items():
            assert seconds >= 0.0, stage
        # Planning and execution did real work on the first (cold) flush.
        assert stats.plan_seconds > 0.0
        assert stats.execute_seconds > 0.0
        before = engine.stats.execute_seconds
        engine.ask("alice", cumulative_workload(domain), epsilon=0.5)
        assert engine.stats.execute_seconds > before
        assert engine.stats.flushes == 2

    def test_empty_flush_records_no_round(self, database, domain):
        engine = make_engine(database, domain)
        assert engine.flush() == []
        assert engine.stats.flushes == 0


class TestConcurrentFlushes:
    def test_concurrent_submit_flush_conserves_tickets_and_budget(
        self, database, domain
    ):
        engine = make_engine(database, domain)
        num_threads, per_thread = 4, 6
        for index in range(num_threads):
            engine.open_session(f"client{index}", 1.0)
        errors: list = []

        def hammer(index: int) -> None:
            workloads = [
                identity_workload(domain),
                cumulative_workload(domain),
                total_workload(domain),
            ]
            for round_index in range(per_thread):
                try:
                    engine.ask(
                        f"client{index}",
                        workloads[round_index % len(workloads)],
                        epsilon=0.3,
                    )
                except PrivacyBudgetError:
                    pass
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = engine.stats
        # Conservation: every submitted ticket reached a terminal state.
        assert stats.queries_submitted == num_threads * per_thread
        assert stats.queries_answered + stats.queries_refused == stats.queries_submitted
        # No session overspent its allotment despite concurrent charges.
        for index in range(num_threads):
            assert engine.session(f"client{index}").spent() <= 1.0 + 1e-9

    def test_thread_safe_submission_counter_is_exact(self, database, domain):
        engine = make_engine(database, domain)
        engine.open_session("alice", 40.0)
        num_threads, per_thread = 8, 25

        def submit_many() -> None:
            for _ in range(per_thread):
                engine.submit("alice", identity_workload(domain), epsilon=0.01)

        threads = [threading.Thread(target=submit_many) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert engine.stats.queries_submitted == num_threads * per_thread
        assert engine.pending_count == num_threads * per_thread

    def test_serialize_flush_mode_still_answers(self, database, domain):
        engine = make_engine(database, domain, serialize_flush=True)
        engine.open_session("alice", 5.0)
        answers = engine.ask("alice", identity_workload(domain), epsilon=0.5)
        assert answers.shape == (16,)
        assert engine.stats.queries_answered == 1

    def test_execute_worker_pool_answers_multiple_groups(self, database, domain):
        # Context manager: close() reclaims the worker pool's threads.
        with make_engine(database, domain, execute_workers=4) as engine:
            engine.open_session("alice", 5.0)
            # Three epsilon groups → three batches eligible for the worker pool.
            t1 = engine.submit("alice", identity_workload(domain), epsilon=0.5)
            t2 = engine.submit("alice", cumulative_workload(domain), epsilon=0.25)
            t3 = engine.submit("alice", total_workload(domain), epsilon=0.125)
            engine.flush()
            assert t1.status == t2.status == t3.status == "answered"
            assert engine.stats.batches_executed == 3
        # Closed engines keep serving, inline.
        answers = engine.ask("alice", identity_workload(domain), epsilon=0.5)
        assert answers.shape == (16,)


class TestRollbackUnderConcurrency:
    def test_mid_execute_failure_rolls_back_without_touching_flights_in_flight(
        self, database, domain, monkeypatch
    ):
        """A mechanism crash mid-execute must refund exactly its own batch.

        The failing flush and a healthy flush run concurrently; the barrier
        guarantees real overlap.  Afterwards the failing session's ledger is
        empty (no budget leak) and the healthy ticket is answered and billed.
        """
        engine = make_engine(database, domain)
        failing = engine.open_session("failing", 1.0)
        healthy = engine.open_session("healthy", 1.0)
        policy = line_policy(domain)
        entry = engine.plan_cache.plan_for(
            policy, 0.5, prefer_data_dependent=False, consistency=False
        )
        barrier = threading.Barrier(2, timeout=5.0)

        def exploding(*args, **kwargs):
            barrier.wait()  # healthy flush is now in flight
            time.sleep(0.05)  # keep the overlap alive past the charge stage
            raise RuntimeError("mechanism crashed mid-execute")

        monkeypatch.setattr(entry.plan.algorithm, "answer", exploding)
        monkeypatch.setattr(entry.plan.algorithm, "answer_batch", exploding)

        failing_ticket = engine.submit(
            "failing", identity_workload(domain), epsilon=0.5
        )

        def healthy_flush() -> None:
            barrier.wait()
            engine.ask("healthy", cumulative_workload(domain), epsilon=0.25)

        failer = threading.Thread(target=engine.flush)
        worker = threading.Thread(target=healthy_flush)
        failer.start()
        worker.start()
        failer.join(timeout=10.0)
        worker.join(timeout=10.0)
        assert not failer.is_alive() and not worker.is_alive()

        assert failing_ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError, match="rolled back"):
            failing_ticket.result()
        # No budget leak: the rolled-back charge left no ledger trace and the
        # session is fully usable again.
        assert failing.spent() == 0.0
        assert failing.accountant.operations == []
        assert failing.can_afford(1.0)
        # The concurrent healthy flush was untouched.
        assert healthy.spent() == pytest.approx(0.25)
        assert healthy.queries_answered == 1

    def test_planning_failure_still_charges_nothing(
        self, database, domain, monkeypatch
    ):
        engine = make_engine(database, domain)
        session = engine.open_session("alice", 1.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)

        def explode(*args, **kwargs):
            raise RuntimeError("planner crashed")

        monkeypatch.setattr(engine.plan_cache, "plan_for", explode)
        engine.flush()
        assert ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError, match="nothing charged"):
            ticket.result()
        assert session.spent() == 0.0


class TestDrawIds:
    def test_batch_mates_share_a_draw_id(self, database, domain):
        engine = make_engine(database, domain, enable_answer_cache=True)
        engine.open_session("alice", 5.0)
        engine.open_session("bob", 5.0)
        t1 = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        t2 = engine.submit("bob", cumulative_workload(domain), epsilon=0.5)
        engine.flush()
        assert t1.draw_id is not None
        assert t1.draw_id == t2.draw_id  # one invocation, one shared draw

    def test_separate_flushes_get_distinct_draw_ids(self, database, domain):
        engine = make_engine(database, domain, enable_answer_cache=True)
        engine.open_session("alice", 5.0)
        first = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        second = engine.submit("alice", cumulative_workload(domain), epsilon=0.5)
        engine.flush()
        assert first.draw_id != second.draw_id

    def test_replay_carries_the_original_draw_id(self, database, domain):
        engine = make_engine(database, domain, enable_answer_cache=True)
        engine.open_session("alice", 5.0)
        paid = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        replay = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        assert replay.from_cache
        assert replay.draw_id == paid.draw_id

    def test_cache_groups_measurements_by_draw(self, database, domain):
        engine = make_engine(database, domain, enable_answer_cache=True)
        engine.open_session("alice", 5.0)
        policy = line_policy(domain)
        # Two batch-mates in one flush plus a separate later purchase.
        engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.submit("alice", cumulative_workload(domain), epsilon=0.5)
        engine.flush()
        engine.ask("alice", total_workload(domain), epsilon=0.25)
        grouped = engine.answer_cache.entries_by_draw(policy)
        sizes = sorted(len(keys) for keys in grouped.values())
        assert sizes == [1, 2]


class TestTicketEvents:
    def test_tickets_resolve_their_events_on_every_path(self, database, domain):
        engine = make_engine(database, domain, enable_answer_cache=True)
        engine.open_session("rich", 5.0)
        engine.open_session("poor", 0.1)
        answered = engine.submit("rich", identity_workload(domain), epsilon=0.5)
        refused = engine.submit("poor", cumulative_workload(domain), epsilon=0.5)
        assert not answered.done() and not refused.done()
        engine.flush()
        assert answered.done() and refused.done()
        assert answered.wait(0.0) and refused.wait(0.0)
        replay = engine.submit("rich", identity_workload(domain), epsilon=0.5)
        engine.flush()
        assert replay.done() and replay.from_cache


class TestPartitionedWorkloadsRemainCorrect:
    def test_zero_row_workload_answers_exactly_zero(self, database, domain):
        engine = make_engine(database, domain)
        engine.open_session("alice", 5.0)
        matrix = np.zeros((2, 16))
        matrix[0, 3] = 1.0  # one real query, one all-zero query
        answers = engine.ask("alice", Workload(domain, matrix), epsilon=0.5)
        assert answers.shape == (2,)
        assert answers[1] == pytest.approx(0.0)
