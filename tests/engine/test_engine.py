"""End-to-end tests of the PrivateQueryEngine serving loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.engine import PrivateQueryEngine
from repro.exceptions import MechanismError, PolicyError, PrivacyBudgetError
from repro.policy import line_policy, threshold_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[1, 5, 6, 12]] = [3, 7, 1, 9]
    return Database(domain, counts, name="sparse16")


@pytest.fixture
def engine(database: Database, domain: Domain) -> PrivateQueryEngine:
    return PrivateQueryEngine(
        database,
        total_epsilon=10.0,
        default_policy=line_policy(domain),
        random_state=42,
    )


class TestSessions:
    def test_open_session_reserves_global_budget(self, engine):
        engine.open_session("alice", 2.0)
        assert engine.accountant.spent() == pytest.approx(2.0)

    def test_duplicate_session_rejected(self, engine):
        engine.open_session("alice", 1.0)
        with pytest.raises(PrivacyBudgetError):
            engine.open_session("alice", 1.0)

    def test_unknown_session_rejected(self, engine, domain):
        with pytest.raises(PolicyError):
            engine.submit("nobody", identity_workload(domain), epsilon=0.1)

    def test_close_session_refunds(self, engine, domain):
        engine.open_session("alice", 2.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        refund = engine.close_session("alice")
        assert refund == pytest.approx(1.5)
        assert engine.accountant.spent() == pytest.approx(0.5)


class TestBudgetExhaustion:
    def test_exhausted_session_raises_privacy_budget_error(self, engine, domain):
        engine.open_session("alice", 0.5)
        engine.ask("alice", identity_workload(domain), epsilon=0.4)
        with pytest.raises(PrivacyBudgetError):
            engine.ask("alice", cumulative_workload(domain), epsilon=0.2)

    def test_refusal_resolves_ticket_without_blocking_the_batch(self, engine, domain):
        engine.open_session("rich", 5.0)
        engine.open_session("poor", 0.1)
        # Distinct workloads: an identical one would be deduplicated and the
        # poor client would (correctly) get the rich client's answer for free.
        rich_ticket = engine.submit("rich", identity_workload(domain), epsilon=0.5)
        poor_ticket = engine.submit("poor", cumulative_workload(domain), epsilon=0.5)
        engine.flush()
        assert rich_ticket.status == "answered"
        assert poor_ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError):
            poor_ticket.result()
        # The refused session was not charged anything.
        assert engine.session("poor").spent() == 0.0

    def test_pending_ticket_result_raises(self, engine, domain):
        engine.open_session("alice", 1.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.1)
        with pytest.raises(MechanismError):
            ticket.result()


class TestPlanCacheIntegration:
    def test_repeated_policy_hits_the_plan_cache(self, engine, domain):
        engine.open_session("alice", 5.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        engine.ask("alice", cumulative_workload(domain), epsilon=0.5)
        stats = engine.stats
        assert stats.plan_misses == 1
        assert stats.plan_hits == 1

    def test_distinct_policies_plan_separately(self, engine, domain):
        engine.open_session("alice", 5.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        engine.ask(
            "alice",
            identity_workload(domain),
            epsilon=0.5,
            policy=threshold_policy(domain, 3),
        )
        assert engine.stats.plan_misses == 2


class TestBatchExecutor:
    def test_compatible_queries_share_one_invocation(self, engine, domain):
        engine.open_session("alice", 5.0)
        engine.open_session("bob", 5.0)
        t1 = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        t2 = engine.submit("bob", cumulative_workload(domain), epsilon=0.5)
        engine.flush()
        assert t1.status == t2.status == "answered"
        stats = engine.stats
        assert stats.batches_executed == 1
        assert stats.mechanism_invocations == 1

    def test_batch_answers_match_sequential_answers_with_seeded_rng(
        self, database, domain
    ):
        """One vectorised invocation gives the same distribution as N scalar ones.

        With the noise seeded identically, the batched answers must be
        *exactly* the per-workload answers: the mechanisms perturb the
        (transformed) histogram, not the queries, so stacking rows changes
        nothing about the noise.
        """
        policy = line_policy(domain)
        workloads = [
            identity_workload(domain),
            cumulative_workload(domain),
            total_workload(domain),
        ]

        def build_engine():
            return PrivateQueryEngine(
                database, total_epsilon=10.0, default_policy=policy,
                enable_answer_cache=False,
            )

        batched_engine = build_engine()
        batched_engine.open_session("c", 5.0)
        tickets = [
            batched_engine.submit("c", workload, epsilon=1.0) for workload in workloads
        ]
        batched_engine.flush(random_state=123)
        assert batched_engine.stats.mechanism_invocations == 1

        sequential_engine = build_engine()
        sequential_engine.open_session("c", 5.0)
        for ticket, workload in zip(tickets, workloads):
            alone = sequential_engine.ask(
                "c", workload, epsilon=1.0, random_state=123
            )
            np.testing.assert_allclose(ticket.result(), alone, atol=1e-9)
        assert sequential_engine.stats.mechanism_invocations == len(workloads)

    def test_incompatible_epsilons_split_batches(self, engine, domain):
        engine.open_session("alice", 5.0)
        engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.submit("alice", identity_workload(domain), epsilon=0.25)
        engine.flush()
        assert engine.stats.batches_executed == 2


class TestAnswerCache:
    def test_replay_charges_zero_epsilon(self, engine, domain):
        session = engine.open_session("alice", 5.0)
        workload = identity_workload(domain)
        first = engine.ask("alice", workload, epsilon=0.5)
        spent_after_first = session.spent()
        replay = engine.ask("alice", workload, epsilon=0.5)
        np.testing.assert_array_equal(first, replay)
        assert session.spent() == pytest.approx(spent_after_first)
        assert engine.stats.answer_cache_replays == 1

    def test_duplicate_queries_in_one_flush_pay_once(self, engine, domain):
        """Intra-flush dedup: the same query twice in one batch costs one ε."""
        alice = engine.open_session("alice", 5.0)
        bob = engine.open_session("bob", 5.0)
        workload = identity_workload(domain)
        t1 = engine.submit("alice", workload, epsilon=0.5)
        t2 = engine.submit("bob", workload, epsilon=0.5)
        engine.flush()
        np.testing.assert_array_equal(t1.result(), t2.result())
        # Exactly one of the two paid; the duplicate replayed for free.
        assert alice.spent() + bob.spent() == pytest.approx(0.5)
        assert t2.from_cache and not t1.from_cache
        stats = engine.stats
        assert stats.answer_cache_replays == 1
        # The replay is reported as a cache hit, never as a miss.
        assert stats.answer_hits == 1
        assert stats.answer_misses == 1  # only the paying leader missed

    def test_refused_leader_does_not_drag_down_duplicates(self, engine, domain):
        """A duplicate whose own session has budget is promoted and answered."""
        poor = engine.open_session("poor", 0.1)
        rich = engine.open_session("rich", 5.0)
        workload = identity_workload(domain)
        poor_ticket = engine.submit("poor", workload, epsilon=0.5)  # leader, refused
        rich_ticket = engine.submit("rich", workload, epsilon=0.5)  # promoted
        engine.flush()
        assert poor_ticket.status == "refused"
        assert rich_ticket.status == "answered"
        assert rich.spent() == pytest.approx(0.5)
        assert poor.spent() == 0.0

    def test_consolidation_resolves_from_raw_measurements(self, engine, domain):
        """Repeated consolidation must not treat blended answers as evidence."""
        engine.open_session("alice", 8.0)
        engine.ask("alice", identity_workload(domain), epsilon=1.0)
        engine.ask("alice", total_workload(domain), epsilon=1.0)
        engine.consolidate()
        engine.ask("alice", cumulative_workload(domain), epsilon=1.0)
        engine.consolidate()
        # Raw measurements are preserved verbatim alongside blended answers.
        for entry in engine.answer_cache._entries.values():
            assert entry.raw_answers is not None
            if entry.consolidated:
                assert entry.raw_answers.shape == entry.answers.shape
        # All three blended answers are mutually consistent after round two.
        histogram = engine.ask("alice", identity_workload(domain), epsilon=1.0)
        total = engine.ask("alice", total_workload(domain), epsilon=1.0)
        prefix = engine.ask("alice", cumulative_workload(domain), epsilon=1.0)
        assert float(histogram.sum()) == pytest.approx(float(total[0]), rel=1e-6)
        assert float(prefix[-1]) == pytest.approx(float(total[0]), rel=1e-6)

    def test_replay_is_free_across_clients(self, engine, domain):
        engine.open_session("alice", 5.0)
        bob = engine.open_session("bob", 5.0)
        workload = cumulative_workload(domain)
        answer_alice = engine.ask("alice", workload, epsilon=0.5)
        answer_bob = engine.ask("bob", workload, epsilon=0.5)
        np.testing.assert_array_equal(answer_alice, answer_bob)
        assert bob.spent() == 0.0

    def test_different_epsilon_is_not_a_replay(self, engine, domain):
        session = engine.open_session("alice", 5.0)
        workload = identity_workload(domain)
        engine.ask("alice", workload, epsilon=0.5)
        engine.ask("alice", workload, epsilon=0.25)
        assert session.spent() == pytest.approx(0.75)

    def test_cache_disabled_gives_independent_draws_within_a_flush(
        self, database, domain
    ):
        """Two paid copies of one query must be two draws, not one stacked."""
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            enable_answer_cache=False,
            prefer_data_dependent=False,  # Laplace noise: equal draws would
            consistency=False,            # be a measure-zero event
            random_state=0,
        )
        alice = engine.open_session("alice", 5.0)
        bob = engine.open_session("bob", 5.0)
        workload = identity_workload(domain)
        t1 = engine.submit("alice", workload, epsilon=0.5)
        t2 = engine.submit("bob", workload, epsilon=0.5)
        engine.flush()
        assert t1.status == t2.status == "answered"
        # Both paid, and each got an independent noise draw.
        assert alice.spent() == bob.spent() == pytest.approx(0.5)
        assert not np.array_equal(t1.result(), t2.result())
        assert engine.stats.mechanism_invocations == 2

    def test_cache_can_be_disabled(self, database, domain):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            enable_answer_cache=False,
            random_state=0,
        )
        session = engine.open_session("alice", 5.0)
        workload = identity_workload(domain)
        engine.ask("alice", workload, epsilon=0.5)
        engine.ask("alice", workload, epsilon=0.5)
        assert session.spent() == pytest.approx(1.0)

    def test_consolidation_is_free_and_improves_consistency(self, engine, domain):
        engine.open_session("alice", 8.0)
        engine.ask("alice", identity_workload(domain), epsilon=1.0)
        engine.ask("alice", total_workload(domain), epsilon=1.0)
        spent_before = engine.accountant.spent()
        updated = engine.consolidate()
        assert updated == 2
        assert engine.accountant.spent() == pytest.approx(spent_before)
        # After consolidation the cached answers agree with each other: the
        # replayed total equals the sum of the replayed histogram.
        histogram = engine.ask("alice", identity_workload(domain), epsilon=1.0)
        total = engine.ask("alice", total_workload(domain), epsilon=1.0)
        assert float(histogram.sum()) == pytest.approx(float(total[0]), rel=1e-6)


class TestPartitionSoundness:
    def test_full_domain_query_cannot_claim_a_tiny_partition(self, engine, domain):
        """A fake disjoint partition must not buy a parallel-composition discount."""
        engine.open_session("cheat", 1.0)
        with pytest.raises(PrivacyBudgetError):
            engine.submit(
                "cheat", identity_workload(domain), epsilon=1.0, partition=[0]
            )

    def test_covering_partition_composes_in_parallel(self, database, domain):
        from repro.core import Workload
        from repro.policy import PolicyGraph

        # A sound partitioned setup needs (1) a data-independent plan (the
        # release is then a function of the declared cells alone) and (2) a
        # policy with no edges crossing the partition boundary — here two
        # disconnected line segments over cells 0-7 and 8-15.
        split_policy = PolicyGraph(
            domain,
            edges=[(i, i + 1) for i in range(7)]
            + [(i, i + 1) for i in range(8, 15)],
            name="two-segments",
        )
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=split_policy,
            prefer_data_dependent=False,
            consistency=False,  # the consistency projection is data dependent too
            random_state=0,
        )
        session = engine.open_session("alice", 1.0)
        # Two genuinely disjoint-support workloads: cells 0-7 and 8-15.
        left = Workload(domain, np.hstack([np.eye(8), np.zeros((8, 8))]))
        right = Workload(domain, np.hstack([np.zeros((8, 8)), np.eye(8)]))
        engine.submit("alice", left, epsilon=0.8, partition=range(8))
        engine.submit("alice", right, epsilon=0.8, partition=range(8, 16))
        engine.flush()
        # Disjoint partitions: max, not sum — 0.8, inside the 1.0 allotment.
        assert session.spent() == pytest.approx(0.8)

    def test_partition_crossing_policy_edges_rejected(self, database, domain):
        """A connected policy has edges across any split, so no discount."""
        from repro.core import Workload

        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),  # connected: edge (7, 8) crosses
            prefer_data_dependent=False,
            consistency=False,
            random_state=0,
        )
        engine.open_session("alice", 1.0)
        left = Workload(domain, np.hstack([np.eye(8), np.zeros((8, 8))]))
        with pytest.raises(PrivacyBudgetError, match="cross"):
            engine.submit("alice", left, epsilon=0.5, partition=range(8))

    def test_partition_refused_on_data_dependent_plans_unsharded(
        self, database, domain
    ):
        """Unsharded DAWA reads the whole histogram: no partition discount."""
        from repro.core import Workload
        from repro.policy import PolicyGraph

        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            enable_sharding=False,  # force the unsharded execution path
            random_state=42,
        )
        session = engine.open_session("alice", 1.0)
        confined = Workload(domain, np.hstack([np.eye(8), np.zeros((8, 8))]))
        # Edge-closed partition (two disconnected segments), so submission
        # passes; the engine's default planner still picks DAWA, which must
        # refuse the discount at execution on the unsharded path.
        split_policy = PolicyGraph(
            domain,
            edges=[(i, i + 1) for i in range(7)]
            + [(i, i + 1) for i in range(8, 15)],
        )
        ticket = engine.submit(
            "alice", confined, epsilon=0.5, policy=split_policy, partition=range(8)
        )
        engine.flush()
        assert ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError, match="data dependent"):
            ticket.result()
        assert session.spent() == 0.0

    def test_partition_allowed_on_data_dependent_plans_when_sharded(
        self, engine, domain
    ):
        """Sharded execution confines DAWA to one component: discount is sound.

        Each per-shard invocation reads only its component's cells, and an
        edge-closed partition is a union of components, so the release is a
        function of the declared partition alone even for data-dependent
        plans.
        """
        from repro.core import Workload
        from repro.policy import PolicyGraph

        session = engine.open_session("alice", 1.0)
        split_policy = PolicyGraph(
            domain,
            edges=[(i, i + 1) for i in range(7)]
            + [(i, i + 1) for i in range(8, 15)],
        )
        left = Workload(domain, np.hstack([np.eye(8), np.zeros((8, 8))]))
        right = Workload(domain, np.hstack([np.zeros((8, 8)), np.eye(8)]))
        t_left = engine.submit(
            "alice", left, epsilon=0.8, policy=split_policy, partition=range(8)
        )
        t_right = engine.submit(
            "alice", right, epsilon=0.8, policy=split_policy, partition=range(8, 16)
        )
        engine.flush()
        assert t_left.status == t_right.status == "answered"
        # Disjoint partitions: max, not sum — 0.8, inside the 1.0 allotment.
        assert session.spent() == pytest.approx(0.8)
        assert engine.stats.sharded_batches >= 1

    def test_non_integer_partition_rejected(self, engine, domain):
        engine.open_session("alice", 1.0)
        with pytest.raises(PolicyError):
            engine.submit(
                "alice", identity_workload(domain), epsilon=0.1, partition=["g0"]
            )


class TestFailureRollback:
    def test_failed_batch_rolls_back_charges_and_resolves_tickets(
        self, engine, domain, monkeypatch
    ):
        session = engine.open_session("alice", 1.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)

        def explode(*args, **kwargs):
            raise RuntimeError("planner crashed")

        monkeypatch.setattr(engine.plan_cache, "plan_for", explode)
        engine.flush()
        assert ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError, match="nothing charged"):
            ticket.result()
        # The charge never stood and the session is fully usable again.
        assert session.spent() == 0.0
        assert engine.pending_count == 0

    def test_answer_failure_rolls_back_charges(self, engine, domain, monkeypatch):
        """A crash *after* charging (in the mechanism) must refund the batch."""
        session = engine.open_session("alice", 1.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        entry = engine.plan_cache.plan_for(ticket.policy, 0.5)

        def explode(*args, **kwargs):
            raise RuntimeError("mechanism crashed")

        monkeypatch.setattr(entry.plan.algorithm, "answer", explode)
        engine.flush()
        assert ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError, match="rolled back"):
            ticket.result()
        assert session.spent() == 0.0

    def test_failure_in_one_group_does_not_strand_other_groups(
        self, engine, domain, monkeypatch
    ):
        engine.open_session("alice", 2.0)
        bad = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        good = engine.submit("alice", cumulative_workload(domain), epsilon=0.25)

        real_plan_for = engine.plan_cache.plan_for

        def explode_on_half(policy, epsilon, **kwargs):
            if epsilon == 0.5:
                raise RuntimeError("boom")
            return real_plan_for(policy, epsilon, **kwargs)

        monkeypatch.setattr(engine.plan_cache, "plan_for", explode_on_half)
        engine.flush()
        assert bad.status == "refused"
        assert good.status == "answered"


class TestSessionIdentity:
    def test_reopened_session_is_not_billed_for_pre_close_tickets(
        self, engine, domain
    ):
        engine.open_session("alice", 1.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.close_session("alice")
        fresh = engine.open_session("alice", 1.0)
        engine.flush()
        # The old ticket charges its own (closed) session and is refused with
        # an accurate reason; the new session's allotment is untouched.
        assert ticket.status == "refused"
        with pytest.raises(PrivacyBudgetError, match="closed"):
            ticket.result()
        assert fresh.spent() == 0.0
        assert fresh.queries_answered == 0

    def test_concurrent_asks_never_overspend_an_allotment(self, database, domain):
        import threading

        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            enable_answer_cache=False,
            random_state=0,
        )
        session = engine.open_session("alice", 1.0)
        errors = []

        def hammer():
            for _ in range(5):
                try:
                    engine.ask("alice", identity_workload(domain), epsilon=0.3)
                except PrivacyBudgetError:
                    pass
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert session.spent() <= 1.0 + 1e-9


class TestAnswerCacheEviction:
    def test_lru_bound_is_enforced(self, database, domain):
        from repro.core import Workload

        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            answer_cache_size=2,
            random_state=0,
        )
        session = engine.open_session("alice", 5.0)
        workloads = [
            Workload(domain, np.eye(16)[[i]], name=f"row{i}") for i in range(3)
        ]
        for workload in workloads:
            engine.ask("alice", workload, epsilon=0.2)
        assert len(engine.answer_cache) == 2
        assert engine.answer_cache.stats.evictions == 1
        # The evicted (oldest) workload is paid for again; the newest replays.
        spent = session.spent()
        engine.ask("alice", workloads[2], epsilon=0.2)
        assert session.spent() == pytest.approx(spent)
        engine.ask("alice", workloads[0], epsilon=0.2)
        assert session.spent() == pytest.approx(spent + 0.2)

    def test_consolidate_survives_eviction(self, database, domain):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            answer_cache_size=2,
            random_state=0,
        )
        engine.open_session("alice", 5.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.2)
        engine.ask("alice", cumulative_workload(domain), epsilon=0.2)
        engine.ask("alice", total_workload(domain), epsilon=0.2)  # evicts identity
        assert engine.consolidate() == 2


class TestValidation:
    def test_nan_epsilon_rejected_before_any_charge(self, engine, domain):
        session = engine.open_session("alice", 1.0)
        with pytest.raises(PrivacyBudgetError):
            engine.submit("alice", identity_workload(domain), epsilon=float("nan"))
        with pytest.raises(PrivacyBudgetError):
            engine.submit("alice", identity_workload(domain), epsilon=float("inf"))
        # The ledger is untouched and keeps enforcing the allotment.
        assert session.spent() == 0.0
        with pytest.raises(PrivacyBudgetError):
            engine.ask("alice", identity_workload(domain), epsilon=5.0)

    def test_nan_charge_rejected_at_the_accountant(self):
        from repro.accounting import PrivacyAccountant

        accountant = PrivacyAccountant(1.0)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge("q", float("nan"))
        assert accountant.spent() == 0.0

    def test_domain_mismatch_rejected(self, engine):
        engine.open_session("alice", 1.0)
        other = Domain((8,))
        with pytest.raises(PolicyError):
            engine.submit("alice", identity_workload(other), epsilon=0.1)

    def test_non_positive_epsilon_rejected(self, engine, domain):
        engine.open_session("alice", 1.0)
        with pytest.raises(PrivacyBudgetError):
            engine.submit("alice", identity_workload(domain), epsilon=0.0)

    def test_engine_requires_some_policy(self, database, domain):
        engine = PrivateQueryEngine(database, total_epsilon=1.0)
        engine.open_session("alice", 0.5)
        with pytest.raises(PolicyError):
            engine.submit("alice", identity_workload(domain), epsilon=0.1)
