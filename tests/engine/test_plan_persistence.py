"""Plan-cache persistence: save/load, versioning, warm-start hit rates."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.core.workload import Workload
from repro.engine import PLAN_STORE_FORMAT, PlanCache, PrivateQueryEngine
from repro.exceptions import MechanismError
from repro.policy import PolicyGraph, line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((32,))


@pytest.fixture
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(32, dtype=float), name="ramp32")


@pytest.fixture
def split_policy(domain: Domain) -> PolicyGraph:
    half = domain.size // 2
    return PolicyGraph(
        domain,
        edges=[(i, i + 1) for i in range(half - 1)]
        + [(i, i + 1) for i in range(half, domain.size - 1)],
        name="two-segments",
    )


def make_engine(database, domain, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=100.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


class TestPlanCacheStore:
    def test_save_load_round_trip(self, domain, tmp_path):
        cache = PlanCache()
        cache.plan_for(line_policy(domain), 0.5)
        cache.plan_for(line_policy(domain), 0.25)
        path = tmp_path / "plans.pkl"
        assert cache.save(str(path)) == 2

        fresh = PlanCache()
        assert fresh.load(str(path)) == 2
        assert len(fresh) == 2
        fresh.plan_for(line_policy(domain), 0.5)
        assert fresh.stats.misses == 0 and fresh.stats.hits == 1

    def test_absorb_skips_existing_and_respects_maxsize(self, domain, tmp_path):
        cache = PlanCache()
        for epsilon in (0.5, 0.25, 0.125):
            cache.plan_for(line_policy(domain), epsilon)
        path = tmp_path / "plans.pkl"
        cache.save(str(path))

        small = PlanCache(maxsize=2)
        small.plan_for(line_policy(domain), 0.5)
        absorbed = small.load(str(path))
        assert absorbed == 2  # the 0.5 entry already existed
        assert len(small) == 2  # LRU-bounded

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(MechanismError, match="does not exist"):
            PlanCache().load(str(tmp_path / "nope.pkl"))

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"format": PLAN_STORE_FORMAT + 1, "entries": []}, handle)
        with pytest.raises(MechanismError, match="format version"):
            PlanCache().load(str(path))

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(MechanismError, match="corrupt"):
            PlanCache().load(str(path))


class TestEngineWarmStart:
    def test_fresh_engine_serves_with_zero_cold_plans(
        self, database, domain, tmp_path
    ):
        path = tmp_path / "store.pkl"
        cold = make_engine(database, domain)
        cold.open_session("alice", 10.0)
        cold.ask("alice", identity_workload(domain), epsilon=0.5)
        cold.ask("alice", cumulative_workload(domain), epsilon=0.25)
        assert cold.stats.plan_misses == 2
        assert cold.save_plans(str(path)) == 2

        warm = make_engine(database, domain)
        warm.load_plans(str(path))
        warm.open_session("alice", 10.0)
        warm.ask("alice", identity_workload(domain), epsilon=0.5)
        warm.ask("alice", cumulative_workload(domain), epsilon=0.25)
        stats = warm.stats
        assert stats.plan_misses == 0
        assert stats.plan_cache_hit_rate == 1.0

    def test_warm_engine_answers_identically_for_identical_seeds(
        self, database, domain, tmp_path
    ):
        path = tmp_path / "store.pkl"
        cold = make_engine(database, domain, random_state=11)
        cold.open_session("alice", 10.0)
        cold_answers = cold.ask("alice", identity_workload(domain), epsilon=0.5)
        cold.save_plans(str(path))

        warm = make_engine(database, domain, random_state=11)
        warm.load_plans(str(path))
        warm.open_session("alice", 10.0)
        warm_answers = warm.ask("alice", identity_workload(domain), epsilon=0.5)
        np.testing.assert_array_equal(cold_answers, warm_answers)

    def test_per_shard_caches_are_persisted(
        self, database, domain, split_policy, tmp_path
    ):
        path = tmp_path / "store.pkl"
        half = domain.size // 2
        left = Workload(
            domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="left"
        )
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        assert cold.stats.sharded_batches == 1
        saved = cold.save_plans(str(path))
        assert saved >= 1  # at least the touched shard's plan

        # Load BEFORE the shard set exists: hydration must apply when the
        # lazily built shards appear.
        warm = make_engine(database, domain, default_policy=split_policy)
        warm.load_plans(str(path))
        warm.open_session("alice", 10.0)
        warm.ask("alice", left, epsilon=0.5)
        shard_set = warm._shard_set_for(split_policy)
        touched = shard_set.shards[0]
        assert touched.plan_cache.stats.misses == 0
        assert touched.plan_cache.stats.hits >= 1

    def test_load_after_shard_set_built_hydrates_immediately(
        self, database, domain, split_policy, tmp_path
    ):
        path = tmp_path / "store.pkl"
        half = domain.size // 2
        left = Workload(
            domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="left"
        )
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        cold.save_plans(str(path))

        warm = make_engine(database, domain, default_policy=split_policy)
        warm.shard_count(split_policy)  # builds the shard set eagerly
        warm.load_plans(str(path))
        warm.open_session("alice", 10.0)
        warm.ask("alice", left, epsilon=0.5)
        touched = warm._shard_set_for(split_policy).shards[0]
        assert touched.plan_cache.stats.misses == 0

    def test_sharded_warm_start_reaches_hit_rate_one(
        self, database, domain, split_policy, tmp_path
    ):
        """EngineStats aggregates per-shard plan lookups: a cold sharded
        server reports misses, a warm-started one reaches hit rate 1.0."""
        path = tmp_path / "store.pkl"
        half = domain.size // 2
        left = Workload(
            domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="left"
        )
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        assert cold.stats.plan_misses > 0  # cold sharded planning is visible
        cold.save_plans(str(path))

        warm = make_engine(database, domain, default_policy=split_policy)
        warm.load_plans(str(path))
        warm.open_session("alice", 10.0)
        warm.ask("alice", left, epsilon=0.5)
        stats = warm.stats
        assert stats.plan_misses == 0
        assert stats.plan_cache_hit_rate == 1.0

    def test_load_save_cycle_preserves_unqueried_shard_plans(
        self, database, domain, split_policy, tmp_path
    ):
        """Staged shard entries survive a load→save cycle even when their
        policy was never queried in between."""
        first = tmp_path / "first.pkl"
        second = tmp_path / "second.pkl"
        half = domain.size // 2
        left = Workload(
            domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="left"
        )
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        cold.save_plans(str(first))

        relay = make_engine(database, domain, default_policy=split_policy)
        loaded = relay.load_plans(str(first))
        assert loaded >= 1
        # Never queried: the shard set was never built, entries stay staged.
        relay.save_plans(str(second))

        final = make_engine(database, domain, default_policy=split_policy)
        assert final.load_plans(str(second)) == loaded
        final.open_session("alice", 10.0)
        final.ask("alice", left, epsilon=0.5)
        assert final.stats.plan_misses == 0

    def test_loading_two_stores_for_one_policy_merges_staged_plans(
        self, database, domain, split_policy, tmp_path
    ):
        """Stores for the same policy accumulate: a later load must not
        replace an earlier store's staged per-shard plans."""
        half = domain.size // 2
        left = Workload(
            domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="left"
        )
        store_paths = []
        for epsilon in (0.5, 0.25):
            cold = make_engine(database, domain, default_policy=split_policy)
            cold.open_session("alice", 10.0)
            cold.ask("alice", left, epsilon=epsilon)
            path = tmp_path / f"store-{epsilon}.pkl"
            cold.save_plans(str(path))
            store_paths.append(path)

        warm = make_engine(database, domain, default_policy=split_policy)
        assert warm.load_plans(str(store_paths[0])) == 1
        assert warm.load_plans(str(store_paths[1])) == 1
        warm.open_session("alice", 10.0)
        warm.ask("alice", left, epsilon=0.5)
        warm.ask("alice", left, epsilon=0.25)
        stats = warm.stats
        assert stats.plan_misses == 0
        assert stats.plan_cache_hit_rate == 1.0

    def test_reloading_the_same_store_is_a_counted_noop(
        self, database, domain, split_policy, tmp_path
    ):
        path = tmp_path / "store.pkl"
        half = domain.size // 2
        left = Workload(
            domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="left"
        )
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        cold.ask("alice", identity_workload(domain), epsilon=0.25)
        cold.save_plans(str(path))

        warm = make_engine(database, domain, default_policy=split_policy)
        assert warm.load_plans(str(path)) >= 1
        assert warm.load_plans(str(path)) == 0  # second load absorbs nothing

    def test_mismatched_store_is_inert_not_wrong(self, database, domain, tmp_path):
        """A store saved under one policy never hits for another policy."""
        path = tmp_path / "store.pkl"
        cold = make_engine(database, domain)
        cold.open_session("alice", 10.0)
        cold.ask("alice", identity_workload(domain), epsilon=0.5)
        cold.save_plans(str(path))

        other_policy = PolicyGraph(
            domain, [(0, i) for i in range(1, domain.size)], name="star"
        )
        warm = make_engine(database, domain, default_policy=other_policy)
        warm.load_plans(str(path))
        warm.open_session("alice", 10.0)
        warm.ask("alice", identity_workload(domain), epsilon=0.5)
        assert warm.stats.plan_misses == 1  # cold for the unseen policy


class TestPrunedSaves:
    """save_plans(prune=True): snapshot what the engine actually serves."""

    def left_workload(self, domain) -> Workload:
        half = domain.size // 2
        return Workload(
            domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="left"
        )

    def test_prune_drops_staged_entries_never_queried(
        self, database, domain, split_policy, tmp_path
    ):
        """A long-running server must not snapshot plans it only ever
        loaded: a pruned save keeps live caches, drops the staging area."""
        first = tmp_path / "first.pkl"
        pruned = tmp_path / "pruned.pkl"
        left = self.left_workload(domain)
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        assert cold.save_plans(str(first)) >= 1

        relay = make_engine(database, domain, default_policy=split_policy)
        relay.load_plans(str(first))
        # The split policy was never queried here: its shard set was never
        # built, so its entries live only in the staging area.
        assert relay.save_plans(str(pruned), prune=True) == 0

        final = make_engine(database, domain, default_policy=split_policy)
        assert final.load_plans(str(pruned)) == 0

    def test_prune_keeps_live_engine_and_shard_plans(
        self, database, domain, split_policy, tmp_path
    ):
        """Entries in live caches — engine-level and per-shard — survive a
        pruned save and still warm-start a fresh engine."""
        path = tmp_path / "store.pkl"
        left = self.left_workload(domain)
        engine = make_engine(database, domain, default_policy=split_policy)
        engine.open_session("alice", 10.0)
        engine.ask("alice", left, epsilon=0.5)  # per-shard plan
        engine.ask("alice", identity_workload(domain), epsilon=0.25)  # engine-level
        assert engine.save_plans(str(path), prune=True) >= 2

        warm = make_engine(database, domain, default_policy=split_policy)
        assert warm.load_plans(str(path)) >= 2
        warm.open_session("alice", 10.0)
        warm.ask("alice", left, epsilon=0.5)
        warm.ask("alice", identity_workload(domain), epsilon=0.25)
        assert warm.stats.plan_misses == 0

    def test_default_save_still_preserves_staged_entries(
        self, database, domain, split_policy, tmp_path
    ):
        """prune is opt-in: the conservative load→save round trip of
        test_load_save_cycle_preserves_unqueried_shard_plans stays intact."""
        first = tmp_path / "first.pkl"
        second = tmp_path / "second.pkl"
        left = self.left_workload(domain)
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        cold.save_plans(str(first))

        relay = make_engine(database, domain, default_policy=split_policy)
        loaded = relay.load_plans(str(first))
        relay.save_plans(str(second))

        final = make_engine(database, domain, default_policy=split_policy)
        assert final.load_plans(str(second)) == loaded

    def test_prune_leaves_in_memory_staging_usable(
        self, database, domain, split_policy, tmp_path
    ):
        """A pruned save must not break the engine itself: staged plans
        still hydrate shard sets built afterwards."""
        first = tmp_path / "first.pkl"
        pruned = tmp_path / "pruned.pkl"
        left = self.left_workload(domain)
        cold = make_engine(database, domain, default_policy=split_policy)
        cold.open_session("alice", 10.0)
        cold.ask("alice", left, epsilon=0.5)
        cold.save_plans(str(first))

        relay = make_engine(database, domain, default_policy=split_policy)
        relay.load_plans(str(first))
        relay.save_plans(str(pruned), prune=True)
        # First query after the pruned save: the shard set is built now and
        # hydrates from the (untouched) in-memory staging — zero cold plans.
        relay.open_session("alice", 10.0)
        relay.ask("alice", left, epsilon=0.5)
        assert relay.stats.plan_misses == 0
