"""Fused per-worker shard kernels: determinism, telemetry, decline paths."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload
from repro.engine import PlanCache, PrivateQueryEngine
from repro.engine.parallel import (
    ExecuteUnit,
    ExecuteUnitGroup,
    ProcessExecuteBackend,
    ThreadExecuteBackend,
    _worker_factorisation_stats,
    run_unit_group,
)
from repro.policy import PolicyGraph, line_policy

DOMAIN_SIZE = 32
SEGMENT = 4  # → 8 policy components → 8 shard units per sharded batch


@pytest.fixture(scope="module")
def domain() -> Domain:
    return Domain((DOMAIN_SIZE,))


@pytest.fixture(scope="module")
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(DOMAIN_SIZE, dtype=float), name="ramp")


@pytest.fixture(scope="module")
def segmented_policy(domain: Domain) -> PolicyGraph:
    edges = []
    for start in range(0, DOMAIN_SIZE, SEGMENT):
        edges += [(i, i + 1) for i in range(start, start + SEGMENT - 1)]
    return PolicyGraph(domain, edges=edges, name=f"segments-{SEGMENT}")


def serve(domain, database, segmented_policy, backend, workers, fusion):
    """8-shard batch + second ε group through one backend config."""
    engine = PrivateQueryEngine(
        database,
        total_epsilon=100.0,
        default_policy=segmented_policy,
        enable_answer_cache=False,
        random_state=77,
        execute_workers=workers,
        execute_backend=backend,
        execute_fusion=fusion,
    )
    with engine:
        session = engine.open_session("alice", 50.0)
        tickets = [
            engine.submit("alice", identity_workload(domain), epsilon=0.5),
            engine.submit("alice", identity_workload(domain), epsilon=0.25),
        ]
        engine.flush()
        answers = [np.asarray(t.answers) for t in tickets]
        ledger = [
            (op.label, op.epsilon, op.partition)
            for op in session.accountant.operations
        ]
        stats = engine.stats
    return {"answers": answers, "ledger": ledger, "stats": stats}


@pytest.fixture(scope="module")
def runs(domain, database, segmented_policy):
    configs = {
        "thread-fused": ("thread", 2, True),
        "thread-unfused": ("thread", 2, False),
        "process-fused": ("process", 2, True),
        "process-unfused": ("process", 2, False),
        "adaptive-fused": ("adaptive", 2, True),
        "adaptive-unfused": ("adaptive", 2, False),
    }
    return {
        name: serve(domain, database, segmented_policy, backend, workers, fusion)
        for name, (backend, workers, fusion) in configs.items()
    }


class TestFusedDeterminism:
    def test_all_backends_draw_identical_noise(self, runs):
        # Ungrouped thread execution is the reference; every other backend
        # and fusion setting must draw byte-identical noise.  The adaptive
        # runs route part of the flush inline, so the inline path is held to
        # the same contract.
        reference = runs["thread-unfused"]["answers"]
        for name, run in runs.items():
            for expected, got in zip(reference, run["answers"]):
                np.testing.assert_array_equal(expected, got, err_msg=name)

    def test_ledgers_are_backend_and_fusion_independent(self, runs):
        reference = runs["thread-unfused"]["ledger"]
        for name, run in runs.items():
            assert run["ledger"] == reference, name


class TestFusionTelemetry:
    def test_fused_units_counted_and_dispatches_collapse(self, runs):
        fused = runs["thread-fused"]["stats"]
        unfused = runs["thread-unfused"]["stats"]
        # 16 units (two ε groups × 8 shards) over 2 workers: everything
        # fuses, into at most 2 dispatches per config group.
        assert fused.fused_units == 16
        assert unfused.fused_units == 0
        assert fused.worker_dispatches <= 4
        assert unfused.worker_dispatches == 16

    def test_process_backend_ships_fused_payloads(self, runs):
        fused = runs["process-fused"]["stats"]
        unfused = runs["process-unfused"]["stats"]
        assert fused.fused_units == 16
        assert fused.worker_dispatches < unfused.worker_dispatches
        assert fused.bytes_shipped > 0

    def test_adaptive_counts_fused_members(self, runs):
        fused = runs["adaptive-fused"]["stats"]
        assert fused.fused_units == 16
        # Every unit is accounted for exactly once, wherever it ran.
        assert fused.adaptive_inline + fused.adaptive_dispatched >= 2

    def test_no_fusion_below_slot_count(self, domain, database, segmented_policy):
        # 8 units over 8 workers: each unit already gets its own worker, so
        # fusing would only serialise — the pipeline must not group.
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=segmented_policy,
            enable_answer_cache=False,
            random_state=1,
            execute_workers=8,
            execute_backend="thread",
        )
        with engine:
            engine.open_session("a", 5.0)
            engine.submit("a", identity_workload(domain), epsilon=0.5)
            engine.flush()
            assert engine.stats.fused_units == 0
            assert engine.stats.worker_dispatches == 8


class TestFusionDecline:
    def test_incompatible_config_groups_logged(
        self, domain, database, segmented_policy, caplog
    ):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=100.0,
            default_policy=segmented_policy,
            enable_answer_cache=False,
            random_state=5,
            execute_workers=2,
            execute_backend="thread",
        )
        with engine:
            engine.open_session("a", 50.0)
            engine.submit("a", identity_workload(domain), epsilon=0.5)
            engine.submit("a", identity_workload(domain), epsilon=0.25)
            with caplog.at_level(logging.DEBUG, logger="repro.engine.pipeline"):
                engine.flush()
            stats = engine.stats
        declines = [
            record
            for record in caplog.records
            if "incompatible ε/config groups" in record.getMessage()
        ]
        assert declines, "expected a DEBUG decline record for the second ε group"
        assert "2 incompatible" in declines[0].getMessage()
        # Declining cross-group fusion still fuses within each group.
        assert stats.fused_units == 16

    def test_fusion_off_switch_disables_grouping(
        self, domain, database, segmented_policy, caplog
    ):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=segmented_policy,
            enable_answer_cache=False,
            random_state=5,
            execute_workers=2,
            execute_backend="thread",
            execute_fusion=False,
        )
        with engine:
            engine.open_session("a", 5.0)
            engine.submit("a", identity_workload(domain), epsilon=0.5)
            with caplog.at_level(logging.DEBUG, logger="repro.engine.pipeline"):
                engine.flush()
            assert engine.stats.fused_units == 0


class TestGroupPrimitives:
    def test_run_unit_group_isolates_member_errors(self, domain, database):
        cache = PlanCache()
        entry = cache.plan_for(
            line_policy(domain), 0.5, prefer_data_dependent=False, consistency=False
        )
        good = ExecuteUnit(
            plan=entry,
            workloads=[identity_workload(domain)],
            database=database,
            rng=np.random.default_rng(3),
            want_noise=False,
        )
        bad = ExecuteUnit(
            plan=entry,
            workloads=[identity_workload(Domain((DOMAIN_SIZE + 1,)))],
            database=database,
            rng=np.random.default_rng(4),
            want_noise=False,
        )
        outcomes, kernels = run_unit_group(ExecuteUnitGroup(units=(good, bad)))
        assert outcomes[0][0] == "ok" and kernels[0] is not None
        assert outcomes[1][0] == "error" and kernels[1] is None

    def test_thread_group_dispatch_matches_solo_runs(self, domain, database):
        cache = PlanCache()
        entry = cache.plan_for(
            line_policy(domain), 0.5, prefer_data_dependent=False, consistency=False
        )

        def unit(seed):
            return ExecuteUnit(
                plan=entry,
                workloads=[identity_workload(domain)],
                database=database,
                rng=np.random.default_rng(seed),
                want_noise=False,
            )

        backend = ThreadExecuteBackend(max_workers=2)
        try:
            handle = backend.submit_group(
                ExecuteUnitGroup(units=(unit(11), unit(12)))
            )
            outcomes = handle.result()
            solo_one = backend.submit(unit(11)).result()
            solo_two = backend.submit(unit(12)).result()
        finally:
            backend.close()
        assert [o[0] for o in outcomes] == ["ok", "ok"]
        np.testing.assert_array_equal(outcomes[0][1][0], solo_one[0][0])
        np.testing.assert_array_equal(outcomes[1][1][0], solo_two[0][0])
        assert handle.kernel_seconds_list is not None
        assert len(handle.kernel_seconds_list) == 2


class TestWorkerStoreLocality:
    def test_worker_store_shares_across_plans_and_survives_reset(
        self, domain, database
    ):
        cache = PlanCache()
        entries = [
            cache.plan_for(
                line_policy(domain),
                epsilon,
                prefer_data_dependent=False,
                consistency=False,
            )
            for epsilon in (0.5, 0.25)
        ]

        def unit(entry, seed):
            return ExecuteUnit(
                plan=entry,
                workloads=[identity_workload(domain)],
                database=database,
                rng=np.random.default_rng(seed),
                want_noise=False,
            )

        backend = ProcessExecuteBackend(max_workers=1, preload=(database,))
        try:
            backend.submit(unit(entries[0], 1)).result()
            backend.submit(unit(entries[1], 2)).result()
            pool, _ = backend._ensure_pool()
            first = pool.submit(_worker_factorisation_stats).result()
            # Two plans, one policy content: the second resolved its
            # transformed workload from the worker-local store by digest.
            assert first["misses"] >= 1
            assert first["hits"] >= 1

            backend.reset_resident_caches()
            backend.submit(unit(entries[0], 3)).result()
            backend.submit(unit(entries[1], 4)).result()
            second = pool.submit(_worker_factorisation_stats).result()
            # Re-hydrated plans re-attach by content digest: within the
            # post-reset pair sharing still works (hits grew again).
            assert second["hits"] > first["hits"]
            assert second["pid"] == first["pid"]
        finally:
            backend.close()
