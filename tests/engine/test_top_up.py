"""Spend-a-little-more top-ups: incremental charges, GLS combining, rollback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.engine import PrivateQueryEngine
from repro.exceptions import MechanismError, PrivacyBudgetError
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((24,))


@pytest.fixture
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(24, dtype=float), name="ramp24")


def make_engine(database, domain, seed=0, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=1000.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        random_state=seed,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


class TestTopUpLedger:
    def test_charges_exactly_the_increment(self, database, domain):
        engine = make_engine(database, domain)
        session = engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        assert session.spent() == pytest.approx(1.0)
        engine.top_up("a", identity_workload(domain), extra_epsilon=0.25)
        assert session.spent() == pytest.approx(1.25)
        assert engine.stats.top_ups == 1
        (entry,) = engine.answer_cache._entries.values()
        assert len(entry.measurements) == 2
        assert entry.total_epsilon == pytest.approx(1.25)

    def test_replays_serve_the_upgraded_vector_for_free(self, database, domain):
        engine = make_engine(database, domain)
        session = engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        upgraded = engine.top_up("a", identity_workload(domain), extra_epsilon=0.5)
        spent = session.spent()
        replay = engine.ask("a", identity_workload(domain), 1.0)
        np.testing.assert_array_equal(replay, upgraded)
        assert session.spent() == spent  # the replay was free

    def test_rollback_on_mid_top_up_failure_leaks_nothing(
        self, database, domain, monkeypatch
    ):
        engine = make_engine(database, domain)
        session = engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        spent = session.spent()
        ledger_len = len(session.accountant.operations)

        import repro.engine.parallel as parallel_module

        def broken_run_unit(*args, **kwargs):
            raise RuntimeError("mechanism exploded mid-top-up")

        monkeypatch.setattr(parallel_module, "run_unit", broken_run_unit)
        with pytest.raises(MechanismError, match="rolled back"):
            engine.top_up("a", identity_workload(domain), extra_epsilon=0.5)
        assert session.spent() == pytest.approx(spent)
        assert len(session.accountant.operations) == ledger_len
        (entry,) = engine.answer_cache._entries.values()
        assert len(entry.measurements) == 1  # nothing half-applied
        assert engine.stats.top_ups == 0

    def test_refused_when_allotment_exhausted(self, database, domain):
        engine = make_engine(database, domain)
        session = engine.open_session("a", 1.0)
        engine.ask("a", identity_workload(domain), 1.0)
        with pytest.raises(PrivacyBudgetError):
            engine.top_up("a", identity_workload(domain), extra_epsilon=0.5)
        assert session.spent() == pytest.approx(1.0)

    def test_invalid_increment_rejected_before_any_charge(self, database, domain):
        engine = make_engine(database, domain)
        session = engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(PrivacyBudgetError):
                engine.top_up("a", identity_workload(domain), extra_epsilon=bad)
        assert session.spent() == pytest.approx(1.0)


class TestTopUpTargeting:
    def test_uncached_workload_is_refused(self, database, domain):
        engine = make_engine(database, domain)
        engine.open_session("a", 100.0)
        with pytest.raises(MechanismError, match="[Nn]o cached"):
            engine.top_up("a", identity_workload(domain), extra_epsilon=0.5)

    def test_ambiguous_epsilon_requires_disambiguation(self, database, domain):
        engine = make_engine(database, domain)
        session = engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        engine.ask("a", identity_workload(domain), 2.0)
        with pytest.raises(MechanismError, match="epsilon="):
            engine.top_up("a", identity_workload(domain), extra_epsilon=0.5)
        spent = session.spent()
        engine.top_up(
            "a", identity_workload(domain), extra_epsilon=0.5, epsilon=1.0
        )
        assert session.spent() == pytest.approx(spent + 0.5)
        entry = engine.answer_cache.peek(
            line_policy(domain), identity_workload(domain), 1.0
        )
        assert len(entry.measurements) == 2
        untouched = engine.answer_cache.peek(
            line_policy(domain), identity_workload(domain), 2.0
        )
        assert len(untouched.measurements) == 1

    def test_missing_named_epsilon_is_refused(self, database, domain):
        engine = make_engine(database, domain)
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        with pytest.raises(MechanismError, match="epsilon=3.0"):
            engine.top_up(
                "a", identity_workload(domain), extra_epsilon=0.5, epsilon=3.0
            )

    def test_requires_answer_cache(self, database, domain):
        engine = make_engine(database, domain, enable_answer_cache=False)
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        with pytest.raises(MechanismError, match="answer cache"):
            engine.top_up("a", identity_workload(domain), extra_epsilon=0.5)


class TestTopUpAccuracy:
    def test_top_up_reduces_error_on_average(self, database, domain):
        """GLS-combining a fresh draw sharpens the served answer."""
        counts = database.counts
        truth = counts  # identity workload
        before_errors, after_errors = [], []
        for seed in range(25):
            engine = make_engine(database, domain, seed=seed)
            engine.open_session("a", 500.0)
            first = engine.ask("a", identity_workload(domain), 0.4)
            before_errors.append(float(np.mean((first - truth) ** 2)))
            upgraded = engine.top_up(
                "a", identity_workload(domain), extra_epsilon=0.4
            )
            after_errors.append(float(np.mean((upgraded - truth) ** 2)))
        assert np.mean(after_errors) < np.mean(before_errors)

    def test_repeated_top_ups_accumulate(self, database, domain):
        engine = make_engine(database, domain)
        session = engine.open_session("a", 100.0)
        engine.ask("a", cumulative_workload(domain), 0.5)
        engine.top_up("a", cumulative_workload(domain), extra_epsilon=0.25)
        engine.top_up("a", cumulative_workload(domain), extra_epsilon=0.25)
        assert session.spent() == pytest.approx(1.0)
        (entry,) = engine.answer_cache._entries.values()
        assert len(entry.measurements) == 3
        assert entry.total_epsilon == pytest.approx(1.0)
        assert engine.stats.top_ups == 2

    def test_topped_up_measurements_join_consolidation(self, database, domain):
        engine = make_engine(database, domain)
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        engine.ask("a", cumulative_workload(domain), 1.0)
        engine.top_up("a", identity_workload(domain), extra_epsilon=0.5)
        assert engine.consolidate() == 2
        histogram = engine.ask("a", identity_workload(domain), 1.0)
        prefix = engine.ask("a", cumulative_workload(domain), 1.0)
        np.testing.assert_allclose(np.cumsum(histogram), prefix, rtol=1e-6)


class TestTopUpBackendParity:
    """The increment and the noise metadata are backend-independent.

    ``thread`` and ``process`` engines are byte-for-byte comparable (same
    RNG derivation); the inline engine draws its flushes from a different
    (documented) derivation, but the top-up measurement itself bypasses
    batching, so its raw vector and metadata must match every backend.
    """

    def test_full_parity_between_thread_and_process(self, database, domain):
        results = {}
        for backend in ("thread", "process"):
            engine = make_engine(
                database,
                domain,
                seed=11,
                execute_workers=2,
                execute_backend=backend,
            )
            try:
                session = engine.open_session("a", 100.0)
                engine.ask("a", identity_workload(domain), 1.0, random_state=41)
                upgraded = engine.top_up(
                    "a",
                    identity_workload(domain),
                    extra_epsilon=0.5,
                    random_state=42,
                )
                (entry,) = engine.answer_cache._entries.values()
                measurement = entry.measurements[1]
                results[backend] = {
                    "spent": session.spent(),
                    "answers": upgraded,
                    "raw": measurement.answers.copy(),
                    "stds": measurement.noise_stds.copy(),
                    "basis": next(iter(measurement.noise_bases.values())).toarray(),
                }
            finally:
                engine.close()
        thread, process = results["thread"], results["process"]
        assert process["spent"] == pytest.approx(thread["spent"])
        np.testing.assert_array_equal(process["raw"], thread["raw"])
        np.testing.assert_array_equal(process["answers"], thread["answers"])
        # Noise metadata survives the process round trip bit-identically.
        np.testing.assert_array_equal(process["stds"], thread["stds"])
        np.testing.assert_array_equal(process["basis"], thread["basis"])

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_top_up_measurement_matches_inline(self, database, domain, backend):
        """The seeded top-up unit draws identically on every backend."""
        results = {}
        for mode in ("inline", backend):
            options = (
                {}
                if mode == "inline"
                else {"execute_workers": 2, "execute_backend": mode}
            )
            engine = make_engine(database, domain, seed=11, **options)
            try:
                session = engine.open_session("a", 100.0)
                spent_before_ask = session.spent()
                engine.ask("a", identity_workload(domain), 1.0, random_state=41)
                spent_before = session.spent()
                engine.top_up(
                    "a",
                    identity_workload(domain),
                    extra_epsilon=0.5,
                    random_state=42,
                )
                (entry,) = engine.answer_cache._entries.values()
                measurement = entry.measurements[1]
                results[mode] = {
                    "ask_charge": spent_before - spent_before_ask,
                    "increment": session.spent() - spent_before,
                    "raw": measurement.answers.copy(),
                    "stds": measurement.noise_stds.copy(),
                    "basis": next(iter(measurement.noise_bases.values())).toarray(),
                }
            finally:
                engine.close()
        inline, pooled = results["inline"], results[backend]
        assert pooled["ask_charge"] == pytest.approx(1.0)
        assert pooled["increment"] == pytest.approx(0.5)
        assert inline["increment"] == pytest.approx(0.5)
        np.testing.assert_array_equal(pooled["raw"], inline["raw"])
        np.testing.assert_array_equal(pooled["stds"], inline["stds"])
        np.testing.assert_array_equal(pooled["basis"], inline["basis"])


class TestTopUpEvictionRace:
    def test_evicted_entry_reinsert_respects_bound_and_key_epsilon(
        self, database, domain, monkeypatch
    ):
        """A top-up whose entry was evicted mid-flight re-stores it under
        the original key ε and never pushes the cache past maxsize."""
        engine = make_engine(database, domain, answer_cache_size=2)
        engine.open_session("a", 100.0)
        engine.ask("a", identity_workload(domain), 1.0)
        cache = engine.answer_cache
        policy = line_policy(domain)

        import repro.engine.parallel as parallel_module

        original_run_unit = parallel_module.run_unit
        raced = {}

        def evicting_run_unit(*args, **kwargs):
            if not raced:
                raced["done"] = True
                # Fill the 2-slot cache so the identity entry is evicted
                # while the top-up's mechanism invocation is in flight.
                cache.store(policy, cumulative_workload(domain), 1.0, np.ones(24))
                cache.store(policy, cumulative_workload(domain), 2.0, np.ones(24))
            return original_run_unit(*args, **kwargs)

        monkeypatch.setattr(parallel_module, "run_unit", evicting_run_unit)
        engine.top_up("a", identity_workload(domain), extra_epsilon=0.25)
        assert len(cache) <= 2  # the bound survived the race re-insert
        entry = cache.peek(policy, identity_workload(domain), 1.0)
        assert entry is not None
        assert entry.epsilon == pytest.approx(1.0)  # key ε, not the increment
        assert len(entry.measurements) == 1  # only the fresh measurement
        assert entry.total_epsilon == pytest.approx(0.25)
