"""Overload protection: deadlines, cancellation, admission control, drain.

The invariant every test here circles: **shed, expired and cancelled work
costs zero ε**.  Overload protection that leaked budget would turn a
traffic spike into a privacy incident — the pipeline drops expired tickets
*before* the charge stage, cancellation only wins while the ticket is
unclaimed, and admission sheds before ``engine.submit`` ever runs.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import Database, Domain, identity_workload, total_workload
from repro.engine import (
    CANCELLED,
    EXPIRED,
    BatchingExecutor,
    PrivateQueryEngine,
)
from repro.engine.serving import (
    AdmissionController,
    ServingServer,
    TokenBucket,
    create_app,
)
from repro.engine.serving.http import Request
from repro.exceptions import (
    DeadlineExpiredError,
    MechanismError,
    QueryCancelledError,
)
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[2, 9, 14]] = [4.0, 7.0, 3.0]
    return Database(domain, counts, name="overload16")


def build_engine(database: Database, domain: Domain, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=29,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


# ------------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_born_dead_submit_resolves_expired_immediately(self, database, domain):
        engine = build_engine(database, domain)
        session = engine.open_session("alice", 10.0)
        ticket = engine.submit(
            "alice", identity_workload(domain), 0.5, deadline=time.monotonic() - 1.0
        )
        assert ticket.status == EXPIRED
        assert ticket.done()
        assert engine.pending_count == 0
        assert session.spent() == 0.0
        with pytest.raises(DeadlineExpiredError):
            ticket.result()
        engine.close()

    def test_queued_ticket_expires_at_pickup_with_zero_epsilon(self, database, domain):
        engine = build_engine(database, domain)
        session = engine.open_session("alice", 10.0)
        expired = engine.submit(
            "alice",
            identity_workload(domain),
            0.5,
            deadline=time.monotonic() + 0.01,
        )
        live = engine.submit("alice", total_workload(domain), 0.25)
        time.sleep(0.03)
        engine.flush()
        assert expired.status == EXPIRED
        assert live.status == "answered"
        # Only the live query was charged.
        assert session.spent() == pytest.approx(0.25)
        stats = engine.stats
        assert stats.queries_expired == 1
        assert stats.queries_answered == 1
        engine.close()

    def test_future_deadline_answers_normally(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        answers = engine.ask(
            "alice",
            identity_workload(domain),
            0.5,
            deadline=time.monotonic() + 30.0,
        )
        assert answers.shape == (16,)
        engine.close()

    def test_non_finite_deadline_rejected(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        with pytest.raises(MechanismError, match="deadline"):
            engine.submit(
                "alice", identity_workload(domain), 0.5, deadline=float("nan")
            )
        engine.close()

    def test_expired_drop_preserves_rng_stream(self, database, domain):
        """The privacy-critical determinism property.

        A flush whose pickup drops an expired ticket must produce draws
        byte-identical to a run where that ticket was never submitted:
        the drop happens before grouping, so batch composition — and with
        it per-batch RNG child derivation — is unchanged.
        """

        def run(with_expired: bool) -> np.ndarray:
            engine = build_engine(database, domain)
            engine.open_session("alice", 10.0)
            if with_expired:
                engine.submit(
                    "alice",
                    identity_workload(domain),
                    0.5,
                    deadline=time.monotonic() - 1.0,  # born dead, never queued
                )
                dead = engine.submit(
                    "alice",
                    total_workload(domain),
                    0.5,
                    deadline=time.monotonic() + 0.005,
                )
                time.sleep(0.02)
            live = engine.submit("alice", identity_workload(domain), 0.25)
            engine.flush()
            if with_expired:
                assert dead.status == EXPIRED
            answers = live.result()
            engine.close()
            return answers

        np.testing.assert_array_equal(run(with_expired=True), run(with_expired=False))

    def test_executor_forwards_deadline(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        with BatchingExecutor(engine, max_batch_size=64, max_delay=5.0) as executor:
            ticket = executor.submit(
                "alice",
                identity_workload(domain),
                0.5,
                deadline=time.monotonic() - 1.0,
            )
            assert ticket.status == EXPIRED
        engine.close()


# ---------------------------------------------------------------- cancellation
class TestCancellation:
    def test_cancel_pending_ticket_costs_nothing(self, database, domain):
        engine = build_engine(database, domain)
        session = engine.open_session("alice", 10.0)
        ticket = engine.submit("alice", identity_workload(domain), 0.5)
        assert ticket.cancel() is True
        assert ticket.status == CANCELLED
        assert ticket.done()
        with pytest.raises(QueryCancelledError):
            ticket.result()
        # The flush skips the cancelled ticket entirely.
        resolved = engine.flush()
        assert ticket not in resolved or ticket.status == CANCELLED
        assert session.spent() == 0.0
        assert engine.stats.queries_cancelled == 1
        engine.close()

    def test_cancel_after_resolution_fails(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        ticket = engine.submit("alice", identity_workload(domain), 0.5)
        engine.flush()
        assert ticket.status == "answered"
        assert ticket.cancel() is False
        assert ticket.status == "answered"
        engine.close()

    def test_double_cancel_second_loses(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        ticket = engine.submit("alice", identity_workload(domain), 0.5)
        assert ticket.cancel() is True
        assert ticket.cancel() is False
        assert engine.stats.queries_cancelled == 1
        engine.close()

    def test_cancelled_ticket_does_not_shift_rng_for_others(self, database, domain):
        def run(with_cancel: bool) -> np.ndarray:
            engine = build_engine(database, domain)
            engine.open_session("alice", 10.0)
            if with_cancel:
                engine.submit("alice", total_workload(domain), 0.5).cancel()
            live = engine.submit("alice", identity_workload(domain), 0.25)
            engine.flush()
            answers = live.result()
            engine.close()
            return answers

        np.testing.assert_array_equal(run(True), run(False))


# ------------------------------------------------------------------- admission
class TestTokenBucket:
    def test_burst_then_dry_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        start = time.monotonic()
        assert bucket.try_acquire(start)
        assert bucket.try_acquire(start)
        assert not bucket.try_acquire(start)
        # 0.1 s refills one token at 10/s.
        assert bucket.try_acquire(start + 0.1)
        assert not bucket.try_acquire(start + 0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        start = time.monotonic()
        for _ in range(3):
            assert bucket.try_acquire(start)
        # A long idle period refills to burst, not beyond.
        later = start + 60.0
        for _ in range(3):
            assert bucket.try_acquire(later)
        assert not bucket.try_acquire(later)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestAdmissionController:
    def test_queue_full_sheds_503(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        control = AdmissionController(engine, max_pending=2)
        engine.submit("alice", identity_workload(domain), 0.1)
        engine.submit("alice", identity_workload(domain), 0.1)
        decision = control.admit("alice")
        assert decision is not None
        assert decision.status == 503
        assert decision.reason == "queue_full"
        assert decision.retry_after > 0
        engine.flush()
        assert control.admit("alice") is None
        engine.close()

    def test_inflight_cap_releases_on_any_terminal_path(self, database, domain):
        engine = build_engine(database, domain)
        engine.open_session("alice", 10.0)
        control = AdmissionController(engine, max_pending=100, max_inflight=2)
        t1 = engine.submit("alice", identity_workload(domain), 0.1)
        control.register(t1)
        t2 = engine.submit("alice", total_workload(domain), 0.1)
        control.register(t2)
        assert control.inflight == 2
        decision = control.admit("alice")
        assert decision is not None and decision.reason == "inflight_cap"
        # Cancellation is a terminal path: it must free the slot.
        assert t2.cancel()
        assert control.inflight == 1
        assert control.admit("alice") is None
        engine.flush()
        assert control.inflight == 0
        engine.close()

    def test_per_client_rate_limit_sheds_429(self, database, domain):
        engine = build_engine(database, domain)
        control = AdmissionController(engine, client_rate=1.0, client_burst=1.0)
        assert control.admit("alice") is None
        decision = control.admit("alice")
        assert decision is not None
        assert decision.status == 429
        assert decision.reason == "rate_limited"
        # Another client has its own bucket.
        assert control.admit("bob") is None
        engine.close()

    def test_draining_beats_every_other_check(self, database, domain):
        engine = build_engine(database, domain)
        control = AdmissionController(engine)
        decision = control.admit("alice", draining=True)
        assert decision is not None
        assert decision.status == 503
        assert decision.reason == "draining"
        engine.close()

    def test_shed_counters_flow_to_metrics(self, database, domain):
        engine = build_engine(database, domain)
        control = AdmissionController(engine, client_rate=1.0, client_burst=1.0)
        control.admit("alice")
        control.admit("alice")  # shed: rate_limited
        control.admit("bob", draining=True)  # shed: draining
        text = engine.observability.metrics.to_prometheus_text()
        assert 'serving_shed_total{reason="rate_limited"} 1' in text
        assert 'serving_shed_total{reason="draining"} 1' in text
        engine.close()

    def test_retry_after_tracks_flush_latency_ewma(self, database, domain):
        engine = build_engine(database, domain)
        control = AdmissionController(engine)
        assert control.retry_after() == control.min_retry_after
        control.observe_flush_seconds(1.0)
        assert control.retry_after() == pytest.approx(2.0)
        control.observe_flush_seconds(0.5)
        # EWMA: 0.8 * 1.0 + 0.2 * 0.5 = 0.9 → retry 1.8.
        assert control.retry_after() == pytest.approx(1.8)
        engine.close()

    def test_invalid_limits_rejected(self, database, domain):
        engine = build_engine(database, domain)
        with pytest.raises(ValueError):
            AdmissionController(engine, max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(engine, max_inflight=-1)
        engine.close()


# -------------------------------------------------------------- HTTP overload
def dispatch(app, method, path, body=None, headers=None):
    """Dispatch one request straight into the app (no socket)."""
    payload = json.dumps(body).encode() if body is not None else b""
    request = Request(
        method=method,
        path=path,
        query={},
        headers={k.lower(): v for k, v in (headers or {}).items()},
        body=payload,
        keep_alive=True,
    )
    return asyncio.run(app.dispatch(request))


class TestServingOverload:
    def make_app(self, database, domain, **kwargs):
        engine = build_engine(database, domain)
        engine.open_session("alice", 20.0)
        app = create_app(engine, max_batch_size=1000, max_delay=60.0, **kwargs)
        return engine, app

    def submit_body(self, epsilon=0.1, wait=False):
        return {
            "client_id": "alice",
            "workload": {"kind": "identity"},
            "epsilon": epsilon,
            "wait": wait,
        }

    def test_shed_queue_full_over_http(self, database, domain):
        engine, app = self.make_app(database, domain)
        app.admission = AdmissionController(engine, max_pending=1)

        async def scenario():
            first = await app.dispatch(
                Request("POST", "/api/queries", {}, {},
                        json.dumps(self.submit_body()).encode(), True)
            )
            second = await app.dispatch(
                Request("POST", "/api/queries", {}, {},
                        json.dumps(self.submit_body()).encode(), True)
            )
            await app.aclose()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == 202
        assert second.status == 503
        shed = json.loads(second.body)
        assert shed["reason"] == "queue_full"
        assert int(second.headers["Retry-After"]) >= 1
        engine.close()

    def test_shed_rate_limited_is_429(self, database, domain):
        engine, app = self.make_app(database, domain)
        app.admission = AdmissionController(engine, client_rate=1.0, client_burst=1.0)

        async def scenario():
            first = await app.dispatch(
                Request("POST", "/api/queries", {}, {},
                        json.dumps(self.submit_body()).encode(), True)
            )
            second = await app.dispatch(
                Request("POST", "/api/queries", {}, {},
                        json.dumps(self.submit_body()).encode(), True)
            )
            await app.aclose()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == 202
        assert second.status == 429
        assert json.loads(second.body)["reason"] == "rate_limited"
        assert "Retry-After" in second.headers
        engine.close()

    def test_shed_costs_zero_epsilon(self, database, domain):
        engine, app = self.make_app(database, domain)
        app.admission = AdmissionController(engine, client_rate=1.0, client_burst=1.0)
        session = engine.session("alice")

        async def scenario():
            for _ in range(5):
                await app.dispatch(
                    Request("POST", "/api/queries", {}, {},
                            json.dumps(self.submit_body()).encode(), True)
                )
            await app.aclose()

        asyncio.run(scenario())
        # One admitted (drained by aclose), four shed before submit.
        assert session.spent() == pytest.approx(0.1)
        assert engine.stats.queries_submitted == 1
        engine.close()

    def test_request_deadline_header_expires_at_zero_epsilon(self, database, domain):
        engine, app = self.make_app(database, domain)
        session = engine.session("alice")

        async def scenario():
            response = await app.dispatch(
                Request(
                    "POST", "/api/queries", {},
                    {"x-request-deadline": str(time.time() - 5.0)},
                    json.dumps(self.submit_body()).encode(), True,
                )
            )
            await app.aclose()
            return response

        response = asyncio.run(scenario())
        assert response.status == 202
        payload = json.loads(response.body)
        assert payload["status"] == "expired"
        assert "error" in payload
        assert session.spent() == 0.0
        engine.close()

    def test_bad_deadline_header_is_400(self, database, domain):
        engine, app = self.make_app(database, domain)

        async def scenario():
            response = await app.dispatch(
                Request(
                    "POST", "/api/queries", {},
                    {"x-request-deadline": "not-a-number"},
                    json.dumps(self.submit_body()).encode(), True,
                )
            )
            await app.aclose()
            return response

        assert asyncio.run(scenario()).status == 400
        engine.close()

    def test_cancel_endpoint_lifecycle(self, database, domain):
        engine, app = self.make_app(database, domain)

        async def scenario():
            submitted = await app.dispatch(
                Request("POST", "/api/queries", {}, {},
                        json.dumps(self.submit_body()).encode(), True)
            )
            ticket_id = json.loads(submitted.body)["ticket_id"]
            first = await app.dispatch(
                Request("DELETE", f"/api/queries/{ticket_id}", {}, {}, b"", True)
            )
            second = await app.dispatch(
                Request("DELETE", f"/api/queries/{ticket_id}", {}, {}, b"", True)
            )
            missing = await app.dispatch(
                Request("DELETE", "/api/queries/99999", {}, {}, b"", True)
            )
            listed = await app.dispatch(
                Request("GET", "/api/queries", {"status": "cancelled"}, {}, b"", True)
            )
            await app.aclose()
            return first, second, missing, listed

        first, second, missing, listed = asyncio.run(scenario())
        assert first.status == 200
        assert json.loads(first.body)["status"] == "cancelled"
        assert second.status == 409
        assert missing.status == 404
        items = json.loads(listed.body)["items"]
        assert len(items) == 1 and items[0]["status"] == "cancelled"
        assert engine.session("alice").spent() == 0.0
        engine.close()

    def test_cancel_answered_ticket_is_409_no_refund(self, database, domain):
        engine, app = self.make_app(database, domain)
        session = engine.session("alice")

        async def scenario():
            submitted = await app.dispatch(
                Request("POST", "/api/queries", {}, {},
                        json.dumps(self.submit_body(wait=False)).encode(), True)
            )
            ticket_id = json.loads(submitted.body)["ticket_id"]
            await app.async_engine.flush()
            cancel = await app.dispatch(
                Request("DELETE", f"/api/queries/{ticket_id}", {}, {}, b"", True)
            )
            await app.aclose()
            return cancel

        cancel = asyncio.run(scenario())
        assert cancel.status == 409
        assert json.loads(cancel.body)["status"] == "answered"
        assert session.spent() == pytest.approx(0.1)
        engine.close()

    def test_ready_flips_on_drain_health_stays_green(self, database, domain):
        engine, app = self.make_app(database, domain)

        async def scenario():
            ready_before = await app.dispatch(Request("GET", "/ready", {}, {}, b"", True))
            app.drain()
            ready_after = await app.dispatch(Request("GET", "/ready", {}, {}, b"", True))
            health_after = await app.dispatch(Request("GET", "/health", {}, {}, b"", True))
            shed = await app.dispatch(
                Request("POST", "/api/queries", {}, {},
                        json.dumps(self.submit_body()).encode(), True)
            )
            await app.aclose()
            return ready_before, ready_after, health_after, shed

        ready_before, ready_after, health_after, shed = asyncio.run(scenario())
        assert ready_before.status == 200
        assert ready_after.status == 503
        assert "Retry-After" in ready_after.headers
        assert health_after.status == 200
        assert shed.status == 503
        assert json.loads(shed.body)["reason"] == "draining"
        engine.close()

    def test_expired_counter_on_metrics_endpoint(self, database, domain):
        engine, app = self.make_app(database, domain)

        async def scenario():
            await app.dispatch(
                Request(
                    "POST", "/api/queries", {},
                    {"x-request-deadline": str(time.time() - 5.0)},
                    json.dumps(self.submit_body()).encode(), True,
                )
            )
            metrics = await app.dispatch(Request("GET", "/metrics", {}, {}, b"", True))
            await app.aclose()
            return metrics

        text = asyncio.run(scenario()).body.decode()
        assert "engine_queries_expired_total 1" in text
        engine.close()


# ------------------------------------------------------------- graceful drain
class TestGracefulDrain:
    def test_sigterm_drains_inflight_and_exits_zero(self, tmp_path):
        """Boot the real server, load it, SIGTERM it, assert a clean drain.

        The acceptance gate: every in-flight ticket resolves (the drain
        banner reports pending=0), readiness flips during the drain, and
        the process exits 0.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.setdefault("PYTHONUNBUFFERED", "1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.engine.serving", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        try:
            banner = proc.stdout.readline()
            assert "serving on http://" in banner
            port = int(banner.rstrip().rsplit(":", 1)[1])

            async def load():
                async def call(method, path, body=None):
                    reader, writer = await asyncio.open_connection("127.0.0.1", port)
                    payload = json.dumps(body).encode() if body is not None else b""
                    writer.write(
                        (
                            f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
                            f"Content-Length: {len(payload)}\r\n"
                            "Connection: close\r\n\r\n"
                        ).encode()
                        + payload
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                    return int(raw.split(b" ", 2)[1])

                assert await call(
                    "POST",
                    "/api/clients",
                    {"client_id": "alice", "epsilon_allotment": 2.0},
                ) == 201
                # Queue work without waiting so it is genuinely in flight
                # when the SIGTERM lands.
                for _ in range(5):
                    status = await call(
                        "POST",
                        "/api/queries",
                        {
                            "client_id": "alice",
                            "workload": {"kind": "identity"},
                            "epsilon": 0.05,
                        },
                    )
                    assert status == 202
                assert await call("GET", "/ready") == 200

            asyncio.run(load())
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
            drain_lines = [l for l in out.splitlines() if l.startswith("drain complete:")]
            assert drain_lines, out
            assert "pending=0" in drain_lines[0]
            # Every admitted ticket resolved: 5 queued queries answered.
            assert "answered=5" in drain_lines[0]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
