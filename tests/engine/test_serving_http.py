"""The HTTP front-end: endpoints, status codes, pagination, determinism."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import Database, Domain, cumulative_workload, identity_workload
from repro.engine import PrivateQueryEngine
from repro.engine.serving import ServingServer, create_app
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[4, 8, 13]] = [6.0, 2.0, 11.0]
    return Database(domain, counts, name="http16")


def build_engine(database: Database, domain: Domain, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=43,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


async def http(host, port, method, path, body=None, headers=None):
    """Minimal raw HTTP/1.1 client: (status, decoded JSON or text)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    status = int(raw.split(b" ", 2)[1])
    head, _, body_bytes = raw.partition(b"\r\n\r\n")
    if b"application/json" in head:
        return status, json.loads(body_bytes) if body_bytes else None
    return status, body_bytes.decode()


def serve(engine, scenario, **app_options):
    """Run ``scenario(host, port, server)`` against a live server."""

    async def runner():
        app = create_app(engine, **app_options)
        async with ServingServer(app) as server:
            return await scenario(server.host, server.port, server)

    return asyncio.run(runner())


class TestServiceEndpoints:
    def test_health(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            return await http(host, port, "GET", "/health")

        status, payload = serve(engine, scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["pending"] == 0

    def test_metrics_exposes_prometheus_text(self, database, domain):
        from repro.engine import Observability

        engine = build_engine(
            database, domain, observability=Observability(enabled=True)
        )

        async def scenario(host, port, server):
            await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 1.0},
            )
            await http(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "total"},
                    "epsilon": 0.25,
                    "wait": True,
                    "timeout": 10,
                },
            )
            return await http(host, port, "GET", "/metrics")

        status, text = serve(engine, scenario, max_delay=0.01)
        assert status == 200
        assert "# TYPE engine_queries_submitted_total counter" in text
        assert "engine_queries_answered_total 1" in text

    def test_unknown_route_and_wrong_method(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            return (
                await http(host, port, "GET", "/nope"),
                await http(host, port, "DELETE", "/health"),
            )

        (missing_status, _), (method_status, _) = serve(engine, scenario)
        assert missing_status == 404
        assert method_status == 405


class TestClientEndpoints:
    def test_register_then_budget_then_close(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            created = await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 1.5},
            )
            duplicate = await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 1.5},
            )
            budget = await http(host, port, "GET", "/api/clients/alice/budget")
            missing = await http(host, port, "GET", "/api/clients/ghost/budget")
            closed = await http(host, port, "DELETE", "/api/clients/alice")
            reclosed = await http(host, port, "DELETE", "/api/clients/alice")
            return created, duplicate, budget, missing, closed, reclosed

        created, duplicate, budget, missing, closed, reclosed = serve(engine, scenario)
        assert created[0] == 201
        assert created[1]["remaining"] == pytest.approx(1.5)
        assert duplicate[0] == 409
        assert budget[0] == 200
        assert budget[1]["client_id"] == "alice"
        assert missing[0] == 404
        assert closed[0] == 200
        assert closed[1]["refunded"] == pytest.approx(1.5)
        assert reclosed[0] == 409

    def test_register_rejects_bad_bodies_and_overdrafts(self, database, domain):
        engine = build_engine(database, domain, total_epsilon=1.0)

        async def scenario(host, port, server):
            return (
                await http(host, port, "POST", "/api/clients", {"client_id": ""}),
                await http(
                    host,
                    port,
                    "POST",
                    "/api/clients",
                    {"client_id": "a", "epsilon_allotment": "lots"},
                ),
                await http(
                    host,
                    port,
                    "POST",
                    "/api/clients",
                    {"client_id": "greedy", "epsilon_allotment": 99.0},
                ),
            )

        (empty, _), (non_numeric, _), (overdraft, _) = serve(engine, scenario)
        assert empty == 400
        assert non_numeric == 400
        assert overdraft == 403

    def test_client_listing_pages_and_sorts(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            for index in range(3):
                await http(
                    host,
                    port,
                    "POST",
                    "/api/clients",
                    {"client_id": f"c{index}", "epsilon_allotment": 1.0 + index},
                )
            return (
                await http(
                    host, port, "GET", "/api/clients?sort=-allotment&limit=2"
                ),
                await http(host, port, "GET", "/api/clients?limit=2&offset=2"),
                await http(host, port, "GET", "/api/clients?sort=shoe_size"),
            )

        (s1, page1), (s2, page2), (s3, invalid) = serve(engine, scenario)
        assert s1 == 200
        assert [item["client_id"] for item in page1["items"]] == ["c2", "c1"]
        assert page1["page"] == {"total": 3, "limit": 2, "offset": 0, "has_more": True}
        assert s2 == 200
        assert [item["client_id"] for item in page2["items"]] == ["c2"]
        assert page2["page"]["has_more"] is False
        assert s3 == 400
        assert "shoe_size" in invalid["error"]


class TestQueryEndpoints:
    def test_submit_wait_answers_inline(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 2.0},
            )
            return await http(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "identity"},
                    "epsilon": 0.5,
                    "wait": True,
                    "timeout": 10,
                },
            )

        status, payload = serve(engine, scenario, max_delay=0.01)
        assert status == 200
        assert payload["status"] == "answered"
        assert len(payload["answers"]) == domain.size
        assert payload["from_cache"] is False

    def test_submit_then_poll_and_flush(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 2.0},
            )
            accepted = await http(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "cumulative"},
                    "epsilon": 0.5,
                },
            )
            ticket_id = accepted[1]["ticket_id"]
            flushed = await http(host, port, "POST", "/api/flush")
            polled = await http(host, port, "GET", f"/api/queries/{ticket_id}")
            missing = await http(host, port, "GET", "/api/queries/999999")
            malformed = await http(host, port, "GET", "/api/queries/xyz")
            return accepted, flushed, polled, missing, malformed

        accepted, flushed, polled, missing, malformed = serve(
            engine, scenario, max_delay=30.0, max_batch_size=64
        )
        assert accepted[0] == 202
        assert accepted[1]["status"] == "pending"
        assert "answers" not in accepted[1]
        assert flushed[0] == 200
        assert flushed[1]["resolved"] == 1
        assert polled[0] == 200
        assert polled[1]["status"] == "answered"
        assert len(polled[1]["answers"]) == domain.size
        assert missing[0] == 404
        assert malformed[0] == 400

    def test_query_validation_statuses(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 2.0},
            )
            return (
                await http(
                    host,
                    port,
                    "POST",
                    "/api/queries",
                    {
                        "client_id": "ghost",
                        "workload": {"kind": "identity"},
                        "epsilon": 0.5,
                    },
                ),
                await http(
                    host,
                    port,
                    "POST",
                    "/api/queries",
                    {
                        "client_id": "alice",
                        "workload": {"kind": "septagonal"},
                        "epsilon": 0.5,
                    },
                ),
                await http(
                    host,
                    port,
                    "POST",
                    "/api/queries",
                    {
                        "client_id": "alice",
                        "workload": {"kind": "rows", "rows": [[1.0, 2.0]]},
                        "epsilon": 0.5,
                    },
                ),
                await http(host, port, "POST", "/api/queries", None),
            )

        statuses = [status for status, _ in serve(engine, scenario)]
        assert statuses == [404, 400, 400, 400]

    def test_refusal_is_a_payload_not_an_http_error(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "poor", "epsilon_allotment": 0.1},
            )
            return await http(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "poor",
                    "workload": {"kind": "identity"},
                    "epsilon": 5.0,
                    "wait": True,
                    "timeout": 10,
                },
            )

        status, payload = serve(engine, scenario, max_delay=0.01)
        # The transport succeeded; the *privacy* layer refused.
        assert status == 200
        assert payload["status"] == "refused"
        assert "poor" in payload["error"]

    def test_query_listing_filters_sorts_and_pages(self, database, domain):
        engine = build_engine(database, domain)

        async def scenario(host, port, server):
            for client, allotment in (("alice", 2.0), ("bob", 2.0)):
                await http(
                    host,
                    port,
                    "POST",
                    "/api/clients",
                    {"client_id": client, "epsilon_allotment": allotment},
                )
            for client, epsilon in (("alice", 0.5), ("bob", 0.25), ("alice", 0.125)):
                await http(
                    host,
                    port,
                    "POST",
                    "/api/queries",
                    {
                        "client_id": client,
                        "workload": {"kind": "total"},
                        "epsilon": epsilon,
                        "wait": True,
                        "timeout": 10,
                    },
                )
            return (
                await http(host, port, "GET", "/api/queries?sort=-epsilon"),
                await http(host, port, "GET", "/api/queries?client_id=alice"),
                await http(host, port, "GET", "/api/queries?status=answered&limit=2"),
                await http(host, port, "GET", "/api/queries?status=bogus"),
                await http(host, port, "GET", "/api/queries?limit=-3"),
            )

        (s1, by_eps), (s2, alices), (s3, answered), (s4, _), (s5, _) = serve(
            engine, scenario, max_delay=0.01
        )
        assert s1 == 200
        assert [item["epsilon"] for item in by_eps["items"]] == [0.5, 0.25, 0.125]
        assert all("answers" not in item for item in by_eps["items"])
        assert s2 == 200
        assert {item["client_id"] for item in alices["items"]} == {"alice"}
        assert alices["page"]["total"] == 2
        assert s3 == 200
        assert answered["page"] == {
            "total": 3,
            "limit": 2,
            "offset": 0,
            "has_more": True,
        }
        assert s4 == 400
        assert s5 == 400


class TestObservabilityIntegration:
    def test_request_id_header_reaches_the_audit_stream(
        self, database, domain, tmp_path
    ):
        from repro.engine import Observability

        audit_path = tmp_path / "audit.jsonl"
        engine = build_engine(
            database,
            domain,
            observability=Observability(enabled=True, audit_path=str(audit_path)),
        )

        async def scenario(host, port, server):
            await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 2.0},
                headers={"X-Request-Id": "req-register-7"},
            )
            return await http(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "total"},
                    "epsilon": 0.5,
                    "wait": True,
                    "timeout": 10,
                },
                headers={"X-Request-Id": "req-query-9"},
            )

        status, answered = serve(engine, scenario, max_delay=0.01)
        assert status == 200
        records = [
            json.loads(line)
            for line in audit_path.read_text().splitlines()
            if line.strip()
        ]
        # Budget mutations performed *inside* a request's handler carry that
        # request's id and path as ambient audit context: the session-open
        # reservation is attributed to the register call.
        register_events = [
            record for record in records if record.get("request_id") == "req-register-7"
        ]
        assert register_events
        assert all(
            record["path"] == "/api/clients" for record in register_events
        )
        # The query's ε charge happens in the *batched* flush — one flush
        # serves many requests, so it is deliberately NOT pinned to a single
        # request id; attribution flows through the ticket id the submit
        # response returned.
        charge = next(
            record
            for record in records
            if record["event"] == "charge" and record.get("ticket_id") is not None
        )
        assert charge["ticket_id"] == answered["ticket_id"]
        assert charge["client_id"] == "alice"

    def test_http_path_is_byte_identical_to_direct_flush(self, database, domain):
        """The tentpole determinism gate at the outermost layer: a seeded
        engine served over HTTP draws exactly what a direct flush draws,
        and charges exactly the same ledger."""
        direct = build_engine(database, domain)
        direct.open_session("alice", 2.0)
        tickets = [
            direct.submit("alice", identity_workload(domain), 0.5),
            direct.submit("alice", cumulative_workload(domain), 0.25),
        ]
        direct.flush()
        direct_answers = [ticket.result() for ticket in tickets]

        served = build_engine(database, domain)

        async def scenario(host, port, server):
            await http(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 2.0},
            )
            first = await http(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "identity"},
                    "epsilon": 0.5,
                },
            )
            second = await http(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "cumulative"},
                    "epsilon": 0.25,
                },
            )
            await http(host, port, "POST", "/api/flush")
            return (
                await http(host, port, "GET", f"/api/queries/{first[1]['ticket_id']}"),
                await http(host, port, "GET", f"/api/queries/{second[1]['ticket_id']}"),
            )

        # Same flush boundary as the direct engine: one flush for both.
        (_, first), (_, second) = serve(
            engine=served, scenario=scenario, max_batch_size=64, max_delay=30.0
        )
        assert first["answers"] == [float(v) for v in direct_answers[0]]
        assert second["answers"] == [float(v) for v in direct_answers[1]]

        def ledger(engine):
            return [
                (op.label, op.epsilon, op.partition)
                for op in engine.session("alice").accountant.operations
            ]

        assert ledger(direct) == ledger(served)
