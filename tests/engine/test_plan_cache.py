"""Plan cache: memoisation, counters, LRU eviction and transform sharing."""

from __future__ import annotations

import pytest

from repro.core import Domain, identity_workload
from repro.engine import PlanCache
from repro.policy import line_policy, threshold_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


class TestPlanCacheHitsAndMisses:
    def test_first_lookup_is_a_miss_then_hits(self, domain):
        cache = PlanCache()
        policy = line_policy(domain)
        first = cache.plan_for(policy, 1.0)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        second = cache.plan_for(policy, 1.0)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert second is first

    def test_equal_policy_built_twice_shares_entry(self, domain):
        """Cache keys are content signatures, not object identity."""
        cache = PlanCache()
        first = cache.plan_for(line_policy(domain), 1.0)
        second = cache.plan_for(line_policy(domain), 1.0)
        assert second is first
        assert cache.stats.hits == 1

    def test_different_epsilon_is_a_different_entry(self, domain):
        cache = PlanCache()
        policy = line_policy(domain)
        a = cache.plan_for(policy, 1.0)
        b = cache.plan_for(policy, 0.5)
        assert a is not b
        assert cache.stats.misses == 2

    def test_hit_rate(self, domain):
        cache = PlanCache()
        policy = line_policy(domain)
        for _ in range(4):
            cache.plan_for(policy, 1.0)
        assert cache.stats.hit_rate == pytest.approx(3 / 4)


class TestTransformSharing:
    def test_plan_mechanism_shares_the_cached_transform(self, domain):
        """The planner's transform is the mechanism's transform (no rebuild)."""
        cache = PlanCache()
        entry = cache.plan_for(line_policy(domain), 1.0, prefer_data_dependent=False)
        assert entry.plan.algorithm.mechanism.transform is entry.transform

    def test_mechanism_workload_cache_is_content_keyed(self, domain):
        """Equal-but-distinct Workload objects hit the mechanism's W_G cache."""
        cache = PlanCache()
        entry = cache.plan_for(line_policy(domain), 1.0, prefer_data_dependent=False)
        mechanism = entry.plan.algorithm.mechanism
        first = mechanism._transformed_workload(identity_workload(domain))
        second = mechanism._transformed_workload(identity_workload(domain))
        assert second is first


class TestEviction:
    def test_lru_eviction(self, domain):
        cache = PlanCache(maxsize=2)
        policy = line_policy(domain)
        cache.plan_for(policy, 1.0)
        cache.plan_for(policy, 2.0)
        cache.plan_for(policy, 1.0)  # refresh ε=1 entry
        cache.plan_for(policy, 3.0)  # evicts ε=2, the least recently used
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.plan_for(policy, 1.0)
        assert cache.stats.hits == 2  # ε=1 survived the eviction (refresh + final)
        assert cache.stats.misses == 3  # ε=1, ε=2, ε=3 cold plans only

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestPlanRoutes:
    def test_cached_plan_keeps_planner_route(self, domain):
        cache = PlanCache()
        tree = cache.plan_for(line_policy(domain), 1.0)
        assert tree.plan.route == "tree"
        spanner = cache.plan_for(threshold_policy(domain, 3), 1.0)
        assert spanner.plan.route == "spanner"
