"""The process-wide factorisation store: sharing, eviction, worker locality."""

from __future__ import annotations

import gc
import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import Database, Domain, identity_workload
from repro.engine import PLAN_STORE_FORMAT, PlanCache, PrivateQueryEngine
from repro.engine.factorisation import (
    FactorisationStore,
    get_store,
    matrix_digest,
    set_store,
    set_store_enabled,
)
from repro.engine.plan_cache import read_plan_store, write_plan_store
from repro.exceptions import MechanismError
from repro.blowfish.matrix_mechanism import PolicyMatrixMechanism
from repro.blowfish.strategies import grid_slab_strategy, strategy_digest
from repro.policy import PolicyGraph, grid_policy, line_policy
from repro.policy.transform import PolicyTransform


@pytest.fixture
def fresh_store():
    """Swap in an empty store so counters start from zero, restore after."""
    store = FactorisationStore()
    previous = set_store(store)
    try:
        yield store
    finally:
        set_store(previous)


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(16, dtype=float), name="ramp16")


class TestMatrixDigest:
    def test_digest_is_content_addressed(self):
        dense = np.eye(4)
        assert matrix_digest(sp.csr_matrix(dense)) == matrix_digest(
            sp.coo_matrix(dense)
        )
        assert matrix_digest(dense) == matrix_digest(sp.csr_matrix(dense))

    def test_digest_separates_different_content(self):
        assert matrix_digest(np.eye(4)) != matrix_digest(2.0 * np.eye(4))
        assert matrix_digest(np.eye(4)) != matrix_digest(np.eye(5))


class TestStoreCore:
    def test_hit_and_miss_counting(self, fresh_store):
        built = []

        def build():
            built.append(1)
            return object()

        first = fresh_store.get_or_build("gram", "d1", build)
        second = fresh_store.get_or_build("gram", "d1", build)
        assert first is second
        assert len(built) == 1
        stats = fresh_store.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_kinds_do_not_collide(self, fresh_store):
        a = fresh_store.get_or_build("gram", "d1", object)
        b = fresh_store.get_or_build("strategy-pinv", "d1", object)
        assert a is not b
        assert len(fresh_store) == 2

    def test_weakref_eviction_reclaims_entry(self, fresh_store):
        handle = fresh_store.get_or_build("gram", "d1", object)
        assert len(fresh_store) == 1
        del handle
        gc.collect()
        assert len(fresh_store) == 0
        # The next lookup honestly rebuilds (a miss, not a dangling hit).
        fresh_store.get_or_build("gram", "d1", object)
        assert fresh_store.stats().misses == 2

    def test_failed_build_caches_nothing(self, fresh_store):
        with pytest.raises(ValueError):
            fresh_store.get_or_build(
                "gram", "d1", lambda: (_ for _ in ()).throw(ValueError("boom"))
            )
        assert len(fresh_store) == 0
        handle = fresh_store.get_or_build("gram", "d1", object)
        assert handle.value is not None

    def test_disabled_store_builds_privately(self, fresh_store):
        previous = set_store_enabled(False)
        try:
            a = fresh_store.get_or_build("gram", "d1", object)
            b = fresh_store.get_or_build("gram", "d1", object)
        finally:
            set_store_enabled(previous)
        assert a is not b
        assert len(fresh_store) == 0
        assert fresh_store.stats().misses == 0


class TestCrossObjectSharing:
    def test_equal_transforms_share_one_gram_factorisation(
        self, fresh_store, domain, database
    ):
        first = PolicyTransform(line_policy(domain))
        second = PolicyTransform(line_policy(domain))
        assert first.gram_digest == second.gram_digest
        first.transform_database(database)
        second.transform_database(database)
        assert second._gram_handle is first._gram_handle
        gram_stats = fresh_store.stats()
        assert gram_stats.hits >= 1

    def test_plans_from_separate_caches_share_the_store(
        self, fresh_store, domain, database
    ):
        # Engine-level and per-shard plan caches are distinct objects; the
        # store is what makes them share Gram work for the same policy.
        entry_a = PlanCache().plan_for(
            line_policy(domain), 0.5, prefer_data_dependent=True, consistency=True
        )
        entry_b = PlanCache().plan_for(
            line_policy(domain), 0.25, prefer_data_dependent=True, consistency=True
        )
        entry_a.transform.transform_database(database)
        before = fresh_store.stats()
        entry_b.transform.transform_database(database)
        after = fresh_store.stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_workload_products_shared_across_epsilons(
        self, fresh_store, domain, database
    ):
        workload = identity_workload(domain)
        low = PolicyMatrixMechanism(line_policy(domain), epsilon=0.5)
        high = PolicyMatrixMechanism(line_policy(domain), epsilon=2.0)
        low.answer(workload, database, np.random.default_rng(0))
        before = fresh_store.stats()
        high.answer(workload, database, np.random.default_rng(0))
        after = fresh_store.stats()
        assert after.hits > before.hits

    def test_strategy_pseudo_inverse_derived_once_per_content(self, fresh_store):
        grid = Domain((8, 8))
        policy = grid_policy(grid)
        database = Database(grid, np.ones(64))
        workload = identity_workload(grid)
        a = PolicyMatrixMechanism(policy, epsilon=0.5, strategy=grid_slab_strategy)
        b = PolicyMatrixMechanism(policy, epsilon=2.0, strategy=grid_slab_strategy)
        assert strategy_digest(a.strategy) == strategy_digest(b.strategy)
        model_a = a.noise_model(workload)
        pinv_builds = fresh_store.stats().misses
        model_b = b.noise_model(workload)
        assert model_a is not None and model_b is not None
        # The second mechanism re-used the stored A⁺ (and the shared W_G):
        # no additional pinv build happened.
        assert fresh_store.stats().misses == pinv_builds
        np.testing.assert_allclose(model_a.stds, model_b.stds * 4.0)

    def test_unpickled_transform_reattaches_by_digest(
        self, fresh_store, domain, database
    ):
        transform = PolicyTransform(line_policy(domain))
        transform.transform_database(database)
        builds = fresh_store.stats().misses
        clone = pickle.loads(pickle.dumps(transform))
        np.testing.assert_allclose(
            clone.transform_database(database), transform.transform_database(database)
        )
        # Re-resolution found the resident entry: zero extra factorisations.
        assert fresh_store.stats().misses == builds


class TestNoiseModelLsqrCap:
    def test_wide_slab_strategy_gets_exact_model_past_old_cap(self, fresh_store):
        # 32×32 grid: the transformed identity workload has 1024 rows — past
        # the PR 4 cap of 512 — and the slab strategy carries no explicit
        # pseudo-inverse.  The store-derived A⁺ must produce an exact model
        # anyway (the old code returned the None proxy here).
        grid = Domain((32, 32))
        policy = grid_policy(grid)
        mechanism = PolicyMatrixMechanism(
            policy, epsilon=1.0, strategy=grid_slab_strategy
        )
        workload = identity_workload(grid)
        assert workload.num_queries > 512
        model = mechanism.noise_model(workload)
        assert model is not None
        assert model.basis is not None
        assert model.stds.shape == (workload.num_queries,)


class TestPlanStoreFormatCompat:
    def test_current_format_is_2(self):
        assert PLAN_STORE_FORMAT == 2

    def test_version_1_store_still_loads(self, tmp_path, domain, database):
        engine = PrivateQueryEngine(
            database, total_epsilon=10.0, default_policy=line_policy(domain)
        )
        engine.open_session("a", 5.0)
        engine.ask("a", identity_workload(domain), epsilon=0.5)
        path = tmp_path / "plans.pkl"
        assert engine.save_plans(str(path)) >= 1
        payload = read_plan_store(str(path))
        payload["format"] = 1
        write_plan_store(str(path), payload)

        restarted = PrivateQueryEngine(
            database, total_epsilon=10.0, default_policy=line_policy(domain)
        )
        assert restarted.load_plans(str(path)) >= 1
        restarted.open_session("a", 5.0)
        restarted.ask("a", identity_workload(domain), epsilon=0.5)
        assert restarted.stats.plan_cache_hit_rate == 1.0

    def test_unknown_format_is_rejected(self, tmp_path, domain, database):
        engine = PrivateQueryEngine(
            database, total_epsilon=10.0, default_policy=line_policy(domain)
        )
        engine.open_session("a", 5.0)
        engine.ask("a", identity_workload(domain), epsilon=0.5)
        path = tmp_path / "plans.pkl"
        engine.save_plans(str(path))
        payload = read_plan_store(str(path))
        payload["format"] = 99
        write_plan_store(str(path), payload)
        with pytest.raises(MechanismError, match="format version"):
            PrivateQueryEngine(
                database, total_epsilon=10.0, default_policy=line_policy(domain)
            ).load_plans(str(path))

    def test_loaded_plans_refactorise_at_most_once_per_digest(
        self, fresh_store, tmp_path, domain, database
    ):
        engine = PrivateQueryEngine(
            database, total_epsilon=10.0, default_policy=line_policy(domain)
        )
        engine.open_session("a", 5.0)
        engine.ask("a", identity_workload(domain), epsilon=0.5)
        engine.ask("a", identity_workload(domain), epsilon=0.25)
        path = tmp_path / "plans.pkl"
        engine.save_plans(str(path))

        loaded_store = FactorisationStore()
        previous = set_store(loaded_store)
        try:
            restarted = PrivateQueryEngine(
                database, total_epsilon=10.0, default_policy=line_policy(domain)
            )
            restarted.load_plans(str(path))
            restarted.open_session("a", 5.0)
            restarted.ask("a", identity_workload(domain), epsilon=0.5)
            restarted.ask("a", identity_workload(domain), epsilon=0.25)
            # Drive the Gram path on both re-hydrated plans: the two ε
            # entries share one policy content, so the factorisation builds
            # once and the second plan's lookup hits.
            for _key, entry in restarted.plan_cache.export_entries():
                entry.transform.transform_database(database)
            stats = loaded_store.stats()
        finally:
            set_store(previous)
        assert stats.hits >= 1
        assert stats.misses == 1
        assert stats.entries == 1


class TestEngineStatsSurface:
    def test_stats_carry_store_counters(self, fresh_store, domain, database):
        engine = PrivateQueryEngine(
            database, total_epsilon=10.0, default_policy=line_policy(domain)
        )
        engine.open_session("a", 5.0)
        engine.ask("a", identity_workload(domain), epsilon=0.5)
        engine.ask("a", identity_workload(domain), epsilon=0.25)
        stats = engine.stats
        assert stats.factorisation_misses >= 1
        assert stats.factorisation_hits >= 1
        assert stats.factorisation_entries >= 1
        assert stats.factorisation_build_seconds >= 0.0
        assert 0.0 < stats.factorisation_hit_rate < 1.0

    def test_enabled_engine_exports_store_metrics(self, fresh_store, domain, database):
        from repro.engine import Observability

        engine = PrivateQueryEngine(
            database,
            total_epsilon=10.0,
            default_policy=line_policy(domain),
            observability=Observability(enabled=True),
        )
        engine.open_session("a", 5.0)
        engine.ask("a", identity_workload(domain), epsilon=0.5)
        rendered = engine.observability.metrics.to_prometheus_text()
        assert "engine_factorisation_lookups_total" in rendered
        assert 'result="miss"' in rendered
