"""Pickle round-trips for planning/execution artefacts.

The process-parallel execute backend and plan-store persistence both rest on
one property: every artefact inside a :class:`~repro.engine.CachedPlan`
(transform, spanner, strategy, mechanism, per-shard packaging) survives a
pickle round-trip with working locks and caches, and a round-tripped object
given the same seed draws the same noise.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.blowfish.matrix_mechanism import PolicyMatrixMechanism
from repro.blowfish.tree_mechanism import TreeTransformMechanism
from repro.core import Database, Domain, identity_workload
from repro.core.workload import Workload
from repro.engine import PlanCache, ShardSet
from repro.policy import PolicyGraph, line_policy
from repro.policy.transform import PolicyTransform


@pytest.fixture
def domain() -> Domain:
    return Domain((24,))


@pytest.fixture
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(24, dtype=float), name="ramp24")


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TestCachedPlanRoundTrip:
    @pytest.mark.parametrize(
        "prefer_data_dependent,consistency",
        [(False, False), (False, True), (True, True)],
        ids=["laplace", "consistent", "dawa"],
    )
    def test_round_tripped_plan_answers_identically(
        self, domain, database, prefer_data_dependent, consistency
    ):
        cache = PlanCache()
        entry = cache.plan_for(
            line_policy(domain),
            0.5,
            prefer_data_dependent=prefer_data_dependent,
            consistency=consistency,
        )
        # Force the lazy artefacts (Gram factorisation, workload transform
        # memo) so the round-trip exercises the drop-and-rehydrate path.
        entry.plan.algorithm.answer(
            identity_workload(domain), database, np.random.default_rng(0)
        )
        clone = roundtrip(entry)
        assert clone.key == entry.key
        original = entry.plan.algorithm.answer(
            identity_workload(domain), database, np.random.default_rng(3)
        )
        rehydrated = clone.plan.algorithm.answer(
            identity_workload(domain), database, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(original, rehydrated)

    def test_spanner_route_round_trips(self, database):
        domain = Domain((16,))
        theta_policy = PolicyGraph(
            domain,
            [(i, j) for i in range(16) for j in range(i + 1, min(i + 3, 16))],
            name="G^2_16",
        )
        entry = PlanCache().plan_for(theta_policy, 0.5)
        clone = roundtrip(entry)
        db = Database(domain, np.ones(16))
        workload = identity_workload(domain)
        np.testing.assert_array_equal(
            entry.plan.algorithm.answer(workload, db, np.random.default_rng(5)),
            clone.plan.algorithm.answer(workload, db, np.random.default_rng(5)),
        )


class TestPolicyTransformRoundTrip:
    def test_factorisation_is_dropped_and_rederived(self, domain, database):
        transform = PolicyTransform(line_policy(domain))
        before = transform.transform_database(database)  # factorises
        assert transform._gram_handle is not None
        clone = roundtrip(transform)
        assert clone._gram_handle is None  # closure never crosses
        np.testing.assert_allclose(clone.transform_database(database), before)
        assert clone._gram_handle is not None  # re-resolved on first use
        # Same content digest → same shared store entry, not a second build.
        assert clone._gram_handle is transform._gram_handle

    def test_rehydrated_lock_supports_concurrent_factorisation(
        self, domain, database
    ):
        clone = roundtrip(PolicyTransform(line_policy(domain)))
        results, errors = [], []

        def worker():
            try:
                results.append(clone.transform_database(database))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors and len(results) == 4
        for vector in results[1:]:
            np.testing.assert_array_equal(vector, results[0])


class TestMechanismRoundTrips:
    def test_tree_mechanism_same_seed_same_noise(self, domain, database):
        mechanism = TreeTransformMechanism(line_policy(domain), epsilon=0.5)
        workload = identity_workload(domain)
        mechanism.answer(workload, database, np.random.default_rng(0))  # warm memo
        clone = roundtrip(mechanism)
        np.testing.assert_array_equal(
            mechanism.answer(workload, database, np.random.default_rng(9)),
            clone.answer(workload, database, np.random.default_rng(9)),
        )
        # The rehydrated workload-transform cache still memoises.
        assert len(clone._workload_cache) >= 1

    def test_matrix_mechanism_same_seed_same_noise(self, domain, database):
        mechanism = PolicyMatrixMechanism(line_policy(domain), epsilon=0.5)
        workload = identity_workload(domain)
        clone = roundtrip(mechanism)
        np.testing.assert_array_equal(
            mechanism.answer(workload, database, np.random.default_rng(11)),
            clone.answer(workload, database, np.random.default_rng(11)),
        )
        assert clone.strategy.num_columns == mechanism.strategy.num_columns


class TestShardingRoundTrips:
    @pytest.fixture
    def split_policy(self, domain) -> PolicyGraph:
        half = domain.size // 2
        return PolicyGraph(
            domain,
            edges=[(i, i + 1) for i in range(half - 1)]
            + [(i, i + 1) for i in range(half, domain.size - 1)],
            name="two-segments",
        )

    def test_domain_shard_round_trips_with_working_plan_cache(
        self, split_policy, database
    ):
        shard_set = ShardSet.build(split_policy, database)
        shard = shard_set.shards[0]
        entry = shard.plan_cache.plan_for(
            shard.policy, 0.5, prefer_data_dependent=False, consistency=False
        )
        clone = roundtrip(shard)
        assert clone.index == shard.index
        np.testing.assert_array_equal(clone.cells, shard.cells)
        np.testing.assert_array_equal(clone.database.counts, shard.database.counts)
        # The per-shard plan cache travelled warm and keeps planning.
        clone_entry = clone.plan_cache.plan_for(
            clone.policy, 0.5, prefer_data_dependent=False, consistency=False
        )
        assert clone.plan_cache.stats.hits >= 1
        workload = identity_workload(shard.domain)
        np.testing.assert_array_equal(
            entry.plan.algorithm.answer(
                workload, shard.database, np.random.default_rng(2)
            ),
            clone_entry.plan.algorithm.answer(
                workload, clone.database, np.random.default_rng(2)
            ),
        )

    def test_shard_set_round_trips_with_working_scatter(
        self, split_policy, database, domain
    ):
        shard_set = ShardSet.build(split_policy, database)
        workload = identity_workload(domain)
        assert shard_set.scatter(workload) is not None  # warm the memo
        clone = roundtrip(shard_set)
        assert len(clone) == len(shard_set)
        scatter = clone.scatter(workload)
        assert scatter is not None and len(scatter.pieces) == 2
        spanning = Workload(domain, np.ones((1, domain.size)), name="spanning")
        assert clone.scatter(spanning) is None
