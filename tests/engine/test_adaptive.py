"""Adaptive execute backend: cost-model routing, parity, protocol recovery."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.core.workload import Workload
from repro.engine import ExecuteCostModel, PrivateQueryEngine
from repro.engine.signature import plan_key
from repro.exceptions import PrivacyBudgetError
from repro.policy import PolicyGraph, line_policy

DOMAIN_SIZE = 32
HALF = DOMAIN_SIZE // 2

#: Cost models that force every multi-unit routing decision one way.  The
#: default priors put process overhead at milliseconds and thread overhead
#: at sub-millisecond, so a huge/mid/zero default kernel estimate pins the
#: route without waiting for observations.
FORCE_PROCESS = dict(default_kernel_seconds=60.0)
FORCE_THREAD = dict(default_kernel_seconds=1.5e-3)
FORCE_INLINE = dict(default_kernel_seconds=0.0)


@pytest.fixture(scope="module")
def domain() -> Domain:
    return Domain((DOMAIN_SIZE,))


@pytest.fixture(scope="module")
def database(domain: Domain) -> Database:
    return Database(domain, np.arange(DOMAIN_SIZE, dtype=float), name="ramp")


@pytest.fixture(scope="module")
def split_policy(domain: Domain) -> PolicyGraph:
    return PolicyGraph(
        domain,
        edges=[(i, i + 1) for i in range(HALF - 1)]
        + [(i, i + 1) for i in range(HALF, DOMAIN_SIZE - 1)],
        name="two-segments",
    )


def make_adaptive_engine(database, domain, cost_model=None, **overrides):
    options = dict(
        total_epsilon=100.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=42,
        execute_workers=2,
        execute_backend="adaptive",
        execute_cost_model=cost_model,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


def three_group_flush(engine, domain):
    """Three ε groups → three work units through one flush."""
    tickets = [
        engine.submit("alice", identity_workload(domain), epsilon=0.5),
        engine.submit("alice", cumulative_workload(domain), epsilon=0.25),
        engine.submit("alice", total_workload(domain), epsilon=0.125),
    ]
    engine.flush()
    return tickets


class TestCostModel:
    def test_lone_unit_routes_inline_whatever_the_estimate(self):
        model = ExecuteCostModel(default_kernel_seconds=100.0)
        assert model.route(("any",), flush_units=1) == "inline"

    def test_unobserved_plan_routes_inline_to_seed_the_estimate(self):
        model = ExecuteCostModel()
        assert model.kernel_seconds(("fresh",)) is None
        assert model.route(("fresh",), flush_units=4) == "inline"

    def test_heavy_kernel_routes_to_process(self):
        model = ExecuteCostModel()
        model.observe_kernel(("heavy",), 2.0)
        assert model.route(("heavy",), flush_units=4) == "process"

    def test_mid_kernel_routes_to_thread(self):
        model = ExecuteCostModel(
            thread_overhead_prior=1e-4, process_overhead_prior=1e-2
        )
        model.observe_kernel(("mid",), 1e-3)
        assert model.route(("mid",), flush_units=4) == "thread"

    def test_tiny_kernel_stays_inline(self):
        model = ExecuteCostModel(thread_overhead_prior=1e-3)
        model.observe_kernel(("tiny",), 1e-6)
        assert model.route(("tiny",), flush_units=4) == "inline"

    def test_ewma_tracks_shifting_kernels(self):
        model = ExecuteCostModel(alpha=0.5)
        # Samples 1 and 2 are the warm-up handshake (seed, then replace);
        # EWMA blending starts from the third sample.
        model.observe_kernel(("k",), 1.0)
        model.observe_kernel(("k",), 1.0)
        model.observe_kernel(("k",), 0.0)
        assert model.kernel_seconds(("k",)) == pytest.approx(0.5)
        model.observe_overhead("process", 1.0)
        first = model.overhead_seconds("process")
        model.observe_overhead("process", 1.0)
        assert model.overhead_seconds("process") > first  # pulled toward 1.0

    def test_warmup_discount_replaces_factorisation_tainted_first_sample(self):
        """The first sample absorbs one-off lazy factorisation; the second
        (first warm) sample must replace it outright, not blend with it."""
        model = ExecuteCostModel(alpha=0.25)
        model.observe_kernel(("warm",), 5.0)  # cold: Gram/SuperLU build
        assert model.kernel_seconds(("warm",)) == pytest.approx(5.0)  # seeds anyway
        model.observe_kernel(("warm",), 0.01)  # warm: the honest kernel
        assert model.kernel_seconds(("warm",)) == pytest.approx(0.01)
        # From the third sample on, normal EWMA smoothing.
        model.observe_kernel(("warm",), 0.02)
        assert model.kernel_seconds(("warm",)) == pytest.approx(
            0.25 * 0.02 + 0.75 * 0.01
        )

    def test_warmup_discount_can_be_disabled(self):
        model = ExecuteCostModel(alpha=0.5, warmup_discount=False)
        model.observe_kernel(("k",), 1.0)
        model.observe_kernel(("k",), 0.0)
        assert model.kernel_seconds(("k",)) == pytest.approx(0.5)

    def test_overhead_observations_move_the_routing_boundary(self):
        model = ExecuteCostModel(dispatch_margin=2.0)
        model.observe_kernel(("k",), 0.05)
        assert model.route(("k",), flush_units=4) == "process"
        # The pool turns out to be expensive: dispatches stop paying off.
        for _ in range(64):
            model.observe_overhead("process", 1.0)
            model.observe_overhead("thread", 1.0)
        assert model.route(("k",), flush_units=4) == "inline"

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError, match="alpha"):
            ExecuteCostModel(alpha=0.0)
        with pytest.raises(ValueError, match="dispatch_margin"):
            ExecuteCostModel(dispatch_margin=0.5)

    def test_concurrent_observations_stay_consistent(self):
        """The locking discipline of the shared model: hammered from many
        threads, estimates stay within the observed range (no torn reads)."""
        model = ExecuteCostModel(alpha=0.5)
        errors = []

        def hammer(value: float) -> None:
            try:
                for _ in range(500):
                    model.observe_kernel(("shared",), value)
                    estimate = model.kernel_seconds(("shared",))
                    assert estimate is not None and 0.0 <= estimate <= 1.0
                    model.observe_overhead("process", value)
                    assert 0.0 <= model.overhead_seconds("process") <= 1.0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(value,))
            for value in (0.0, 0.25, 1.0, 0.5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_snapshot_reports_estimates(self):
        model = ExecuteCostModel()
        model.observe_kernel(("k",), 0.25)
        view = model.snapshot()
        assert view["kernel_seconds"] == {str(("k",)): 0.25}
        assert set(view["overhead_seconds"]) == {"thread", "process"}


class TestForcedRouting:
    """Injected cost models pin the decision; counters prove the route."""

    def test_tiny_units_stay_inline(self, domain, database):
        with make_adaptive_engine(
            database, domain, ExecuteCostModel(**FORCE_INLINE)
        ) as engine:
            engine.open_session("alice", 50.0)
            tickets = three_group_flush(engine, domain)
            stats = engine.stats
        assert [t.status for t in tickets] == ["answered"] * 3
        assert stats.adaptive_inline == 3
        assert stats.adaptive_dispatched == 0
        assert stats.worker_dispatches == 0
        assert stats.bytes_shipped == 0  # nothing ever crossed a pipe

    def test_heavy_units_fan_out_to_processes(self, domain, database):
        with make_adaptive_engine(
            database, domain, ExecuteCostModel(**FORCE_PROCESS)
        ) as engine:
            engine.open_session("alice", 50.0)
            tickets = three_group_flush(engine, domain)
            stats = engine.stats
        assert [t.status for t in tickets] == ["answered"] * 3
        assert stats.adaptive_inline == 0
        assert stats.adaptive_dispatched == 3
        assert stats.worker_dispatches == 3
        assert stats.bytes_shipped > 0
        assert stats.serialization_seconds > 0.0

    def test_mid_units_ride_the_thread_pool(self, domain, database):
        with make_adaptive_engine(
            database, domain, ExecuteCostModel(**FORCE_THREAD)
        ) as engine:
            engine.open_session("alice", 50.0)
            tickets = three_group_flush(engine, domain)
            backend = engine._execute_backend
            thread_dispatches = backend._thread.dispatches
            process_dispatches = backend._process.dispatches
            stats = engine.stats
        assert [t.status for t in tickets] == ["answered"] * 3
        assert stats.adaptive_dispatched == 3
        assert thread_dispatches == 3
        assert process_dispatches == 0
        assert stats.bytes_shipped == 0  # thread pool shares objects

    def test_single_unit_flush_is_inline_even_when_heavy(self, domain, database):
        """A lone unit has no pool overlap to buy — but it still flows
        through the router, so the decision is counted and the kernel
        observed (unlike the static backends' silent short-circuit)."""
        with make_adaptive_engine(
            database, domain, ExecuteCostModel(**FORCE_PROCESS)
        ) as engine:
            engine.open_session("alice", 50.0)
            engine.ask("alice", identity_workload(domain), epsilon=0.5)
            stats = engine.stats
        assert stats.adaptive_inline == 1
        assert stats.adaptive_dispatched == 0

    def test_cold_model_observes_inline_then_converges(self, domain, database):
        """With no injected model the first flush runs inline (unobserved
        plans seed their own estimates).  The first kernel sample is
        inflated by one-off plan warm-up (lazy Gram factorisation), so with
        a fast-adapting EWMA the estimates converge back down and these
        microsecond units settle inline again."""
        # Generous overhead priors keep the inline region wide enough that
        # a loaded CI box's jittery microsecond kernels cannot flake the
        # convergence assertion (overheads are only re-estimated from real
        # dispatches, which this test never makes).
        with make_adaptive_engine(
            database,
            domain,
            ExecuteCostModel(
                alpha=0.9, thread_overhead_prior=0.05, process_overhead_prior=0.25
            ),
        ) as engine:
            engine.open_session("alice", 50.0)
            three_group_flush(engine, domain)
            first = engine.stats
            assert first.adaptive_inline == 3  # cold plans never dispatch
            for _ in range(4):
                three_group_flush(engine, domain)
            key = plan_key(line_policy(domain), 0.5, False, False)
            estimate = engine._execute_backend.cost_model.kernel_seconds(key)
            before = engine.stats
            three_group_flush(engine, domain)
            last = engine.stats
        assert estimate is not None and estimate < 0.1
        # Converged: the last flush of these tiny units stayed inline.
        assert last.adaptive_inline == before.adaptive_inline + 3
        assert last.adaptive_dispatched == before.adaptive_dispatched


class TestDeterminismParity:
    """Routing decides *where* units run after their RNG children are fixed,
    so adaptive answers and ledgers are bit-identical to every static
    backend — the bench_multicore gate, asserted here per forced route."""

    def serve(self, database, domain, split_policy, cost_model, backend="adaptive"):
        options = dict(
            total_epsilon=100.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=42,
            execute_workers=2,
            execute_backend=backend,
        )
        if backend == "adaptive":
            options["execute_cost_model"] = cost_model
        engine = PrivateQueryEngine(database, **options)
        with engine:
            session = engine.open_session("alice", 50.0)
            tickets = three_group_flush(engine, domain)
            tickets.append(
                engine.submit(
                    "alice",
                    identity_workload(domain),
                    epsilon=0.4,
                    policy=split_policy,
                )
            )
            engine.flush()
            ledger = [
                (op.label, op.epsilon, op.partition)
                for op in session.accountant.operations
            ]
        return [t.answers for t in tickets], ledger

    @pytest.mark.parametrize(
        "forced", [FORCE_INLINE, FORCE_THREAD, FORCE_PROCESS], ids=["inline", "thread", "process"]
    )
    def test_adaptive_matches_static_thread_backend(
        self, domain, database, split_policy, forced
    ):
        reference_answers, reference_ledger = self.serve(
            database, domain, split_policy, None, backend="thread"
        )
        answers, ledger = self.serve(
            database, domain, split_policy, ExecuteCostModel(**forced)
        )
        assert ledger == reference_ledger
        for vector, expected in zip(answers, reference_answers):
            np.testing.assert_array_equal(vector, expected)


class TestFailureSemantics:
    def test_broken_process_pool_rolls_the_batch_back(self, domain, database):
        """A crashed pool on the process route is a batch failure (rollback
        + clear error), exactly like the static process backend."""
        from concurrent.futures.process import BrokenProcessPool

        with make_adaptive_engine(
            database, domain, ExecuteCostModel(**FORCE_PROCESS)
        ) as engine:
            session = engine.open_session("carol", 20.0)

            def broken_submit(unit):
                raise BrokenProcessPool("worker died")

            engine._execute_backend._process.submit = broken_submit
            first = engine.submit("carol", identity_workload(domain), epsilon=0.5)
            second = engine.submit("carol", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            assert first.status == second.status == "refused"
            with pytest.raises(PrivacyBudgetError, match="worker pool broke"):
                first.result()
            assert session.spent() == 0.0

    def test_serialisation_failure_degrades_to_the_thread_pool(
        self, domain, database
    ):
        """An unpicklable plan cannot cross the process boundary, but the
        thread pool executes on shared objects — the batch must be served,
        not rolled back."""
        from repro.engine.parallel import _PlanSerialisationError

        with make_adaptive_engine(
            database, domain, ExecuteCostModel(**FORCE_PROCESS)
        ) as engine:
            engine.open_session("carol", 20.0)
            backend = engine._execute_backend
            attempts = []

            def unpicklable_submit(unit):
                attempts.append(unit.plan.key)
                raise _PlanSerialisationError("cannot pickle this plan")

            backend._process.submit = unpicklable_submit
            first = engine.submit("carol", identity_workload(domain), epsilon=0.5)
            second = engine.submit("carol", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            assert first.status == second.status == "answered"
            assert backend._thread.dispatches == 2
            assert len(attempts) == 2
            # The failure is memoised per plan key: a later flush of the
            # same plans never pays another doomed pickle attempt (where
            # each unit lands — thread or inline — now depends on the
            # kernel seconds the first flush observed, but process is off
            # the table for these plans either way).
            third = engine.submit("carol", identity_workload(domain), epsilon=0.5)
            fourth = engine.submit("carol", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            assert third.status == fourth.status == "answered"
            assert len(attempts) == 2
            stats = engine.stats
            assert stats.adaptive_inline + stats.adaptive_dispatched == 4

    def test_payload_failure_does_not_poison_the_plans_process_route(
        self, domain, database
    ):
        """A bad *payload* (one unit's workload/RNG) is a per-unit problem:
        the unit degrades to threads, but the plan stays process-routable."""
        class PinnedModel(ExecuteCostModel):
            """Routing fixture: observations never move the forced estimate."""

            def observe_kernel(self, plan_key, seconds):
                pass

        with make_adaptive_engine(
            database, domain, PinnedModel(**FORCE_PROCESS)
        ) as engine:
            engine.open_session("carol", 20.0)
            backend = engine._execute_backend
            real_submit = backend._process.submit
            calls = []

            def flaky_submit(unit):
                calls.append(unit.plan.key)
                if len(calls) <= 2:
                    raise TypeError("cannot pickle this payload")
                return real_submit(unit)

            backend._process.submit = flaky_submit
            engine.submit("carol", identity_workload(domain), epsilon=0.5)
            engine.submit("carol", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            assert backend._thread.dispatches == 2
            assert not backend._process_rejected  # nothing blacklisted
            # Same plans, healthy payloads: process is attempted again.
            engine.submit("carol", identity_workload(domain), epsilon=0.5)
            engine.submit("carol", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            assert len(calls) >= 3

    def test_closed_adaptive_engine_serves_inline_with_telemetry(
        self, domain, database
    ):
        engine = make_adaptive_engine(
            database, domain, ExecuteCostModel(**FORCE_INLINE)
        )
        with engine:
            engine.open_session("alice", 20.0)
            three_group_flush(engine, domain)
            live = engine.stats
        answers = engine.ask("alice", identity_workload(domain), epsilon=0.125)
        assert answers.shape == (DOMAIN_SIZE,)
        stats = engine.stats
        assert stats.execute_backend == "adaptive"
        assert stats.adaptive_inline == live.adaptive_inline
        assert stats.adaptive_dispatched == live.adaptive_dispatched

    def test_top_up_runs_through_the_adaptive_backend(self, domain, database):
        """top_up's single unit routes inline (no overlap to buy) and the
        combined answer comes back — the execute_unit_via contract."""
        with make_adaptive_engine(
            database,
            domain,
            ExecuteCostModel(**FORCE_PROCESS),
            enable_answer_cache=True,
        ) as engine:
            engine.open_session("erin", 20.0)
            engine.ask("erin", identity_workload(domain), epsilon=0.5)
            before = engine.stats.adaptive_inline
            upgraded = engine.top_up("erin", identity_workload(domain), 0.25)
            assert upgraded.shape == (DOMAIN_SIZE,)
            assert engine.stats.adaptive_inline == before + 1
