"""Flight-recorder observability: tracing, metrics registry, ε-audit stream."""

from __future__ import annotations

import json
import logging
import os
import threading

import numpy as np
import pytest

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.engine import (
    AuditLog,
    ExecuteUnit,
    MetricsRegistry,
    Observability,
    PrivateQueryEngine,
    ThreadExecuteBackend,
    Tracer,
)
from repro.engine.parallel import execute_unit_via
from repro.exceptions import PrivacyBudgetError
from repro.policy import line_policy


@pytest.fixture
def domain() -> Domain:
    return Domain((16,))


@pytest.fixture
def database(domain: Domain) -> Database:
    counts = np.zeros(16)
    counts[[1, 5, 6, 12]] = [3, 7, 1, 9]
    return Database(domain, counts, name="sparse16")


def make_engine(database, domain, **overrides) -> PrivateQueryEngine:
    options = dict(
        total_epsilon=50.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


def enabled_engine(database, domain, **overrides) -> PrivateQueryEngine:
    overrides.setdefault("observability", Observability(enabled=True, audit=AuditLog()))
    return make_engine(database, domain, **overrides)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4.0

    def test_labels_key_distinct_instruments(self):
        registry = MetricsRegistry()
        hit = registry.counter("lookups_total", result="hit")
        miss = registry.counter("lookups_total", result="miss")
        assert hit is not miss
        # Get-or-create: re-asking returns the same instrument.
        assert registry.counter("lookups_total", result="hit") is hit

    def test_name_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing", other="label")

    def test_histogram_percentiles_interpolate(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency", buckets=(0.001, 0.01, 0.1, 1.0)
        )
        for _ in range(99):
            histogram.observe(0.005)
        histogram.observe(0.5)
        p = histogram.percentiles()
        assert 0.001 <= p["p50"] <= 0.01
        assert p["p99"] <= 1.0
        assert histogram.count == 100
        # Overflow observations report the honest maximum, not a bucket bound.
        histogram.observe(7.0)
        assert histogram.quantile(1.0) == pytest.approx(7.0)

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("served_total", "Requests served", backend="thread").inc(3)
        histogram = registry.histogram("wait_seconds", "Queue wait", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.to_prometheus_text()
        assert "# TYPE served_total counter" in text
        assert 'served_total{backend="thread"} 3.0' in text
        assert "# HELP wait_seconds Queue wait" in text
        # Buckets are cumulative and end with +Inf == count.
        assert 'wait_seconds_bucket{le="0.1"} 1' in text
        assert 'wait_seconds_bucket{le="1.0"} 2' in text
        assert 'wait_seconds_bucket{le="+Inf"} 2' in text
        assert "wait_seconds_count 2" in text

    def test_json_snapshot_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        payload = json.loads(registry.to_json())
        assert payload["counters"]["a_total"]["value"] == 1.0
        assert payload["histograms"]["h"]["count"] == 1


# ---------------------------------------------------------------------------
# Tracing primitives
# ---------------------------------------------------------------------------
class TestTracing:
    def test_span_context_manager_nests(self):
        tracer = Tracer()
        trace = tracer.start_trace("flush", tickets=2)
        with trace.span("execute") as execute:
            trace.add_span("unit", execute.start, execute.start + 0.25, parent=execute)
        trace.finish()
        tree = trace.to_dict()
        assert tree["attributes"] == {"tickets": 2}
        (root,) = tree["spans"]
        assert root["name"] == "execute"
        assert [child["name"] for child in root["children"]] == ["unit"]
        assert tracer.last() is trace

    def test_finish_is_idempotent_and_registers_once(self):
        tracer = Tracer(capacity=4)
        trace = tracer.start_trace("flush")
        trace.finish()
        trace.finish()
        assert len(tracer.traces()) == 1
        assert tracer.find(trace.trace_id) is trace

    def test_tracer_ring_buffer_bounds(self):
        tracer = Tracer(capacity=2)
        ids = [tracer.start_trace("t").finish().trace_id for _ in range(3)]
        kept = [trace.trace_id for trace in tracer.traces()]
        assert kept == ids[1:]

    def test_waterfall_renders_every_span(self):
        tracer = Tracer()
        trace = tracer.start_trace("flush")
        with trace.span("plan"):
            pass
        trace.add_span("worker", trace.start, trace.start + 0.001, pid=1234)
        trace.finish()
        rendered = trace.waterfall()
        assert trace.trace_id in rendered
        assert "plan" in rendered and "worker" in rendered

    def test_json_export_round_trips(self):
        tracer = Tracer()
        trace = tracer.start_trace("top_up", client="a")
        with trace.span("execute"):
            pass
        trace.finish()
        payload = json.loads(trace.to_json())
        assert payload["trace_id"] == trace.trace_id
        assert payload["spans"][0]["name"] == "execute"


# ---------------------------------------------------------------------------
# Audit log primitives
# ---------------------------------------------------------------------------
class TestAuditLog:
    def test_ambient_context_merges_and_drops_none(self):
        log = AuditLog()
        with log.context(trace_id="t-1", ticket_id=None):
            with log.context(client_id="alice"):
                record = log.emit("charge", epsilon=0.5, label=None)
        assert record["trace_id"] == "t-1"
        assert record["client_id"] == "alice"
        assert "ticket_id" not in record and "label" not in record
        # Outside the context nothing ambient leaks.
        bare = log.emit("charge", epsilon=0.5)
        assert "trace_id" not in bare

    def test_explicit_none_never_masks_ambient(self):
        log = AuditLog()
        with log.context(trace_id="t-9"):
            record = log.emit("refusal", trace_id=None, epsilon=1.0)
        assert record["trace_id"] == "t-9"

    def test_seq_totally_orders_the_stream(self):
        log = AuditLog()
        records = [log.emit("charge", epsilon=i) for i in range(5)]
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]
        assert log.count == 5

    def test_jsonl_durability(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path=str(path))
        log.emit("charge", label="q", epsilon=0.25)
        log.emit("rollback", label="q", epsilon=0.25)
        # Flushed per event: readable before close.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "charge" and first["seq"] == 1
        log.close()
        log.close()  # idempotent
        # The stream reopens lazily: post-close events still append.
        log.emit("charge", label="late", epsilon=0.1)
        assert len(path.read_text().splitlines()) == 3
        log.close()

    def test_memory_mirror_is_bounded_filters_work(self):
        log = AuditLog(capacity=3)
        for index in range(5):
            log.emit("charge" if index % 2 else "rollback", epsilon=index)
        assert log.count == 5
        assert len(log.events()) == 3
        assert all(r["event"] == "charge" for r in log.events("charge"))
        assert [r["seq"] for r in log.tail(2)] == [4, 5]


# ---------------------------------------------------------------------------
# Flush tracing through the engine
# ---------------------------------------------------------------------------
class TestFlushTraces:
    def test_flush_produces_stage_and_unit_spans(self, database, domain):
        obs = Observability(enabled=True)
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 10.0)
        engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.submit("alice", cumulative_workload(domain), epsilon=0.5)
        engine.flush()
        trace = obs.tracer.last()
        assert trace is not None and trace.name == "flush"
        assert trace.attributes["tickets"] == 2
        for stage in ("plan", "charge", "execute", "resolve"):
            assert trace.find(stage), f"missing {stage} span"
        # One compatible batch → one execute unit, nested under execute.
        (unit,) = trace.find("unit")
        (execute,) = trace.find("execute")
        assert unit.parent_id == execute.span_id
        assert unit.attributes["workloads"] == 2
        tree = json.loads(trace.to_json())
        assert tree["trace_id"] == trace.trace_id

    def test_disabled_hub_records_nothing(self, database, domain):
        engine = make_engine(database, domain)  # default: disabled hub
        engine.open_session("alice", 10.0)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        assert ticket.submitted_at == 0.0
        engine.flush()
        assert engine.observability.enabled is False
        assert engine.observability.tracer.last() is None
        assert engine.observability.audit is None
        # Aggregate counters flow regardless.
        assert engine.stats.queries_answered == 1

    def test_queue_wait_and_flush_latency_histograms_fill(self, database, domain):
        obs = Observability(enabled=True)
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 10.0)
        engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.submit("alice", cumulative_workload(domain), epsilon=0.5)
        engine.flush()
        with obs.metrics.lock:
            assert engine._h_queue_wait.count == 2
            assert engine._h_flush.count == 1
            assert engine._h_flush.sum > 0.0

    def test_unit_kernel_histogram_keyed_by_plan(self, database, domain):
        obs = Observability(enabled=True)
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 10.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        payload = json.loads(obs.metrics.to_json())
        series = [
            name
            for name in payload["histograms"]
            if name.startswith("engine_unit_kernel_seconds")
        ]
        assert len(series) == 1 and "plan=" in series[0]

    def test_concurrent_flushes_never_share_a_trace(self, database, domain):
        """Each flush's trace owns a disjoint set of charged tickets."""
        audit = AuditLog()
        obs = Observability(enabled=True, audit=audit)
        engine = make_engine(database, domain, observability=obs)
        num_threads, per_thread = 4, 5
        for index in range(num_threads):
            engine.open_session(f"client{index}", 10.0)
        barrier = threading.Barrier(num_threads)
        errors: list = []

        def hammer(index: int) -> None:
            workloads = [
                identity_workload(domain),
                cumulative_workload(domain),
                total_workload(domain),
            ]
            barrier.wait()
            for round_index in range(per_thread):
                try:
                    engine.ask(
                        f"client{index}",
                        workloads[round_index % len(workloads)],
                        epsilon=0.1,
                    )
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        charges = audit.events("charge")
        flush_charges = [r for r in charges if "ticket_id" in r]
        # Every charged ticket appears exactly once, in exactly one trace.
        ticket_ids = [r["ticket_id"] for r in flush_charges]
        assert len(ticket_ids) == len(set(ticket_ids))
        by_trace: dict = {}
        for record in flush_charges:
            assert record["trace_id"]  # attributed, never blank
            by_trace.setdefault(record["trace_id"], set()).add(record["ticket_id"])
        sets = list(by_trace.values())
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                assert not (sets[i] & sets[j])
        # Each completed trace carries its own full stage-span set.
        for trace in obs.tracer.traces():
            assert trace.end is not None
            for stage in ("plan", "charge", "execute", "resolve"):
                assert trace.find(stage)

    def test_replay_only_flush_trace_says_so(self, database, domain):
        """A flush served entirely from cache has no stage spans — the
        trace must say why instead of reading as an empty tree."""
        obs = Observability(enabled=True)
        engine = make_engine(
            database, domain, observability=obs, enable_answer_cache=True
        )
        engine.open_session("alice", 10.0)
        first = engine.ask("alice", identity_workload(domain), epsilon=0.5)
        replayed = engine.ask("alice", identity_workload(domain), epsilon=0.5)
        np.testing.assert_array_equal(first, replayed)
        trace = obs.tracer.last()
        assert trace.attributes["tickets"] == 1
        assert trace.attributes["replays"] == 1
        assert not trace.find("execute")
        assert json.loads(trace.to_json())["attributes"]["replays"] == 1

    def test_top_up_gets_its_own_trace(self, database, domain):
        obs = Observability(enabled=True, audit=AuditLog())
        engine = make_engine(
            database, domain, observability=obs, enable_answer_cache=True
        )
        engine.open_session("alice", 10.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        engine.top_up("alice", identity_workload(domain), 0.25)
        trace = obs.tracer.last()
        assert trace.name == "top_up"
        assert trace.find("execute")
        (event,) = obs.audit.events("top_up")
        assert event["trace_id"] == trace.trace_id
        assert event["epsilon"] == pytest.approx(0.25)
        assert event["draws"] == 2


# ---------------------------------------------------------------------------
# Worker-process spans
# ---------------------------------------------------------------------------
class TestProcessBackendSpans:
    def test_worker_spans_attach_to_their_unit(self, database, domain):
        obs = Observability(enabled=True)
        engine = make_engine(
            database,
            domain,
            observability=obs,
            execute_workers=2,
            execute_backend="process",
        )
        with engine:
            engine.open_session("alice", 10.0)
            engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.submit("alice", identity_workload(domain), epsilon=0.7)
            engine.flush()
            trace = obs.tracer.last()
            units = trace.find("unit")
            workers = trace.find("worker")
            assert len(units) == 2 and len(workers) == 2
            unit_ids = {span.span_id for span in units}
            for worker in workers:
                assert worker.parent_id in unit_ids
                assert worker.attributes["pid"] != os.getpid()

    def test_blob_miss_recovery_reports_both_hops(self, database, domain):
        from repro.engine import ProcessExecuteBackend

        obs = Observability(enabled=True)
        engine = make_engine(
            database,
            domain,
            observability=obs,
            execute_workers=2,
            execute_backend="process",
        )
        # The reset hook is only deterministic on a single-worker pool
        # (see ProcessExecuteBackend.reset_resident_caches); swap one in.
        engine._execute_backend.close()
        engine._execute_backend = ProcessExecuteBackend(
            max_workers=1, preload=(database,)
        )
        with engine:
            engine.open_session("alice", 20.0)
            engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.submit("alice", identity_workload(domain), epsilon=0.7)
            engine.flush()
            # Steady state established: the parent now ships digests only.
            assert engine._execute_backend.reset_resident_caches() == 1
            engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.submit("alice", identity_workload(domain), epsilon=0.7)
            engine.flush()
            trace = obs.tracer.last()
            units = {span.span_id: span for span in trace.find("unit")}
            misses = trace.find("blob-miss")
            workers = trace.find("worker")
            # The first plan joined the pool-creation preload (it can never
            # miss — the initializer re-runs on reset); the second plan was
            # shipped later, so its digest-only dispatch fails exactly once.
            assert len(misses) == 1
            # A recovered unit shows the failed digest-only hop AND the
            # successful worker execution under the same unit span.
            recovered = {span.parent_id for span in misses}
            for parent in recovered:
                assert parent in units
                assert any(w.parent_id == parent for w in workers)
            for miss in misses:
                assert miss.attributes["missing"]


# ---------------------------------------------------------------------------
# ε-audit completeness through the engine
# ---------------------------------------------------------------------------
class TestAuditStream:
    def test_every_epsilon_mutation_is_recorded(self, database, domain, tmp_path):
        path = tmp_path / "audit.jsonl"
        obs = Observability(enabled=True, audit_path=str(path))
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 1.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        with pytest.raises(PrivacyBudgetError):
            engine.ask("alice", cumulative_workload(domain), epsilon=5.0)
        engine.close_session("alice")
        engine.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        events = [r["event"] for r in records]
        # Reservation charge + scope_open, the query charge, the refusal,
        # and the close's scope_close — in ledger order.
        assert events[0] == "charge" and events[1] == "scope_open"
        assert "refusal" in events and "scope_close" in events
        (query_charge,) = [
            r for r in records if r["event"] == "charge" and "ticket_id" in r
        ]
        assert query_charge["client_id"] == "alice"
        assert query_charge["epsilon"] == pytest.approx(0.5)
        # The charge's trace id names a completed flush trace.
        assert obs.tracer.find(query_charge["trace_id"]) is not None
        (refusal,) = [r for r in records if r["event"] == "refusal"]
        assert refusal["epsilon"] == pytest.approx(5.0)
        assert refusal["ticket_id"] and refusal["trace_id"]
        (scope_close,) = [r for r in records if r["event"] == "scope_close"]
        assert scope_close["spent"] == pytest.approx(0.5)
        assert scope_close["refunded"] == pytest.approx(0.5)

    def test_execute_failure_audits_rollbacks_with_trace_ids(
        self, database, domain, monkeypatch
    ):
        audit = AuditLog()
        obs = Observability(enabled=True, audit=audit)
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 10.0)
        import repro.engine.pipeline as pipeline_module

        def broken_run_unit(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(pipeline_module, "run_unit", broken_run_unit)
        ticket = engine.submit("alice", identity_workload(domain), epsilon=0.5)
        engine.flush()
        assert ticket.status == "refused"
        (rollback,) = audit.events("rollback")
        (charge,) = [r for r in audit.events("charge") if "ticket_id" in r]
        assert rollback["ticket_id"] == charge["ticket_id"] == ticket.ticket_id
        assert rollback["trace_id"] == charge["trace_id"]
        assert rollback["epsilon"] == pytest.approx(0.5)
        # The ledger is whole again.
        assert engine.session("alice").spent() == 0.0

    def test_audit_without_tracing_still_attributes_tickets(
        self, database, domain
    ):
        """The audit stream is opt-in independently of `enabled`."""
        audit = AuditLog()
        obs = Observability(enabled=False, audit=audit)
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 10.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        (charge,) = [r for r in audit.events("charge") if "ticket_id" in r]
        assert charge["client_id"] == "alice"
        assert "trace_id" not in charge  # no tracer ran


# ---------------------------------------------------------------------------
# Logged degradations (formerly silent)
# ---------------------------------------------------------------------------
class TestDegradationLogging:
    def test_mis_sized_noise_model_logs_proxy_fallback(
        self, database, domain, monkeypatch, caplog
    ):
        from repro.blowfish.algorithms import NamedAlgorithm
        from repro.mechanisms.base import NoiseModel

        monkeypatch.setattr(
            NamedAlgorithm,
            "noise_model",
            lambda self, workload: NoiseModel(stds=np.ones(3)),
        )
        engine = make_engine(database, domain, enable_answer_cache=True)
        engine.open_session("alice", 10.0)
        with caplog.at_level(logging.WARNING, logger="repro.engine.pipeline"):
            answers = engine.ask("alice", identity_workload(domain), epsilon=0.5)
        assert answers.shape == (16,)
        assert any(
            "degrading" in record.message and "proxy" in record.message
            for record in caplog.records
        )

    def test_closed_backend_inline_fallback_logs(self, database, domain, caplog):
        engine = make_engine(database, domain)
        plan = engine.plan_cache.plan_for(
            line_policy(domain), 0.5, prefer_data_dependent=False, consistency=False
        )
        backend = ThreadExecuteBackend(2)
        backend.close(wait=True)
        unit = ExecuteUnit(
            plan=plan,
            workloads=[identity_workload(domain)],
            database=database,
            rng=np.random.default_rng(3),
        )
        with caplog.at_level(logging.WARNING, logger="repro.engine.parallel"):
            vectors, _ = execute_unit_via(backend, unit)
        assert vectors[0].shape == (16,)
        assert any(
            "closed mid-call" in record.message for record in caplog.records
        )

    def test_serialisation_degrade_logs(self, database, domain, caplog):
        from repro.engine import ExecuteCostModel
        from repro.engine.parallel import _PlanSerialisationError

        engine = make_engine(
            database,
            domain,
            execute_workers=2,
            execute_backend="adaptive",
            execute_cost_model=ExecuteCostModel(default_kernel_seconds=60.0),
        )
        with engine:
            engine.open_session("alice", 10.0)
            backend = engine._execute_backend

            def unpicklable_submit(unit):
                raise _PlanSerialisationError("cannot pickle this plan")

            backend._process.submit = unpicklable_submit
            first = engine.submit("alice", identity_workload(domain), epsilon=0.5)
            second = engine.submit("alice", cumulative_workload(domain), epsilon=0.25)
            with caplog.at_level(logging.WARNING, logger="repro.engine.parallel"):
                engine.flush()
            assert first.status == second.status == "answered"
            assert any(
                "cannot cross the process boundary" in record.message
                for record in caplog.records
            )

    def test_blob_miss_recovery_logs(self, database, domain, caplog):
        from repro.engine import ProcessExecuteBackend

        engine = make_engine(
            database, domain, execute_workers=2, execute_backend="process"
        )
        engine._execute_backend.close()
        engine._execute_backend = ProcessExecuteBackend(
            max_workers=1, preload=(database,)
        )
        with engine:
            engine.open_session("alice", 20.0)
            engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.submit("alice", identity_workload(domain), epsilon=0.7)
            engine.flush()
            assert engine._execute_backend.reset_resident_caches() == 1
            engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.submit("alice", identity_workload(domain), epsilon=0.7)
            with caplog.at_level(logging.INFO, logger="repro.engine.parallel"):
                engine.flush()
            assert any(
                "resident cache" in record.message or "miss" in record.message
                for record in caplog.records
            )


# ---------------------------------------------------------------------------
# Stats re-derived from the registry
# ---------------------------------------------------------------------------
class TestStatsFromRegistry:
    def test_stats_and_registry_agree(self, database, domain):
        obs = Observability(enabled=True)
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 10.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        engine.ask("alice", cumulative_workload(domain), epsilon=0.5)
        stats = engine.stats
        payload = json.loads(obs.metrics.to_json())
        counters = payload["counters"]
        assert counters["engine_queries_submitted_total"]["value"] == stats.queries_submitted == 2
        assert counters["engine_queries_answered_total"]["value"] == stats.queries_answered == 2
        assert counters["engine_flushes_total"]["value"] == stats.flushes == 2
        assert counters["engine_plan_cache_lookups_total{result=\"miss\"}"]["value"] == stats.plan_misses
        assert stats.plan_seconds > 0.0
        text = obs.metrics.to_prometheus_text()
        assert "engine_queries_submitted_total 2.0" in text

    def test_disabled_engine_keeps_full_stats(self, database, domain):
        engine = make_engine(database, domain)
        engine.open_session("alice", 10.0)
        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        stats = engine.stats
        assert stats.queries_submitted == stats.queries_answered == 1
        assert stats.flushes == 1
        assert stats.plan_misses == 1
        assert stats.epsilon_spent == pytest.approx(10.0)  # session reservation

    def test_enabled_observability_never_changes_the_noise(
        self, database, domain
    ):
        """Instrumentation must not touch the RNG stream."""

        def serve(observability):
            engine = make_engine(
                database, domain, random_state=1234, observability=observability
            )
            engine.open_session("alice", 10.0)
            engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.submit("alice", cumulative_workload(domain), epsilon=0.25)
            tickets = engine.flush()
            return [ticket.result() for ticket in tickets]

        baseline = serve(None)
        observed = serve(Observability(enabled=True, audit=AuditLog()))
        for expected, actual in zip(baseline, observed):
            np.testing.assert_array_equal(expected, actual)


# ---------------------------------------------------------------------------
# Executor trigger metrics
# ---------------------------------------------------------------------------
class TestExecutorMetrics:
    def test_size_trigger_counts(self, database, domain):
        from repro.engine import BatchingExecutor

        obs = Observability(enabled=True)
        engine = make_engine(database, domain, observability=obs)
        engine.open_session("alice", 20.0)
        with BatchingExecutor(engine, max_batch_size=2, max_delay=5.0) as executor:
            executor.submit("alice", identity_workload(domain), 0.1)
            ticket = executor.submit("alice", cumulative_workload(domain), 0.1)
            ticket.wait(5.0)
        payload = json.loads(obs.metrics.to_json())
        size = payload["counters"]['executor_flush_triggers_total{trigger="size"}']
        assert size["value"] >= 1
