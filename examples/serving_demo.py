#!/usr/bin/env python3
"""Serving demo: two client sessions sharing one cached plan.

The :class:`repro.engine.PrivateQueryEngine` turns the paper's one-shot
mechanisms into a multi-client service.  This demo shows the four pieces
working together:

1. the engine holds the private database and a global privacy budget;
2. two clients open sessions, each reserving an epsilon allotment;
3. their queries are *batched* into one vectorised mechanism invocation and
   both ride the same cached plan (one planning miss, then hits only);
4. a re-asked query is replayed from the noisy-answer cache at **zero**
   additional budget, and all paid-for answers are least-squares-consolidated
   for consistency — also free.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.engine import PrivateQueryEngine
from repro.exceptions import PrivacyBudgetError
from repro.policy import line_policy


def main() -> None:
    rng = np.random.default_rng(0)

    # The trusted curator's data: a histogram of 256 binned salaries.
    domain = Domain((256,))
    counts = np.zeros(domain.size)
    counts[rng.integers(20, 230, size=40)] = rng.integers(1, 200, size=40)
    database = Database(domain, counts, name="salaries")

    # One engine serves every client, under the line policy (adjacent salary
    # bins indistinguishable) and a global budget of epsilon = 4.
    engine = PrivateQueryEngine(
        database,
        total_epsilon=4.0,
        default_policy=line_policy(domain),
        random_state=7,
    )

    # Two clients, each with their own allotment reserved from the global pot.
    alice = engine.open_session("alice", epsilon_allotment=1.0)
    bob = engine.open_session("bob", epsilon_allotment=0.5)
    print(f"global budget after reservations: spent={engine.accountant.spent():.2f}")

    # Their first queries are submitted together, grouped into ONE mechanism
    # invocation, and both planned exactly once (the plan cache is shared).
    ticket_alice = engine.submit("alice", identity_workload(domain), epsilon=0.25)
    ticket_bob = engine.submit("bob", cumulative_workload(domain), epsilon=0.25)
    engine.flush()
    stats = engine.stats
    print(
        f"first flush: {stats.queries_answered} answered in "
        f"{stats.mechanism_invocations} mechanism invocation(s); "
        f"plan cache misses={stats.plan_misses} hits={stats.plan_hits}"
    )
    print(f"  alice histogram head: {np.round(ticket_alice.result()[:5], 2)}")
    print(f"  bob prefix-sums head: {np.round(ticket_bob.result()[:5], 2)}")

    # Bob re-asks alice's query: same policy, workload and epsilon, so it is
    # replayed from the noisy-answer cache — zero budget for bob.
    replay = engine.ask("bob", identity_workload(domain), epsilon=0.25)
    assert np.array_equal(replay, ticket_alice.result())
    print(f"bob replayed alice's histogram for free: spent={bob.spent():.2f}")

    # Alice also buys the grand total; consolidation then reconciles every
    # cached answer by least squares (post-processing, no budget).
    engine.ask("alice", total_workload(domain), epsilon=0.25)
    updated = engine.consolidate()
    histogram = engine.ask("alice", identity_workload(domain), epsilon=0.25)
    total = engine.ask("alice", total_workload(domain), epsilon=0.25)
    print(
        f"consolidated {updated} cached answers; histogram sum "
        f"{histogram.sum():.2f} vs total query {total[0]:.2f} (consistent)"
    )

    # Budgets are hard limits: an exhausted session is refused with a clear
    # error, while other clients keep being served.
    try:
        engine.ask("bob", cumulative_workload(domain), epsilon=0.5)
    except PrivacyBudgetError as error:
        print(f"bob refused: {error}")
    print(f"alice remaining={alice.remaining():.2f}, bob remaining={bob.remaining():.2f}")

    final = engine.stats
    print(
        f"final: submitted={final.queries_submitted} answered={final.queries_answered} "
        f"refused={final.queries_refused} replays={final.answer_cache_replays} "
        f"plan hit-rate={engine.plan_cache.stats.hit_rate:.0%}"
    )


if __name__ == "__main__":
    main()
