#!/usr/bin/env python3
"""Serving demo: sessions, cached plans, the staged pipeline, and sharding.

The :class:`repro.engine.PrivateQueryEngine` turns the paper's one-shot
mechanisms into a multi-client service.  This demo shows the pieces working
together:

1. the engine holds the private database and a global privacy budget;
2. two clients open sessions, each reserving an epsilon allotment;
3. their queries are *batched* into one vectorised mechanism invocation and
   both ride the same cached plan (one planning miss, then hits only);
4. a re-asked query is replayed from the noisy-answer cache at **zero**
   additional budget, and all paid-for answers are least-squares-consolidated
   for consistency — also free;
5. every flush runs the staged **plan → charge → execute → resolve**
   pipeline: planning is lock-free, budget charges hold only the narrowed
   accountant lock, mechanism execution holds no lock, and resolution briefly
   takes the stats/cache locks — so concurrent clients overlap instead of
   queueing behind one engine-wide lock.  A
   :class:`repro.engine.BatchingExecutor` accumulates cross-thread
   submissions and auto-flushes on a deadline/size trigger, which is what
   makes the batching win materialise under real concurrent load;
6. a policy whose graph splits into several connected components is served
   **scatter/gather** over per-component domain shards.  By the paper's
   parallel-composition rule this is exact: per-shard ε-mechanisms act on
   disjoint record sets, so the sharded release costs the same ε the
   unsharded path would charge — byte-identical accounting.  The discount
   for client-declared partitions follows the same rule: it needs the
   release to be a function of the partition, which holds for
   data-independent plans unsharded and for *any* plan sharded;
7. with ``execute_backend="process"`` the execute stage runs on **worker
   processes** — the only way past the GIL for the scipy-sparse mechanism
   kernels.  Seed derivations are identical across backends, so a seeded
   engine answers the same either way, and ε ledgers never depend on the
   backend at all.  ``execute_backend="adaptive"`` goes one step further
   and *measures* the trade: an EWMA cost model routes each work unit
   inline, to the thread pool, or to the process pool — tiny units skip
   dispatch overhead entirely, heavy flushes still fan out across cores;
8. the plan store persists: ``engine.save_plans(path)`` writes every cached
   plan (per-shard caches included) to disk, and a relaunched server that
   ``load_plans(path)`` serves the same workload with **zero** cold plans —
   ``plan_cache_hit_rate == 1.0``;
9. plans are cheap to *have* as well as to find: every Gram factorisation,
   strategy pseudo-inverse and transformed-workload product lives in a
   process-wide content-digest-keyed
   :class:`repro.engine.FactorisationStore`, so ten plans over one policy
   pay for one factorisation — the hit rate climbs with every plan that
   shares policy content, and ``engine.stats`` exposes the counters;
10. the **flight recorder**: an :class:`repro.engine.Observability` hub gives
   every flush a trace (one span per pipeline stage, one per execute unit,
   and — on the process backend — per-unit worker spans measured *inside*
   the worker and shipped back with the answers), feeds a metrics registry
   with counters and latency percentiles exportable as Prometheus text, and
   streams every ε mutation (charges, rollbacks, refusals, scope opens and
   closes, top-ups) to a durable JSONL audit log whose records carry the
   trace/ticket/client ids that caused them.  All of it is off by default
   and costs one branch per hook when disabled;
11. the **durable state tier**: with ``durable_ledger=`` every ε charge is
   journalled write-ahead to SQLite *before* its mechanism runs, so a
   ``kill -9``'d server that relaunches recovers its sessions' spent
   budget and refuses queries the crash tried to make affordable again —
   and ``snapshot_dir=`` adds a background snapshotter that persists warm
   plans and cached answers crash-consistently alongside it;
12. the **network serving tier**: an asyncio front-end
   (:class:`repro.engine.serving.AsyncQueryEngine`) makes tickets
   awaitable — pending clients cost a suspended coroutine each, not a
   parked OS thread — and a stdlib HTTP server
   (:class:`repro.engine.serving.ServingServer`) exposes client
   registration, query submit/poll, budget introspection and Prometheus
   ``/metrics`` over the wire.  Flushes still run the same staged
   pipeline, so the HTTP path's draws and ε ledgers stay byte-identical
   to a direct ``flush()``.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import json
import os
import tempfile
import threading

import numpy as np

from repro.core import (
    Database,
    Domain,
    cumulative_workload,
    identity_workload,
    total_workload,
)
from repro.core.workload import Workload
from repro.engine import (
    BatchingExecutor,
    ExecuteCostModel,
    FactorisationStore,
    Observability,
    PrivateQueryEngine,
    set_store,
)
from repro.exceptions import PrivacyBudgetError
from repro.policy import PolicyGraph, line_policy


def main() -> None:
    rng = np.random.default_rng(0)

    # The trusted curator's data: a histogram of 256 binned salaries.
    domain = Domain((256,))
    counts = np.zeros(domain.size)
    counts[rng.integers(20, 230, size=40)] = rng.integers(1, 200, size=40)
    database = Database(domain, counts, name="salaries")

    # One engine serves every client, under the line policy (adjacent salary
    # bins indistinguishable) and a global budget of epsilon = 4.
    engine = PrivateQueryEngine(
        database,
        total_epsilon=4.0,
        default_policy=line_policy(domain),
        random_state=7,
    )

    # Two clients, each with their own allotment reserved from the global pot.
    alice = engine.open_session("alice", epsilon_allotment=1.0)
    bob = engine.open_session("bob", epsilon_allotment=0.5)
    print(f"global budget after reservations: spent={engine.accountant.spent():.2f}")

    # Their first queries are submitted together, grouped into ONE mechanism
    # invocation, and both planned exactly once (the plan cache is shared).
    ticket_alice = engine.submit("alice", identity_workload(domain), epsilon=0.25)
    ticket_bob = engine.submit("bob", cumulative_workload(domain), epsilon=0.25)
    engine.flush()
    stats = engine.stats
    print(
        f"first flush: {stats.queries_answered} answered in "
        f"{stats.mechanism_invocations} mechanism invocation(s); "
        f"plan cache misses={stats.plan_misses} hits={stats.plan_hits}"
    )
    print(f"  alice histogram head: {np.round(ticket_alice.result()[:5], 2)}")
    print(f"  bob prefix-sums head: {np.round(ticket_bob.result()[:5], 2)}")

    # Bob re-asks alice's query: same policy, workload and epsilon, so it is
    # replayed from the noisy-answer cache — zero budget for bob.
    replay = engine.ask("bob", identity_workload(domain), epsilon=0.25)
    assert np.array_equal(replay, ticket_alice.result())
    print(f"bob replayed alice's histogram for free: spent={bob.spent():.2f}")

    # Alice also buys the grand total; consolidation then reconciles every
    # cached answer by least squares (post-processing, no budget).
    engine.ask("alice", total_workload(domain), epsilon=0.25)
    updated = engine.consolidate()
    histogram = engine.ask("alice", identity_workload(domain), epsilon=0.25)
    total = engine.ask("alice", total_workload(domain), epsilon=0.25)
    print(
        f"consolidated {updated} cached answers; histogram sum "
        f"{histogram.sum():.2f} vs total query {total[0]:.2f} (consistent)"
    )

    # Budgets are hard limits: an exhausted session is refused with a clear
    # error, while other clients keep being served.
    try:
        engine.ask("bob", cumulative_workload(domain), epsilon=0.5)
    except PrivacyBudgetError as error:
        print(f"bob refused: {error}")
    print(f"alice remaining={alice.remaining():.2f}, bob remaining={bob.remaining():.2f}")

    final = engine.stats
    print(
        f"final: submitted={final.queries_submitted} answered={final.queries_answered} "
        f"refused={final.queries_refused} replays={final.answer_cache_replays} "
        f"plan hit-rate={engine.plan_cache.stats.hit_rate:.0%}"
    )
    stage = final.stage_seconds
    print(
        "pipeline stage totals: "
        + " ".join(f"{name}={seconds * 1e3:.1f}ms" for name, seconds in stage.items())
    )

    consolidate_and_top_up_demo(database, domain)
    concurrent_demo(database, domain)
    sharded_demo()
    multicore_demo(database, domain)
    adaptive_demo(database, domain)
    warm_restart_demo(database, domain)
    factorisation_demo(database, domain)
    observability_demo(database, domain)
    durability_demo(database, domain)
    http_serving_demo(database, domain)
    overload_demo(database, domain)


def consolidate_and_top_up_demo(database: Database, domain: Domain) -> None:
    """Draw-aware consolidation, then spend-a-little-more top-ups.

    Batch-mates of one flush share a mechanism noise draw, and the cache
    records exactly that (draw ids + honest per-row noise models), so
    ``consolidate()`` solves a *generalised* least squares instead of
    pretending the measurements are independent.  ``top_up`` then buys a
    fresh measurement of an already-cached workload and GLS-combines it,
    charging only the increment.
    """
    print("\n-- draw-aware consolidation + top-ups --")
    engine = PrivateQueryEngine(
        database,
        total_epsilon=16.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,  # Laplace route: exact linear noise models
        consistency=False,
        random_state=19,
    )
    analyst = engine.open_session("analyst", epsilon_allotment=8.0)

    # One flush, one invocation: the histogram and the prefix sums share a
    # noise draw, and their cached measurements say so.
    engine.submit("analyst", identity_workload(domain), epsilon=0.5)
    engine.submit("analyst", cumulative_workload(domain), epsilon=0.5)
    engine.flush()
    grouped = engine.answer_cache.entries_by_draw(line_policy(domain))
    correlated = {draw: len(keys) for draw, keys in grouped.items() if len(keys) > 1}
    print(f"correlated measurement groups by draw id: {correlated}")

    # A later, sharper independent measurement joins the cache...
    engine.ask("analyst", identity_workload(domain), epsilon=1.0)
    # ...and consolidation reconciles ALL of it by generalised least squares
    # over the draw covariance structure — free post-processing, and the
    # correlated batch-mates are no longer double-counted (method="wls"
    # restores the legacy independence-assuming solve for comparison).
    spent_before = analyst.spent()
    updated = engine.consolidate()
    print(
        f"GLS-consolidated {updated} cached answers at zero cost "
        f"(spent {spent_before:.2f} before and {analyst.spent():.2f} after)"
    )

    # The prefix sums look worth more budget: top it up by epsilon = 0.25.
    # Only the increment is charged; the fresh draw is GLS-combined with the
    # cached measurement and replays serve the sharpened vector for free.
    before = analyst.spent()
    engine.top_up("analyst", cumulative_workload(domain), extra_epsilon=0.25)
    entry = engine.answer_cache.find(
        line_policy(domain), cumulative_workload(domain)
    )[0]
    print(
        f"top-up charged {analyst.spent() - before:.2f} (the increment alone); "
        f"the entry now blends {len(entry.measurements)} measurements worth "
        f"epsilon={entry.total_epsilon:.2f} in total"
    )
    replay = engine.ask("analyst", cumulative_workload(domain), epsilon=0.5)
    assert np.array_equal(replay, entry.answers)
    print(f"replays stay free and serve the upgraded vector: spent={analyst.spent():.2f}")


def concurrent_demo(database: Database, domain: Domain) -> None:
    """Four threads asking through the deadline/size-batched front-end.

    Their submissions accumulate into shared flushes: the engine answers
    many queries per vectorised mechanism invocation even though every
    client is a plain blocking caller on its own thread.
    """
    print("\n-- concurrent front-end --")
    engine = PrivateQueryEngine(
        database,
        total_epsilon=8.0,
        default_policy=line_policy(domain),
        enable_answer_cache=False,  # every ask is an independent paid draw
        prefer_data_dependent=False,
        consistency=False,
        random_state=13,
    )
    num_clients, asks_each = 4, 5
    for index in range(num_clients):
        engine.open_session(f"worker{index}", 1.0)

    def client(executor: BatchingExecutor, index: int) -> None:
        for round_index in range(asks_each):
            row = np.zeros((1, domain.size))
            row[0, (7 * index + round_index) % domain.size] = 1.0
            executor.ask(
                f"worker{index}",
                Workload(domain, row, name=f"w{index}r{round_index}"),
                epsilon=0.05,
                timeout=30.0,
            )

    with BatchingExecutor(engine, max_batch_size=num_clients, max_delay=0.01) as pool:
        threads = [
            threading.Thread(target=client, args=(pool, index))
            for index in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    stats = engine.stats
    print(
        f"{stats.queries_answered} queries from {num_clients} threads answered by "
        f"{stats.mechanism_invocations} mechanism invocation(s) across "
        f"{stats.flushes} flush(es) — batching survived concurrency"
    )


def sharded_demo() -> None:
    """Scatter/gather over a two-component policy, at unchanged ε cost.

    Salaries of two departments are protected by per-department line
    policies with no edges between departments: department membership is
    disclosed, so the engine serves each component as its own domain shard.
    One query per department costs max(ε_left, ε_right) — not the sum —
    because the shards' records are disjoint (parallel composition).
    """
    print("\n-- sharded scatter/gather --")
    rng = np.random.default_rng(2)
    domain = Domain((128,))
    counts = np.zeros(domain.size)
    counts[rng.integers(0, 128, size=30)] = rng.integers(1, 60, size=30)
    database = Database(domain, counts, name="two-departments")
    half = domain.size // 2
    policy = PolicyGraph(
        domain,
        edges=[(i, i + 1) for i in range(half - 1)]
        + [(i, i + 1) for i in range(half, domain.size - 1)],
        name="per-department-lines",
    )
    engine = PrivateQueryEngine(
        database,
        total_epsilon=4.0,
        default_policy=policy,
        prefer_data_dependent=False,
        consistency=False,
        random_state=21,
    )
    session = engine.open_session("analyst", 1.0)
    print(f"policy splits into {engine.shard_count()} domain shards")

    left = Workload(
        domain, np.hstack([np.eye(half), np.zeros((half, half))]), name="dept-A"
    )
    right = Workload(
        domain, np.hstack([np.zeros((half, half)), np.eye(half)]), name="dept-B"
    )
    # Declared disjoint partitions: parallel composition charges the max.
    engine.submit("analyst", left, epsilon=0.6, partition=range(half))
    engine.submit("analyst", right, epsilon=0.6, partition=range(half, domain.size))
    engine.flush()
    stats = engine.stats
    print(
        f"two per-department histograms served by {stats.mechanism_invocations} "
        f"per-shard invocation(s) in {stats.sharded_batches} sharded batch(es); "
        f"session spent {session.spent():.2f} of 1.00 (max, not sum — "
        "parallel composition)"
    )


def multicore_demo(database: Database, domain: Domain) -> None:
    """The execute stage on worker processes, with identical draws.

    Two engines with the same seed, one per backend: the thread pool
    overlaps batches under the GIL, the process pool runs them on separate
    cores — and because RNG children are derived identically, the answers
    match bit for bit (and the ε ledgers always do, on any backend).
    """
    print("\n-- process-parallel execute stage --")

    def serve(backend: str):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=8.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=29,
            execute_workers=2,
            execute_backend=backend,
        )
        with engine:
            engine.open_session("analyst", 2.0)
            tickets = [
                engine.submit(
                    "analyst", cumulative_workload(domain), epsilon=0.4 / (1 << i)
                )
                for i in range(3)
            ]
            engine.flush()
            stats = engine.stats
        return [t.result() for t in tickets], stats

    thread_answers, thread_stats = serve("thread")
    process_answers, process_stats = serve("process")
    identical = all(
        np.array_equal(a, b) for a, b in zip(thread_answers, process_answers)
    )
    print(
        f"thread backend: {thread_stats.worker_dispatches} work units dispatched; "
        f"process backend: {process_stats.worker_dispatches} units, "
        f"{process_stats.serialization_seconds * 1e3:.1f}ms serialisation overhead"
    )
    print(f"same seed, both backends: answers bit-identical = {identical}")


def adaptive_demo(database: Database, domain: Domain) -> None:
    """Cost-aware dispatch: the engine decides per unit where it runs.

    A static backend choice is a bet made at configuration time; the
    adaptive backend re-makes it every flush from measurements.  Its cost
    model tracks how long each plan's kernels actually take (EWMA per plan
    key — observed inline, on thread workers, and inside worker processes,
    whose protocol ships the measurement back with the answers) against
    each pool's observed per-dispatch overhead (serialisation + IPC +
    future round trip).  Tiny units therefore never pay IPC for nothing —
    the BENCH_multicore lesson on few-core hosts — while genuinely heavy
    flushes still fan out.  Steady-state process dispatches are cheap to
    begin with: the miss-only blob protocol ships content digests instead
    of plan/database pickles (workers hold them resident), so the pipe
    carries little more than workloads and an RNG child.
    """
    print("\n-- adaptive execute backend --")

    def serve(label: str, cost_model):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=8.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=29,
            execute_workers=2,
            execute_backend="adaptive",
            execute_cost_model=cost_model,
        )
        with engine:
            engine.open_session("analyst", 2.0)
            tickets = [
                engine.submit(
                    "analyst", cumulative_workload(domain), epsilon=0.4 / (1 << i)
                )
                for i in range(3)
            ]
            engine.flush()
            stats = engine.stats
        print(
            f"{label}: {stats.adaptive_inline} unit(s) inline, "
            f"{stats.adaptive_dispatched} dispatched, "
            f"{stats.bytes_shipped} bytes over the pipe"
        )
        return [t.result() for t in tickets]

    # Cold model: nothing has been measured, so every unit runs inline and
    # seeds its plan's kernel estimate — the safe default for tiny units.
    cold = serve("cold cost model", None)
    # A primed model (here: injected, in production: learned from serving)
    # that believes these kernels are heavy fans the same flush out to the
    # process pool instead.
    heavy = serve(
        "forced heavy-kernel model", ExecuteCostModel(default_kernel_seconds=60.0)
    )
    # Routing never touches the noise: both engines share one seed, so the
    # answers match bit for bit wherever the units actually ran.
    identical = all(np.array_equal(a, b) for a, b in zip(cold, heavy))
    print(f"same seed, inline vs process-routed: answers bit-identical = {identical}")


def warm_restart_demo(database: Database, domain: Domain) -> None:
    """Persist the plan store, relaunch, serve with zero cold plans."""
    print("\n-- warm restart from a persisted plan store --")

    def build_engine() -> PrivateQueryEngine:
        return PrivateQueryEngine(
            database,
            total_epsilon=8.0,
            default_policy=line_policy(domain),
            random_state=31,
            enable_answer_cache=False,
        )

    first_lifetime = build_engine()
    first_lifetime.open_session("analyst", 2.0)
    for epsilon in (0.25, 0.125):
        first_lifetime.ask("analyst", cumulative_workload(domain), epsilon=epsilon)
    print(
        f"first lifetime planned cold: {first_lifetime.stats.plan_misses} misses"
    )
    with tempfile.TemporaryDirectory() as tmp_dir:
        store_path = os.path.join(tmp_dir, "plan_store.pkl")
        saved = first_lifetime.save_plans(store_path)
        print(f"saved {saved} plans to {os.path.basename(store_path)}")

        # "Relaunch": a fresh engine (fresh caches — in production a fresh
        # process, as exercised by benchmarks/bench_multicore.py) loads the
        # store instead of re-planning.
        relaunched = build_engine()
        loaded = relaunched.load_plans(store_path)
        relaunched.open_session("analyst", 2.0)
        for epsilon in (0.25, 0.125):
            relaunched.ask("analyst", cumulative_workload(domain), epsilon=epsilon)
        stats = relaunched.stats
        print(
            f"relaunched engine loaded {loaded} plans and served with "
            f"{stats.plan_misses} cold plans — "
            f"plan_cache_hit_rate={stats.plan_cache_hit_rate:.0%}"
        )


def factorisation_demo(database: Database, domain: Domain) -> None:
    """The shared factorisation store: N plans, one Gram factorisation.

    Plans at different ε values over the same policy share its content: the
    Gram matrix they factorise, the strategy they pseudo-invert, the
    workload products they transform.  The process-wide store keys all of
    it by content digest, so only the first plan pays — watch the hit rate
    climb as each additional ε value rides the resident entries.
    """
    print("\n-- shared factorisation store --")
    # A fresh store so the counters below start from zero (the default is
    # one process-wide store shared by every engine and worker).
    previous = set_store(FactorisationStore())
    try:
        engine = PrivateQueryEngine(
            database,
            total_epsilon=8.0,
            default_policy=line_policy(domain),
            enable_answer_cache=False,
            random_state=41,
        )
        engine.open_session("analyst", 4.0)
        for epsilon in (0.5, 0.25, 0.125, 0.0625):
            engine.ask("analyst", identity_workload(domain), epsilon=epsilon)
            stats = engine.stats
            print(
                f"  plan at epsilon={epsilon}: {stats.factorisation_entries} "
                f"stored factorisation(s), hit rate "
                f"{stats.factorisation_hit_rate:.0%}"
            )
        final = engine.stats
        print(
            f"{final.factorisation_misses} build(s) "
            f"({final.factorisation_build_seconds * 1e3:.1f}ms of linear "
            f"algebra) served {final.factorisation_hits} shared lookups "
            "across four plans — every ε value after the first rode the "
            "first plan's factorisations"
        )
    finally:
        set_store(previous)


def observability_demo(database: Database, domain: Domain) -> None:
    """The flight recorder: flush traces, metric percentiles, the ε audit.

    One hub wires all three consumers: each flush (and each top-up) gets a
    trace whose spans cross the process boundary — the worker measures its
    own span and ships it back with the answers — the registry accumulates
    engine counters and latency histograms behind the same ``stats`` the
    engine always had, and the audit log records every ε mutation as one
    JSONL line stamped with the trace/ticket/client ids that caused it.
    """
    print("\n-- flight-recorder observability --")
    with tempfile.TemporaryDirectory() as tmp_dir:
        audit_path = os.path.join(tmp_dir, "epsilon_audit.jsonl")
        observability = Observability(enabled=True, audit_path=audit_path)
        engine = PrivateQueryEngine(
            database,
            total_epsilon=8.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            random_state=37,
            observability=observability,
            execute_workers=2,
            execute_backend="process",
        )
        with engine:
            engine.open_session("alice", epsilon_allotment=2.0)
            engine.open_session("bob", epsilon_allotment=0.25)
            # One traced flush on the process backend: worker spans included.
            engine.submit("alice", identity_workload(domain), epsilon=0.5)
            engine.submit("alice", cumulative_workload(domain), epsilon=0.25)
            engine.flush()
            trace = observability.tracer.last()
            print(trace.waterfall())
            workers = trace.find("worker")
            print(
                f"  {len(trace.find('unit'))} execute unit(s); worker spans "
                f"measured in pid(s) {sorted({s.attributes['pid'] for s in workers})} "
                f"(this process is {os.getpid()})"
            )

            # A top-up gets its own trace, and a refusal still hits the audit.
            engine.top_up("alice", identity_workload(domain), extra_epsilon=0.125)
            try:
                engine.ask("bob", cumulative_workload(domain), epsilon=1.0)
            except PrivacyBudgetError:
                pass

            # The registry speaks Prometheus; stats is now a snapshot of it.
            stats = engine.stats
            exported = observability.metrics.to_prometheus_text()
            excerpt = [
                line
                for line in exported.splitlines()
                if line.startswith(("engine_queries", "engine_flush_latency_seconds_count"))
            ]
            print("  metrics excerpt:\n    " + "\n    ".join(excerpt))
            quantiles = engine._h_flush.percentiles()
            print(
                f"  flush latency p50={quantiles['p50'] * 1e3:.2f}ms "
                f"p99={quantiles['p99'] * 1e3:.2f}ms over {stats.flushes} flushes"
            )

        # The audit stream survives the engine: every ε mutation, one line.
        with open(audit_path, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        print(f"  durable ε-audit ({len(records)} events): " + ", ".join(
            record["event"] for record in records
        ))
        charge = next(r for r in records if r["event"] == "charge" and "ticket_id" in r)
        print(
            f"  e.g. {charge['event']} of epsilon={charge['epsilon']} for "
            f"{charge['client_id']} ({charge['ticket_id']}) in {charge['trace_id']}"
        )
        refusal = next(r for r in records if r["event"] == "refusal")
        print(
            f"  and the refusal: client={refusal['client_id']} wanted "
            f"epsilon={refusal['epsilon']} — {refusal['error'][:60]}..."
        )


#: The crash half of ``durability_demo``: a child process that charges ε
#: against a durable ledger and then SIGKILLs itself mid-service.  Run in a
#: subprocess because ``kill -9`` is the point — no atexit, no flush, no
#: graceful anything.
_DURABILITY_CHILD = """
import os
import signal
import sys

import numpy as np

from repro.core import Database, Domain, identity_workload
from repro.engine import PrivateQueryEngine
from repro.policy import line_policy

ledger_path = sys.argv[1]
rng = np.random.default_rng(0)
domain = Domain((256,))
counts = np.zeros(domain.size)
counts[rng.integers(20, 230, size=40)] = rng.integers(1, 200, size=40)
database = Database(domain, counts, name="salaries")
engine = PrivateQueryEngine(
    database,
    total_epsilon=4.0,
    default_policy=line_policy(domain),
    random_state=7,
    durable_ledger=ledger_path,
)
engine.open_session("alice", epsilon_allotment=1.0)
engine.ask("alice", identity_workload(domain), epsilon=0.75)
print("child: charged epsilon=0.75 for alice, now dying uncleanly", flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""


def durability_demo(database: Database, domain: Domain) -> None:
    """Crash recovery: charge ε, ``kill -9``, relaunch, get refused.

    Without a durable ledger a crashed server forgets every ε it charged —
    a *privacy* bug, not an ops gap: clients could drain the same budget
    again after every restart.  With ``durable_ledger=`` every charge is
    journalled to SQLite (WAL, synchronous=NORMAL) *before* the mechanism
    runs, so the relaunched engine recovers the spent budget and keeps
    enforcing it.
    """
    import subprocess
    import sys

    print("\n-- durable ε-ledger crash recovery --")
    with tempfile.TemporaryDirectory() as tmp_dir:
        ledger_path = os.path.join(tmp_dir, "epsilon_ledger.db")
        script = os.path.join(tmp_dir, "crash_child.py")
        with open(script, "w", encoding="utf-8") as handle:
            handle.write(_DURABILITY_CHILD)

        # Act 1: a server charges against the durable ledger and dies hard.
        result = subprocess.run(
            [sys.executable, script, ledger_path], env=dict(os.environ)
        )
        print(f"  child exited with {result.returncode} (SIGKILL — no cleanup ran)")

        # Act 2: the relaunch recovers what the dead server spent...
        engine = PrivateQueryEngine(
            database,
            total_epsilon=4.0,
            default_policy=line_policy(domain),
            random_state=7,
            durable_ledger=ledger_path,
        )
        with engine:
            alice = engine.session("alice")
            print(
                f"  relaunched: alice recovered={alice.recovered} "
                f"spent={alice.spent():.2f} remaining={alice.remaining():.2f}"
            )
            # ...and enforces it: the budget the crash tried to erase is gone.
            try:
                engine.ask("alice", identity_workload(domain), epsilon=0.5)
            except PrivacyBudgetError as error:
                print(f"  over-budget retry refused: {error}")
            answers = engine.ask("alice", identity_workload(domain), epsilon=0.25)
            print(
                f"  affordable query still served ({answers.shape[0]} rows); "
                f"alice remaining={alice.remaining():.2f}"
            )


def http_serving_demo(database: Database, domain: Domain) -> None:
    """The network serving tier: register, submit, poll — over real HTTP.

    One event loop serves every client: submissions become awaitable
    tickets (a suspended coroutine per pending query, not a parked
    thread), the deadline flusher is a ``loop.call_later`` timer, and the
    blocking ``flush`` runs on a single dedicated flusher thread.  The
    walkthrough drives the full lifecycle a network client sees:

    1. boot a :class:`repro.engine.serving.ServingServer` on an ephemeral
       port;
    2. ``POST /api/clients`` — open a budgeted session (the response is
       the budget snapshot also served at ``GET /api/clients/{id}/budget``);
    3. ``POST /api/queries`` with ``wait=true`` — submit and await the
       noisy histogram inline;
    4. ``POST`` without ``wait`` then ``GET /api/queries/{id}`` — the
       202-accepted-then-poll flow, resolved here by the deadline flush;
    5. ``GET /metrics`` — the same engine counters, as Prometheus text.

    See ``docs/serving_http_api.md`` for the full endpoint reference.
    """
    import asyncio

    from repro.engine import Observability
    from repro.engine.serving import ServingServer, create_app

    print("\n-- HTTP serving tier --")
    engine = PrivateQueryEngine(
        database,
        total_epsilon=8.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        random_state=47,
        observability=Observability(enabled=True),
    )

    async def wire_client(host: str, port: int, method: str, path: str, body=None):
        """A minimal raw HTTP/1.1 client (what any real client would send)."""
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(body).encode() if body is not None else b""
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + payload
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        status = int(raw.split(b" ", 2)[1])
        head, _, body_bytes = raw.partition(b"\r\n\r\n")
        if b"application/json" in head:
            return status, json.loads(body_bytes)
        return status, body_bytes.decode()

    async def walkthrough() -> None:
        app = create_app(engine, max_batch_size=32, max_delay=0.01)
        async with ServingServer(app) as server:
            host, port = server.host, server.port
            print(f"  server up on http://{host}:{port} (ephemeral port)")

            status, snapshot = await wire_client(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 1.0},
            )
            print(
                f"  registered alice ({status}): allotment="
                f"{snapshot['allotment']} remaining={snapshot['remaining']}"
            )

            status, answered = await wire_client(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "identity"},
                    "epsilon": 0.25,
                    "wait": True,
                    "timeout": 10,
                },
            )
            print(
                f"  wait=true submit ({status}): ticket "
                f"{answered['ticket_id']} {answered['status']}, histogram "
                f"head {[round(v, 2) for v in answered['answers'][:4]]}"
            )

            status, accepted = await wire_client(
                host,
                port,
                "POST",
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "total"},
                    "epsilon": 0.25,
                },
            )
            print(
                f"  fire-and-poll submit ({status}): ticket "
                f"{accepted['ticket_id']} {accepted['status']}"
            )
            await asyncio.sleep(0.05)  # the deadline flush fires meanwhile
            status, polled = await wire_client(
                host, port, "GET", f"/api/queries/{accepted['ticket_id']}"
            )
            print(
                f"  poll ({status}): {polled['status']}, total = "
                f"{polled['answers'][0]:.2f}"
            )

            _, budget = await wire_client(
                host, port, "GET", "/api/clients/alice/budget"
            )
            print(
                f"  budget after two paid queries: spent={budget['spent']} "
                f"remaining={budget['remaining']}"
            )

            _, metrics_text = await wire_client(host, port, "GET", "/metrics")
            excerpt = [
                line
                for line in metrics_text.splitlines()
                if line.startswith("engine_queries_")
            ]
            print("  /metrics excerpt:\n    " + "\n    ".join(excerpt))

    asyncio.run(walkthrough())


def overload_demo(database: Database, domain: Domain) -> None:
    """Overload protection: shed-then-retry, deadlines, cancel, drain.

    Admission control runs *before* a submission reaches the engine, so a
    shed request is free — no ticket, no batch slot, no ε.  The walkthrough
    plays the abusive client and then the well-behaved one:

    1. a per-client token bucket sheds a burst with ``429`` and a
       ``Retry-After`` hint derived from observed flush latency;
    2. honouring the hint, the retry is admitted and answered — shedding
       cost the client nothing but the wait;
    3. ``X-Request-Deadline`` expires a query before its batch is charged:
       terminal ``expired`` status at zero ε;
    4. ``DELETE /api/queries/{id}`` cancels a pending ticket (first claim
       wins; never refunds ε already charged);
    5. ``aclose()`` drains: ``/ready`` flips to 503 while ``/health``
       stays 200, and late submits shed with ``reason: draining``.

    See the *Overload & retry semantics* section of
    ``docs/serving_http_api.md`` for the full contract.
    """
    import asyncio
    import time

    from repro.engine.serving import AdmissionController, ServingServer, create_app

    print("\n-- overload protection --")
    engine = PrivateQueryEngine(
        database,
        total_epsilon=8.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        random_state=53,
    )
    # A deliberately tight admission edge: 2 requests of burst per client,
    # refilling at 20/s (so the Retry-After hint is short).
    admission = AdmissionController(engine, client_rate=20.0, client_burst=2.0)

    async def call(host, port, method, path, body=None, headers=None):
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(body).encode() if body is not None else b""
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n{extra}"
                f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + payload
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        status = int(raw.split(b" ", 2)[1])
        head, _, body_bytes = raw.partition(b"\r\n\r\n")
        response_headers = {}
        for line in head.decode().split("\r\n")[1:]:
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        parsed = (
            json.loads(body_bytes)
            if b"application/json" in head
            else body_bytes.decode()
        )
        return status, response_headers, parsed

    async def walkthrough() -> None:
        app = create_app(engine, max_batch_size=32, max_delay=0.01, admission=admission)
        async with ServingServer(app) as server:
            host, port = server.host, server.port
            await call(
                host,
                port,
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 2.0},
            )
            submit = {
                "client_id": "alice",
                "workload": {"kind": "identity"},
                "epsilon": 0.05,
            }

            # 1. Burn the burst, then get shed.  The shed request costs
            # nothing: no ticket was created, no ε charged.
            statuses = []
            retry_after = None
            for _ in range(4):
                status, headers, payload = await call(
                    host, port, "POST", "/api/queries", submit
                )
                statuses.append(status)
                if status == 429:
                    retry_after = headers["retry-after"]
            _, _, budget = await call(host, port, "GET", "/api/clients/alice/budget")
            print(
                f"  burst of 4 submits → statuses {statuses}; shed responses "
                f"said Retry-After: {retry_after}s and never reached the "
                f"engine (spent={budget['spent']:.2f} — only admitted work "
                "can ever charge)"
            )

            # 2. The well-behaved retry: honour the hint, get admitted.
            await asyncio.sleep(float(retry_after))
            status, _, payload = await call(
                host, port, "POST", "/api/queries", {**submit, "wait": True}
            )
            print(
                f"  retried after the hint → {status}, ticket "
                f"{payload['ticket_id']} {payload['status']}"
            )

            # 3. A deadline already in the past: resolved expired at zero ε,
            # never queued, never charged.
            _, _, before = await call(host, port, "GET", "/api/clients/alice/budget")
            await asyncio.sleep(0.1)  # refill one token
            status, _, payload = await call(
                host,
                port,
                "POST",
                "/api/queries",
                submit,
                headers={"X-Request-Deadline": str(time.time() - 1.0)},
            )
            _, _, after = await call(host, port, "GET", "/api/clients/alice/budget")
            print(
                f"  born-dead deadline → {status}, status {payload['status']!r}, "
                f"spent unchanged at {after['spent']:.2f}"
            )

            # 4. Cancel a pending ticket before its batch flushes.
            await asyncio.sleep(0.1)  # refill one token
            status, _, pending = await call(
                host, port, "POST", "/api/queries", submit
            )
            status, _, cancelled = await call(
                host, port, "DELETE", f"/api/queries/{pending['ticket_id']}"
            )
            print(
                f"  DELETE pending ticket {pending['ticket_id']} → {status}, "
                f"status {cancelled['status']!r} (ε already charged is never "
                "refunded — this one had charged nothing)"
            )

            # 5. Drain: readiness flips, liveness stays, late submits shed.
            ready_before = (await call(host, port, "GET", "/ready"))[0]
            app.drain()
            ready_after = (await call(host, port, "GET", "/ready"))[0]
            health = (await call(host, port, "GET", "/health"))[0]
            status, _, shed = await call(host, port, "POST", "/api/queries", submit)
            print(
                f"  drain: /ready {ready_before}→{ready_after} while /health "
                f"stays {health}; late submit → {status} "
                f"(reason {shed['reason']!r})"
            )
        await app.aclose()
        engine.close()

    asyncio.run(walkthrough())


if __name__ == "__main__":
    main()
