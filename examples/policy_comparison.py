#!/usr/bin/env python3
"""Comparing policies: how the policy graph shapes mechanism choice and error.

This example exercises the parts of the paper that are about *reasoning over
policies* rather than a single mechanism:

* the planner's decision procedure (tree → spanner → grid → generic matrix
  mechanism);
* the subgraph-approximation trade-off of Lemma 4.5: larger θ gives a weaker
  neighbor notion (more utility per bit of sensitivity) but pays an ε/ℓ
  stretch penalty through the spanner;
* the negative result (Theorem 4.4): the cycle policy has no isometric L1
  embedding, so no exact transformation exists — only spanning-tree
  approximations with stretch ``n - 1``;
* the SVD lower bounds of Appendix A, showing how the achievable error shrinks
  as the policy is relaxed.

Run with::

    python examples/policy_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.blowfish import (
    cycle_has_no_isometric_tree_embedding,
    plan_mechanism,
    subgraph_approximation_budget,
)
from repro.bounds import blowfish_svd_lower_bound, svd_lower_bound
from repro.core import Database, Domain, all_range_queries_workload, mean_squared_error, random_range_queries_workload
from repro.mechanisms import graph_distance_exponential_mechanism
from repro.policy import (
    approximate_with_bfs_tree,
    approximate_with_line_spanner,
    cycle_policy,
    grid_policy,
    line_policy,
    threshold_policy,
)


def main() -> None:
    rng = np.random.default_rng(3)
    epsilon = 0.5

    # ----------------------------------------------------------- planner demo
    print("=== Planner decisions ===")
    domain_1d = Domain((512,))
    domain_2d = Domain((24, 24))
    for policy in (
        line_policy(domain_1d),
        threshold_policy(domain_1d, 8),
        grid_policy(domain_2d),
    ):
        plan = plan_mechanism(policy, epsilon)
        print(f"{policy.name:14s} -> {plan.name:24s} via {plan.route}")

    # --------------------------------------------- spanner stretch trade-off
    print("\n=== Subgraph approximation (Lemma 4.5) ===")
    counts = np.zeros(domain_1d.size)
    counts[rng.integers(0, domain_1d.size, 50)] = rng.integers(1, 100, 50)
    database = Database(domain_1d, counts, name="demo")
    workload = random_range_queries_workload(domain_1d, 500, random_state=9)
    true_answers = workload.answer(database)
    for theta in (2, 8, 32):
        policy = threshold_policy(domain_1d, theta)
        spanner = approximate_with_line_spanner(policy, theta)
        budget, stretch = subgraph_approximation_budget(spanner, epsilon)
        plan = plan_mechanism(policy, epsilon, prefer_data_dependent=False)
        noisy = plan.algorithm.answer(workload, database, rng)
        error = mean_squared_error(true_answers, noisy)
        print(
            f"theta={theta:3d}: spanner stretch={stretch}, effective budget={budget:.3f}, "
            f"range-query error={error:10.1f}"
        )

    # ------------------------------------------------------- negative result
    print("\n=== Negative result (Theorem 4.4) ===")
    cycle = cycle_policy(Domain((8,)))
    print(
        "Cycle policy admits an exact (isometric) tree transformation:",
        not cycle_has_no_isometric_tree_embedding(cycle),
    )
    bfs = approximate_with_bfs_tree(cycle)
    print(
        f"Best we can do is a spanning tree with stretch {bfs.stretch} "
        f"(theory says {cycle.domain.size - 1} for an {cycle.domain.size}-cycle), so a "
        f"tree-based mechanism must run with budget epsilon/{bfs.stretch}."
    )
    mechanism = graph_distance_exponential_mechanism(cycle, epsilon)
    probabilities = mechanism.probabilities(0)
    print(
        "Exponential mechanism on the cycle (the counterexample's mechanism): "
        f"output distribution for input 0 = {np.round(probabilities, 3)}"
    )

    # ------------------------------------------------------- SVD lower bounds
    print("\n=== SVD lower bounds (Appendix A) ===")
    small_domain = Domain((64,))
    ranges = all_range_queries_workload(small_domain)
    dp_bound = svd_lower_bound(ranges.matrix, epsilon=1.0, delta=0.001)
    print(f"Unbounded DP lower bound for R_64:      {dp_bound:12.1f}")
    for theta in (1, 4, 16):
        policy = threshold_policy(small_domain, theta)
        bound = blowfish_svd_lower_bound(policy, ranges, epsilon=1.0, delta=0.001)
        print(f"Blowfish lower bound under G^{theta:<2d}_64:     {bound:12.1f}")
    print(
        "\nAt this domain size the G^1 policy already has a lower unavoidable error than "
        "unbounded DP, while larger theta values start higher but grow more slowly with "
        "the domain size — exactly the reading of Figure 10a in the paper (run the "
        "bench_figure10 benchmark to see the full curves)."
    )


if __name__ == "__main__":
    main()
