#!/usr/bin/env python3
"""Quickstart: answer range queries under a Blowfish policy.

This example walks through the core workflow of the library:

1. describe the data domain and the database (a histogram vector);
2. pick a Blowfish policy graph describing *which pairs of values* must be
   indistinguishable (here: adjacent salary bins, the line policy of the
   paper's Section 3);
3. let the policy-aware planner choose a mechanism, or pick one explicitly;
4. compare the error against the standard differentially private baseline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.blowfish import (
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
    dp_privelet_baseline,
    plan_mechanism,
)
from repro.core import Database, Domain, mean_squared_error, random_range_queries_workload
from repro.policy import line_policy


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A domain of 1024 binned salaries and a sparse histogram over it.
    domain = Domain((1024,))
    counts = np.zeros(domain.size)
    employed_bins = rng.integers(100, 900, size=60)
    counts[employed_bins] = rng.integers(1, 500, size=60)
    database = Database(domain, counts, name="salaries")
    print(f"Database: {database}")

    # 2. The line policy: only adjacent salary bins must be indistinguishable,
    #    i.e. an adversary may learn the rough salary range but not the exact bin.
    policy = line_policy(domain)
    print(f"Policy:   {policy}")

    # 3. A workload of 2 000 random range queries ("how many people earn
    #    between bin l and bin r?") and a privacy budget.
    workload = random_range_queries_workload(domain, 2000, random_state=1)
    epsilon = 0.1

    # 3a. Let the planner pick a mechanism for this policy...
    plan = plan_mechanism(policy, epsilon)
    print(f"\nPlanner chose: {plan.name} (route: {plan.route})")
    print(f"Rationale:     {plan.rationale}\n")

    # 3b. ...and also build the paper's named algorithms explicitly.
    algorithms = [
        dp_privelet_baseline(epsilon, (domain.size,)),     # eps/2-DP baseline
        blowfish_transformed_laplace(policy, epsilon),     # Algorithm 1
        blowfish_transformed_dawa(policy, epsilon),        # data-dependent variant
        plan.algorithm,
    ]

    # 4. Compare mean squared error per query.
    true_answers = workload.answer(database)
    print(f"{'algorithm':32s} {'mean squared error/query':>26s}")
    for algorithm in algorithms:
        noisy = algorithm.answer(workload, database, rng)
        error = mean_squared_error(true_answers, noisy)
        print(f"{algorithm.name:32s} {error:26.2f}")

    print(
        "\nThe Blowfish mechanisms answer the same queries orders of magnitude more "
        "accurately than the epsilon/2-differentially-private baseline, because the "
        "line policy only protects adjacent salary bins (Theorem 5.2 of the paper)."
    )


if __name__ == "__main__":
    main()
