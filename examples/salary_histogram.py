#!/usr/bin/env python3
"""Releasing a salary histogram under the line policy (Section 3's example).

A totally ordered domain of binned salaries is protected with the line policy
``G^1_k``: an adversary may distinguish far-apart salaries (junior vs.
executive) but not adjacent bins.  The example releases the full histogram
(the ``Hist`` workload) with every algorithm of the paper's Figure 8(b/f) and
shows how the transformed-domain structure (prefix sums are non-decreasing) is
exploited by the consistency post-processing on sparse data.

Run with::

    python examples/salary_histogram.py
"""

from __future__ import annotations

import numpy as np

from repro.blowfish import (
    blowfish_transformed_consistent,
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
    dp_dawa_baseline,
    dp_laplace_baseline,
    verify_answer_preservation,
    verify_tree_neighbor_preservation,
)
from repro.core import Database, Domain, identity_workload, mean_squared_error
from repro.data import load_dataset
from repro.policy import PolicyTransform, TreeTransform, line_policy


def main() -> None:
    rng = np.random.default_rng(42)

    # Dataset G of Table 1: personal medical expenses — reinterpreted here as a
    # binned-salary histogram (sparse: ~75% of the 4096 bins are empty).
    database = load_dataset("G", random_state=5).rename("salaries")
    domain = database.domain
    policy = line_policy(domain)
    workload = identity_workload(domain)
    print(f"Database: {database}")

    # Peek under the hood: the transform turns the histogram into prefix sums.
    transform = PolicyTransform(policy)
    tree = TreeTransform(transform)
    prefix_sums = tree.transform_database(database)
    print(
        f"Transformed database x_G: length {prefix_sums.shape[0]}, "
        f"non-decreasing: {bool(np.all(np.diff(prefix_sums) >= 0))}, "
        f"distinct values: {len(np.unique(prefix_sums))} "
        f"(= number of non-empty bins + 1 boundary effects)"
    )
    print(
        "Theorem checks — answers preserved:",
        verify_answer_preservation(policy, workload, database),
        "| neighbors preserved (Lemma 4.9):",
        verify_tree_neighbor_preservation(policy, database),
    )

    epsilon = 0.1
    algorithms = [
        dp_laplace_baseline(epsilon),
        dp_dawa_baseline(epsilon, (domain.size,)),
        blowfish_transformed_laplace(policy, epsilon),
        blowfish_transformed_consistent(policy, epsilon),
        blowfish_transformed_dawa(policy, epsilon),
    ]

    true_answers = workload.answer(database)
    print(f"\nHist workload, epsilon = {epsilon}")
    print(f"{'algorithm':32s} {'mean squared error/bin':>24s}")
    for algorithm in algorithms:
        noisy = algorithm.answer(workload, database, rng)
        error = mean_squared_error(true_answers, noisy)
        print(f"{algorithm.name:32s} {error:24.2f}")

    print(
        "\nTransformed + Laplace is about 2x better than the epsilon/2-DP Laplace "
        "baseline; the consistency step (projecting the noisy prefix sums onto "
        "non-decreasing sequences) wins big because the data is sparse, exactly as "
        "reported for the sparse datasets E, F and G in Section 6.1."
    )


if __name__ == "__main__":
    main()
