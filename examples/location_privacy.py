#!/usr/bin/env python3
"""Location privacy with grid policies (geo-indistinguishability).

The paper's motivating example for the grid policy ``G^θ_{k²}`` (Sections 1
and 3): it is acceptable to reveal an individual's *rough* location (their
city), but their fine-grained location (home vs. the cafe next door) must stay
hidden.  Two grid cells are policy-neighbors exactly when they are within
Manhattan distance θ, which matches geo-indistinguishability.

The example builds a synthetic city-scale check-in dataset, answers 2-D range
queries ("how many check-ins in this rectangle?") under the grid policy, and
compares against the standard differentially private baselines — reproducing
the shape of Figure 8(a/e).

Run with::

    python examples/location_privacy.py
"""

from __future__ import annotations

import numpy as np

from repro.blowfish import (
    blowfish_transformed_privelet_grid,
    dp_dawa_baseline,
    dp_privelet_baseline,
)
from repro.core import Database, Domain, mean_squared_error, random_range_queries_workload
from repro.data import load_dataset
from repro.policy import grid_policy, policy_distance


def main() -> None:
    rng = np.random.default_rng(7)

    # A 50x50 grid over a metropolitan area; counts are synthetic geo-tagged
    # check-ins clustered around a few hot spots (the T50 dataset of Table 1).
    database = load_dataset("T50", random_state=3)
    domain = database.domain
    print(f"Check-in database: {database}")

    # The unit grid policy: only cells at Manhattan distance 1 are
    # indistinguishable.  Farther cells receive a guarantee that degrades with
    # their distance (Equation 1 of the paper) — exactly geo-indistinguishability.
    policy = grid_policy(domain)
    cell_home = domain.index_of((10, 10))
    cell_cafe = domain.index_of((10, 11))
    cell_other_city = domain.index_of((45, 45))
    print(
        "Policy distance home->cafe:        "
        f"{policy_distance(policy, cell_home, cell_cafe):.0f} (strongly protected)"
    )
    print(
        "Policy distance home->other city:  "
        f"{policy_distance(policy, cell_home, cell_other_city):.0f} "
        "(weak protection, rough location may be learned)"
    )

    # Analysts ask rectangular "how many check-ins here?" queries.
    workload = random_range_queries_workload(domain, 1000, random_state=11)
    epsilon = 0.1
    true_answers = workload.answer(database)

    algorithms = [
        dp_privelet_baseline(epsilon, domain.shape),
        dp_dawa_baseline(epsilon, domain.shape),
        blowfish_transformed_privelet_grid(policy, epsilon),
    ]

    print(f"\n2-D range queries, epsilon = {epsilon}")
    print(f"{'algorithm':28s} {'mean squared error/query':>26s}")
    for algorithm in algorithms:
        noisy = algorithm.answer(workload, database, rng)
        error = mean_squared_error(true_answers, noisy)
        print(f"{algorithm.name:28s} {error:26.1f}")

    print(
        "\nThe policy-aware mechanism (Transformed + Privelet, Theorem 5.4) measures "
        "one-dimensional ranges over the grid's edge slabs and beats the epsilon/2-DP "
        "baselines, because the grid policy only requires hiding *nearby* moves."
    )


if __name__ == "__main__":
    main()
