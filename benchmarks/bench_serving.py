"""Benchmark the serving tier: async front-end vs thread-per-client, and
HTTP-path determinism.

Runs as a plain script (``python benchmarks/bench_serving.py``) and writes
``BENCH_serving.json`` at the repository root.  Two experiments:

1. **Front-end throughput at 32 concurrent clients.**  The *baseline* is
   the thread-per-client model: every client parks an OS thread on a
   blocking ``BatchingExecutor.ask`` for each request — the cost model a
   network server cannot afford.  The *async* mode serves the identical
   request stream as 32 coroutines awaiting
   :class:`~repro.engine.serving.AsyncQueryEngine` tickets on one event
   loop (plus one flusher thread — a fixed cost).  Both share the same
   :class:`~repro.engine.waiters.BatchTriggers` policy, so the flush
   batching is identical and the measured difference is the serving model
   itself.  The headline, ``async_speedup_32_clients``, gates at ≥ 2×.

2. **HTTP-path determinism.**  A seeded engine served over a real
   :class:`~repro.engine.serving.ServingServer` socket must draw exactly
   what a direct ``flush()`` draws, and charge exactly the same ε ledger —
   the serving tier adds no privacy semantics.

The wall-clock gate self-arms only on hosts with ≥ 4 cores (below that the
thread/coroutine contrast drowns in scheduler noise) and can always be
demoted to a warning with ``BENCH_SERVING_TIMING_GATE=0``; the determinism
gates are deterministic and always enforced.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core import Database, Domain, cumulative_workload, identity_workload  # noqa: E402
from repro.core.workload import Workload  # noqa: E402
from repro.engine import BatchingExecutor, PrivateQueryEngine  # noqa: E402
from repro.engine.serving import AsyncQueryEngine, ServingServer, create_app  # noqa: E402
from repro.policy import line_policy  # noqa: E402

DOMAIN_SIZE = 256
NUM_CLIENTS = 32
REQUESTS_PER_CLIENT = 8
EPSILON_PER_QUERY = 0.001
MAX_BATCH_SIZE = NUM_CLIENTS
MAX_DELAY = 0.005
TIMING_GATE_MIN_CORES = 4


def build_fixture():
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(7)
    counts = rng.integers(0, 50, size=DOMAIN_SIZE).astype(float)
    database = Database(domain, counts, name="bench-serving")
    return domain, database


def make_engine(database, domain, num_sessions: int, seed: int = 0):
    engine = PrivateQueryEngine(
        database,
        total_epsilon=1000.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=seed,
    )
    for index in range(num_sessions):
        engine.open_session(f"client{index}", 10.0)
    return engine


def client_workload(domain, client_index: int, request_index: int) -> Workload:
    matrix = np.zeros((1, domain.size))
    matrix[0, (11 * client_index + request_index) % domain.size] = 1.0
    return Workload(domain, matrix, name=f"c{client_index}r{request_index}")


def warm_plan(engine, domain):
    """Plan once up front so both modes measure serving, not planning."""
    engine.ask("client0", client_workload(domain, 0, 0), epsilon=EPSILON_PER_QUERY)


# ----------------------------------------------------------------- throughput
def run_thread_per_client(domain, database):
    """32 OS threads, each parking on blocking asks — the baseline model."""
    engine = make_engine(database, domain, NUM_CLIENTS)
    warm_plan(engine, domain)
    total = NUM_CLIENTS * REQUESTS_PER_CLIENT
    with BatchingExecutor(
        engine, max_batch_size=MAX_BATCH_SIZE, max_delay=MAX_DELAY
    ) as executor:

        def client(index: int) -> None:
            for request in range(REQUESTS_PER_CLIENT):
                executor.ask(
                    f"client{index}",
                    client_workload(domain, index, request),
                    epsilon=EPSILON_PER_QUERY,
                    timeout=60.0,
                )

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(NUM_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    return {
        "clients": NUM_CLIENTS,
        "requests": total,
        "qps": total / elapsed,
        "elapsed_seconds": elapsed,
        "os_threads_for_clients": NUM_CLIENTS,
        "mechanism_invocations": engine.stats.mechanism_invocations,
    }


def run_async_front_end(domain, database):
    """32 coroutines on one loop awaiting tickets — zero threads per client."""
    engine = make_engine(database, domain, NUM_CLIENTS)
    warm_plan(engine, domain)
    total = NUM_CLIENTS * REQUESTS_PER_CLIENT

    async def scenario() -> float:
        async with AsyncQueryEngine(
            engine, max_batch_size=MAX_BATCH_SIZE, max_delay=MAX_DELAY
        ) as front:

            async def client(index: int) -> None:
                for request in range(REQUESTS_PER_CLIENT):
                    await front.ask(
                        f"client{index}",
                        client_workload(domain, index, request),
                        epsilon=EPSILON_PER_QUERY,
                        timeout=60.0,
                    )

            started = time.perf_counter()
            await asyncio.gather(*(client(index) for index in range(NUM_CLIENTS)))
            return time.perf_counter() - started

    elapsed = asyncio.run(scenario())
    return {
        "clients": NUM_CLIENTS,
        "requests": total,
        "qps": total / elapsed,
        "elapsed_seconds": elapsed,
        "os_threads_for_clients": 0,
        "mechanism_invocations": engine.stats.mechanism_invocations,
    }


# ---------------------------------------------------------------- determinism
def run_http_determinism(domain, database):
    """The always-strict gate: HTTP draws and ledgers == direct flush."""

    def ledger(engine):
        return [
            (op.label, op.epsilon, op.partition)
            for op in engine.session("alice").accountant.operations
        ]

    direct = make_engine(database, domain, 0, seed=17)
    direct.open_session("alice", 10.0)
    tickets = [
        direct.submit("alice", identity_workload(domain), 0.5),
        direct.submit("alice", cumulative_workload(domain), 0.25),
    ]
    direct.flush()
    direct_answers = [ticket.result() for ticket in tickets]

    served = make_engine(database, domain, 0, seed=17)

    async def scenario():
        import urllib.request

        app = create_app(served, max_batch_size=64, max_delay=30.0)
        async with ServingServer(app) as server:
            base = f"http://{server.host}:{server.port}"
            loop = asyncio.get_running_loop()

            def post(path, body):
                request = urllib.request.Request(
                    base + path, data=json.dumps(body).encode(), method="POST"
                )
                with urllib.request.urlopen(request) as response:
                    return json.loads(response.read())

            def get(path):
                with urllib.request.urlopen(base + path) as response:
                    return json.loads(response.read())

            await loop.run_in_executor(
                None,
                post,
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 10.0},
            )
            first = await loop.run_in_executor(
                None,
                post,
                "/api/queries",
                {"client_id": "alice", "workload": {"kind": "identity"}, "epsilon": 0.5},
            )
            second = await loop.run_in_executor(
                None,
                post,
                "/api/queries",
                {
                    "client_id": "alice",
                    "workload": {"kind": "cumulative"},
                    "epsilon": 0.25,
                },
            )
            await loop.run_in_executor(None, post, "/api/flush", {})
            return [
                await loop.run_in_executor(
                    None, get, f"/api/queries/{payload['ticket_id']}"
                )
                for payload in (first, second)
            ]

    polled = asyncio.run(scenario())
    served_answers = [np.asarray(payload["answers"]) for payload in polled]
    draws_identical = all(
        np.array_equal(direct_vector, served_vector)
        for direct_vector, served_vector in zip(direct_answers, served_answers)
    )
    ledgers_identical = ledger(direct) == ledger(served)
    return {
        "queries": len(polled),
        "draws_identical": bool(draws_identical),
        "ledgers_identical": bool(ledgers_identical),
        "ledger_entries": len(ledger(direct)),
    }


def main() -> int:
    domain, database = build_fixture()

    thread_mode = run_thread_per_client(domain, database)
    async_mode = run_async_front_end(domain, database)
    speedup = async_mode["qps"] / thread_mode["qps"]
    determinism = run_http_determinism(domain, database)

    cores = os.cpu_count() or 1
    report = {
        "domain_size": DOMAIN_SIZE,
        "clients": NUM_CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "max_batch_size": MAX_BATCH_SIZE,
        "max_delay_seconds": MAX_DELAY,
        "cpu_cores": cores,
        "thread_per_client": thread_mode,
        "async_front_end": async_mode,
        "async_speedup_32_clients": speedup,
        "http_determinism": determinism,
    }

    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_serving.json",
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    # The determinism gates are always enforced.  The wall-clock gate
    # self-arms only on >= 4 cores (on fewer, thread vs coroutine contrast
    # drowns in scheduler noise) and can be demoted explicitly with
    # BENCH_SERVING_TIMING_GATE=0 on shared/noisy runners such as CI.
    timing_gate = (
        os.environ.get("BENCH_SERVING_TIMING_GATE", "1") != "0"
        and cores >= TIMING_GATE_MIN_CORES
    )
    ok = True
    if speedup < 2.0:
        print(
            f"{'FAIL' if timing_gate else 'WARN'}: async front-end speedup "
            f"{speedup:.2f}x at {NUM_CLIENTS} clients is below the 2x bar "
            f"({cores} core(s); gate {'armed' if timing_gate else 'disarmed'})"
        )
        ok = ok and not timing_gate
    if not determinism["draws_identical"]:
        print("FAIL: HTTP-path noise draws differ from the direct flush")
        ok = False
    if not determinism["ledgers_identical"]:
        print("FAIL: HTTP-path epsilon ledger differs from the direct flush")
        ok = False
    if determinism["ledger_entries"] == 0:
        print("FAIL: determinism check charged nothing — gate is vacuous")
        ok = False
    if ok:
        print(
            f"OK: async front-end {speedup:.2f}x vs thread-per-client at "
            f"{NUM_CLIENTS} clients; HTTP path byte-identical to direct flush "
            f"({determinism['ledger_entries']} ledger entries compared)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
