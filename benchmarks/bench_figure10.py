"""Benchmark / reproduction of Figure 10 (Appendix A): SVD lower-bound curves.

Figure 10a plots the Li–Miklau lower bound (transferred to Blowfish through
Corollary A.2) for 1-D range queries under ``G^θ_k`` against the domain size;
Figure 10b does the same for 2-D range queries under ``G^θ_{k²}``.  Both use
ε = 1 and δ = 0.001.

Reduced configuration: domain sizes up to 128 (1-D) and 81 (2-D); the paper's
ranges (up to 300 / 90) are reachable by passing larger ``domain_sizes`` to
the runners but take a few minutes of dense SVD time.
"""

from __future__ import annotations

from repro.experiments import (
    figure10_rows,
    format_table,
    qualitative_findings_1d,
    qualitative_findings_2d,
    run_figure10a,
    run_figure10b,
)

from bench_utils import save_and_print


def test_figure10a_1d_lower_bounds(benchmark):
    points = benchmark.pedantic(
        run_figure10a,
        kwargs={"domain_sizes": (32, 64, 96, 128), "thetas": (1, 2, 4, 8, 16)},
        rounds=1,
        iterations=1,
    )
    text = format_table(figure10_rows(points))
    save_and_print("figure10a_1d_lower_bounds", text)
    findings = qualitative_findings_1d(points)
    # Paper reading of Figure 10a: the unbounded-DP bound grows faster than the
    # Blowfish bounds, and at moderate domain sizes the small-theta policies are
    # already below it (larger theta values cross over only at larger domains,
    # which is also visible in the paper's plot).
    assert findings["unbounded_grows_faster_than_theta1"]
    grouped = {point.series: point for point in points if point.domain_size == 128}
    for theta in (1, 2, 4):
        assert grouped[f"theta={theta}"].bound < grouped["unbounded DP"].bound


def test_figure10b_2d_lower_bounds(benchmark):
    points = benchmark.pedantic(
        run_figure10b,
        kwargs={"domain_sizes": (16, 36, 64, 81), "thetas": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    text = format_table(figure10_rows(points))
    save_and_print("figure10b_2d_lower_bounds", text)
    findings = qualitative_findings_2d(points)
    # Paper reading of Figure 10b: only theta = 1 beats unbounded DP, but every
    # theta beats bounded DP.
    assert findings["theta1_below_unbounded"]
    assert findings["all_theta_below_bounded"]
