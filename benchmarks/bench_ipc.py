"""Benchmark the miss-only blob protocol and the adaptive execute router.

Runs as a plain script (``python benchmarks/bench_ipc.py``) and writes
``BENCH_ipc.json`` at the repository root.  Three experiments:

1. **Per-dispatch shipped bytes.**  The same memoised ``(plan, database)``
   unit is dispatched repeatedly to a one-worker process backend under the
   PR 3 ``"always"`` protocol (plan + database pickles cross the pipe every
   dispatch) and under the ``"miss-only"`` protocol (digests only; blobs at
   most once).  The headline gate is deterministic byte accounting, not
   wall-clock: steady-state per-dispatch bytes must drop **≥ 10×**.  The
   fixture makes the honest comparison hard, not easy — a large histogram
   (so the database blob dominates) but *narrow* workloads (so the payload
   the protocol still ships stays small).

2. **Miss path + worker-restart recovery (deterministic, always
   enforced).**  A plan introduced after pool creation is shipped eagerly
   once; a simulated worker respawn (resident caches reset to the pool
   initializer's preload — exactly what a real respawn does) then forces
   the digest-only dispatch to MISS, and the parent's resubmission with
   full blobs must recover — with answers bit-identical to an inline run
   of the identical RNG state, since the worker refuses *before* touching
   the RNG payload.

3. **Adaptive routing decisions across unit sizes.**  Seeded engines serve
   multi-unit flushes of increasing kernel weight under
   ``execute_backend="adaptive"``: a cold cost model keeps unobserved and
   tiny units inline, while an injected heavy-kernel model fans the same
   flushes out to the process pool — and both serve answers bit-identical
   to the static thread backend.

All gates are deterministic (byte counts, miss counters, routing counters,
draw equality), so there is no timing-gate demotion switch.
"""

from __future__ import annotations

import json
import os
import pickle
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import Database, Domain  # noqa: E402
from repro.core.workload import Workload  # noqa: E402
from repro.engine import ExecuteCostModel, PlanCache, PrivateQueryEngine  # noqa: E402
from repro.engine.parallel import (  # noqa: E402
    ExecuteUnit,
    ProcessExecuteBackend,
    run_unit,
)
from repro.policy import line_policy  # noqa: E402

#: Large histogram: the database blob is what the miss-only protocol stops
#: shipping, so it should dominate an always-ship dispatch.
DOMAIN_SIZE = 16384
#: Narrow range queries: the payload (workloads + RNG child) that *every*
#: dispatch still ships stays small — the 10× gate is then a statement
#: about the protocol, not about a padded baseline.
QUERIES = 8
MAX_WIDTH = 32
STEADY_DISPATCHES = 10
EPSILON = 0.5


def build_fixture():
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(7)
    counts = rng.integers(0, 50, size=DOMAIN_SIZE).astype(float)
    database = Database(domain, counts, name="bench-ipc")
    policy = line_policy(domain)
    cache = PlanCache()
    plan = cache.plan_for(
        policy, EPSILON, prefer_data_dependent=False, consistency=False
    )
    return domain, database, policy, plan


def narrow_workload(domain, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    matrix = np.zeros((QUERIES, domain.size))
    for row in range(QUERIES):
        lo = int(rng.integers(0, domain.size - MAX_WIDTH))
        width = int(rng.integers(1, MAX_WIDTH))
        matrix[row, lo : lo + width + 1] = 1.0
    return Workload(domain, matrix, name=f"narrow-{seed}")


def make_unit(plan, domain, database, seed: int):
    """A dispatchable unit plus an identically-seeded inline reference RNG."""
    rng = np.random.default_rng(seed)
    reference_rng = pickle.loads(pickle.dumps(rng))
    unit = ExecuteUnit(
        plan=plan,
        workloads=[narrow_workload(domain, seed)],
        database=database,
        rng=rng,
        want_noise=False,
    )
    return unit, reference_rng


def run_protocol_bytes(protocol: str):
    """Steady-state per-dispatch bytes for one blob protocol."""
    domain, database, _, plan = build_fixture()
    backend = ProcessExecuteBackend(
        max_workers=1, preload=(database,), blob_protocol=protocol
    )
    try:
        # Warm-up: pool creation (initializer preload) + memo fill.
        for seed in (1, 2):
            unit, reference_rng = make_unit(plan, domain, database, seed)
            vectors, _ = backend.submit(unit).result()
            reference, _ = run_unit(
                plan, unit.workloads, database, reference_rng, want_noise=False
            )
            assert np.array_equal(vectors[0], reference[0])
        before = backend.bytes_shipped
        for seed in range(10, 10 + STEADY_DISPATCHES):
            unit, _ = make_unit(plan, domain, database, seed)
            backend.submit(unit).result()
        per_dispatch = (backend.bytes_shipped - before) / STEADY_DISPATCHES
        return {
            "protocol": protocol,
            "steady_per_dispatch_bytes": per_dispatch,
            "total_bytes_shipped": backend.bytes_shipped,
            "preload_bytes": backend.preload_bytes,
            "plan_blob_bytes": len(pickle.dumps(plan)),
            "database_blob_bytes": len(pickle.dumps(database)),
            "dispatches": backend.dispatches,
            "blob_cache_misses": backend.blob_cache_misses,
            "serialization_seconds": backend.serialization_seconds,
        }
    finally:
        backend.close()


def run_miss_recovery():
    """Exercise the miss path: late plan, simulated respawn, resubmission."""
    domain, database, policy, plan = build_fixture()
    backend = ProcessExecuteBackend(max_workers=1, preload=(database,))
    try:
        unit, _ = make_unit(plan, domain, database, 1)
        backend.submit(unit).result()  # creates the pool; plan+db preloaded

        # A plan the pool initializer never saw: its first dispatch ships
        # the blob eagerly (exactly once) to the worker that draws it.
        late_plan = PlanCache().plan_for(
            policy, 0.25, prefer_data_dependent=False, consistency=False
        )
        unit, _ = make_unit(late_plan, domain, database, 2)
        backend.submit(unit).result()
        misses_before_restart = backend.blob_cache_misses

        # Simulated respawn: the worker falls back to its initializer
        # preload, forgetting the late plan; the parent (as with a real
        # respawn) keeps dispatching digest-only and must recover.
        restarted = backend.reset_resident_caches()
        unit, reference_rng = make_unit(late_plan, domain, database, 3)
        vectors, _ = backend.submit(unit).result()
        reference, _ = run_unit(
            late_plan, unit.workloads, database, reference_rng, want_noise=False
        )
        recovered_identical = bool(np.array_equal(vectors[0], reference[0]))
        return {
            "misses_before_restart": misses_before_restart,
            "workers_restarted": restarted,
            "blob_cache_misses": backend.blob_cache_misses,
            "resubmits": backend.resubmits,
            "recovered_answers_identical": recovered_identical,
        }
    finally:
        backend.close()


def run_adaptive_routing():
    """Routing decisions across unit weights, plus parity with threads."""
    def serve(backend: str, domain_size: int, cost_model=None):
        domain = Domain((domain_size,))
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 50, size=domain_size).astype(float)
        database = Database(domain, counts, name=f"ipc-adaptive-{domain_size}")
        options = dict(
            total_epsilon=1000.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=0,
            execute_workers=2,
            execute_backend=backend,
        )
        if backend == "adaptive":
            options["execute_cost_model"] = cost_model
        engine = PrivateQueryEngine(database, **options)
        with engine:
            engine.open_session("bench", 500.0)
            tickets = []
            for round_index in range(3):
                for group, epsilon in enumerate((0.4, 0.2, 0.1)):
                    rng = np.random.default_rng(100 * round_index + group)
                    matrix = np.zeros((QUERIES, domain.size))
                    for row in range(QUERIES):
                        lo = int(rng.integers(0, domain.size - 2))
                        hi = int(rng.integers(lo + 1, domain.size))
                        matrix[row, lo : hi + 1] = 1.0
                    tickets.append(
                        engine.submit(
                            "bench",
                            Workload(domain, matrix, name=f"r{round_index}g{group}"),
                            epsilon,
                        )
                    )
                engine.flush()
            stats = engine.stats
        return [t.answers for t in tickets], stats

    rows = []
    for domain_size in (256, 4096):
        reference, _ = serve("thread", domain_size)
        cold_answers, cold_stats = serve("adaptive", domain_size)
        forced_answers, forced_stats = serve(
            "adaptive", domain_size, ExecuteCostModel(default_kernel_seconds=60.0)
        )
        rows.append(
            {
                "domain_size": domain_size,
                "cold_model": {
                    "adaptive_inline": cold_stats.adaptive_inline,
                    "adaptive_dispatched": cold_stats.adaptive_dispatched,
                    "bytes_shipped": cold_stats.bytes_shipped,
                },
                "forced_heavy_model": {
                    "adaptive_inline": forced_stats.adaptive_inline,
                    "adaptive_dispatched": forced_stats.adaptive_dispatched,
                    "bytes_shipped": forced_stats.bytes_shipped,
                    "blob_cache_misses": forced_stats.blob_cache_misses,
                },
                "answers_identical_to_thread": bool(
                    all(
                        a is not None and b is not None and np.array_equal(a, b)
                        for run in (cold_answers, forced_answers)
                        for a, b in zip(reference, run)
                    )
                ),
            }
        )
    return rows


def main() -> int:
    always = run_protocol_bytes("always")
    miss_only = run_protocol_bytes("miss-only")
    recovery = run_miss_recovery()
    routing = run_adaptive_routing()

    reduction = (
        always["steady_per_dispatch_bytes"] / miss_only["steady_per_dispatch_bytes"]
        if miss_only["steady_per_dispatch_bytes"] > 0
        else float("inf")
    )
    report = {
        "domain_size": DOMAIN_SIZE,
        "queries_per_dispatch": QUERIES,
        "max_query_width": MAX_WIDTH,
        "steady_dispatches_measured": STEADY_DISPATCHES,
        "protocols": {"always": always, "miss_only": miss_only},
        "steady_bytes_reduction": reduction,
        "miss_recovery": recovery,
        "adaptive_routing": routing,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_ipc.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    ok = True
    if reduction < 10.0:
        print(
            f"FAIL: steady-state per-dispatch bytes only dropped "
            f"{reduction:.1f}x vs the always-ship protocol — below the 10x bar"
        )
        ok = False
    if miss_only["blob_cache_misses"] != 0:
        print("FAIL: the steady-state sweep should never miss (preloaded pool)")
        ok = False
    if recovery["blob_cache_misses"] < 1 or recovery["resubmits"] < 1:
        print("FAIL: the simulated worker restart did not exercise the miss path")
        ok = False
    if not recovery["recovered_answers_identical"]:
        print("FAIL: the miss-path resubmission drew different noise")
        ok = False
    for row in routing:
        if not row["answers_identical_to_thread"]:
            print(
                f"FAIL: adaptive answers diverged from the thread backend "
                f"(domain {row['domain_size']})"
            )
            ok = False
        if row["forced_heavy_model"]["adaptive_dispatched"] == 0:
            print(
                f"FAIL: a heavy-kernel cost model never dispatched "
                f"(domain {row['domain_size']})"
            )
            ok = False
        if row["cold_model"]["adaptive_inline"] == 0:
            print(
                f"FAIL: a cold cost model should start units inline "
                f"(domain {row['domain_size']})"
            )
            ok = False
    if ok:
        print(
            f"OK: miss-only protocol ships {reduction:.0f}x fewer steady-state "
            f"bytes per dispatch ({miss_only['steady_per_dispatch_bytes']:.0f} vs "
            f"{always['steady_per_dispatch_bytes']:.0f}), miss path exercised "
            f"({recovery['blob_cache_misses']} miss(es), "
            f"{recovery['resubmits']} resubmission(s)) and recovered "
            "bit-identically; adaptive routes tiny units inline and forced-heavy "
            "units to the pool with thread-identical draws"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
