"""Benchmark / reproduction of Figure 3: data-independent error bound summary.

Prints the paper's bound table with concrete values for the evaluation
parameters (k = 4096, d = 2, θ = 4) and backs it with two small empirical
scaling studies: 1-D range-query error versus domain size (Blowfish flat,
Privelet growing) and the 2-D grid-policy comparison.
"""

from __future__ import annotations

from repro.experiments import (
    empirical_scaling_1d,
    empirical_scaling_2d,
    figure3_rows,
    format_table,
    render_results,
)

from bench_utils import join_sections, save_and_print


def test_figure3_bound_table(benchmark):
    rows = benchmark.pedantic(
        figure3_rows, kwargs={"epsilon": 1.0, "k": 4096, "d": 2, "theta": 4}, rounds=1, iterations=1
    )
    text = format_table(rows)
    save_and_print("figure3_bounds", text)
    assert all(row["improvement"] > 1 for row in rows)


def test_figure3_empirical_1d_scaling(benchmark):
    results = benchmark.pedantic(
        empirical_scaling_1d,
        kwargs={
            "epsilon": 0.1,
            "domain_sizes": (128, 256, 512, 1024),
            "num_queries": 300,
            "trials": 2,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title="1D range error vs domain size (eps=0.1)")
    save_and_print("figure3_empirical_1d", text)
    blowfish = [r.mean_error for r in results if r.algorithm == "Transformed+Laplace"]
    privelet = [r.mean_error for r in results if r.algorithm == "Privelet"]
    assert blowfish[-1] < privelet[-1]


def test_figure3_empirical_2d_scaling(benchmark):
    results = benchmark.pedantic(
        empirical_scaling_2d,
        kwargs={
            "epsilon": 0.1,
            "grid_sizes": (16, 24, 32),
            "num_queries": 200,
            "trials": 2,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title="2D range error vs grid size (eps=0.1)")
    save_and_print("figure3_empirical_2d", text)
    blowfish = [r.mean_error for r in results if r.algorithm == "Transformed+Privelet"]
    privelet = [r.mean_error for r in results if r.algorithm == "Privelet"]
    assert all(b < p for b, p in zip(blowfish, privelet))
