"""Benchmark the serving engine: cold vs. cached planning, batched vs. unbatched.

Runs as a plain script (``python benchmarks/bench_engine.py``) and writes
``BENCH_engine.json`` at the repository root with four measurements:

* ``cold_plan_seconds``      — per-query latency when every query replans
  (fresh ``plan_mechanism`` + ``PolicyTransform`` each time, the pre-engine
  behaviour);
* ``cached_plan_seconds``    — per-query latency through the engine's plan
  cache (same policy, distinct workloads, so the answer cache never hits);
* ``unbatched_qps`` / ``batched_qps`` — queries per second answered one
  mechanism invocation per query vs. one vectorised invocation per batch;
* ``replay_epsilon_charged`` — budget consumed by re-asking an already-paid
  query (must be exactly 0).

The acceptance bar for this repository is a ≥ 5× cached-plan speedup and a
zero-epsilon replay; the script exits non-zero when either regresses.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.blowfish.planner import plan_mechanism  # noqa: E402
from repro.core import Database, Domain, random_range_queries_workload  # noqa: E402
from repro.engine import PrivateQueryEngine  # noqa: E402
from repro.policy import threshold_policy  # noqa: E402

DOMAIN_SIZE = 256
THETA = 8
EPSILON_PER_QUERY = 0.01
REPEATS = 20
BATCH_CLIENTS = 16


def build_fixture():
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(7)
    counts = rng.integers(0, 50, size=DOMAIN_SIZE).astype(float)
    database = Database(domain, counts, name="bench")
    policy = threshold_policy(domain, THETA)
    workloads = [
        random_range_queries_workload(domain, num_queries=32, random_state=seed)
        for seed in range(REPEATS)
    ]
    return domain, database, policy, workloads


def bench_cold_plan(database, policy, workloads) -> float:
    """Replan from scratch for every query — the pre-engine behaviour."""
    start = time.perf_counter()
    for index, workload in enumerate(workloads):
        plan = plan_mechanism(policy, EPSILON_PER_QUERY, prefer_data_dependent=False)
        plan.algorithm.answer(workload, database, np.random.default_rng(index))
    return (time.perf_counter() - start) / len(workloads)


def bench_cached_plan(database, policy, workloads) -> tuple[float, PrivateQueryEngine]:
    """Serve the same queries through the engine's plan cache (warmed)."""
    engine = PrivateQueryEngine(
        database,
        total_epsilon=100.0,
        default_policy=policy,
        prefer_data_dependent=False,
        enable_answer_cache=False,
        random_state=0,
    )
    engine.open_session("bench", 50.0)
    engine.ask("bench", workloads[0], epsilon=EPSILON_PER_QUERY)  # warm the plan
    start = time.perf_counter()
    for workload in workloads:
        engine.ask("bench", workload, epsilon=EPSILON_PER_QUERY)
    elapsed = (time.perf_counter() - start) / len(workloads)
    return elapsed, engine


def bench_throughput(database, policy, workloads) -> tuple[float, float]:
    """Batched vs. unbatched queries/sec for one compatible flush."""
    batch = (workloads * ((BATCH_CLIENTS // len(workloads)) + 1))[:BATCH_CLIENTS]

    def make_engine():
        engine = PrivateQueryEngine(
            database,
            total_epsilon=100.0,
            default_policy=policy,
            prefer_data_dependent=False,
            enable_answer_cache=False,
            random_state=0,
        )
        for index in range(BATCH_CLIENTS):
            engine.open_session(f"client{index}", 1.0)
        # Warm the plan cache so both paths measure answering, not planning.
        engine.ask("client0", batch[0], epsilon=EPSILON_PER_QUERY)
        return engine

    engine = make_engine()
    start = time.perf_counter()
    for index, workload in enumerate(batch):
        engine.ask(f"client{index}", workload, epsilon=EPSILON_PER_QUERY)
    unbatched_qps = len(batch) / (time.perf_counter() - start)

    engine = make_engine()
    start = time.perf_counter()
    for index, workload in enumerate(batch):
        engine.submit(f"client{index}", workload, epsilon=EPSILON_PER_QUERY)
    engine.flush()
    batched_qps = len(batch) / (time.perf_counter() - start)
    return unbatched_qps, batched_qps


def bench_replay(database, policy, workloads) -> float:
    """Epsilon charged by re-asking an already-answered query (should be 0)."""
    engine = PrivateQueryEngine(
        database,
        total_epsilon=10.0,
        default_policy=policy,
        prefer_data_dependent=False,
        random_state=0,
    )
    session = engine.open_session("replay", 5.0)
    engine.ask("replay", workloads[0], epsilon=EPSILON_PER_QUERY)
    spent_before = session.spent()
    engine.ask("replay", workloads[0], epsilon=EPSILON_PER_QUERY)
    return session.spent() - spent_before


def main() -> int:
    domain, database, policy, workloads = build_fixture()

    cold = bench_cold_plan(database, policy, workloads)
    cached, engine = bench_cached_plan(database, policy, workloads)
    unbatched_qps, batched_qps = bench_throughput(database, policy, workloads)
    replay_epsilon = bench_replay(database, policy, workloads)

    speedup = cold / cached if cached > 0 else float("inf")
    report = {
        "domain_size": DOMAIN_SIZE,
        "theta": THETA,
        "queries": len(workloads),
        "cold_plan_seconds": cold,
        "cached_plan_seconds": cached,
        "plan_cache_speedup": speedup,
        "plan_cache_hit_rate": engine.plan_cache.stats.hit_rate,
        "unbatched_qps": unbatched_qps,
        "batched_qps": batched_qps,
        "batch_speedup": batched_qps / unbatched_qps if unbatched_qps else float("inf"),
        "replay_epsilon_charged": replay_epsilon,
    }

    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_engine.json",
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    # The replay gate is deterministic and always enforced.  The wall-clock
    # speedup gate can be demoted to a warning (BENCH_ENGINE_TIMING_GATE=0)
    # on shared/noisy runners such as CI, where scheduling hiccups could fail
    # an otherwise-green build; local runs stay strict by default.
    timing_gate = os.environ.get("BENCH_ENGINE_TIMING_GATE", "1") != "0"
    ok = True
    if speedup < 5.0:
        print(f"{'FAIL' if timing_gate else 'WARN'}: cached-plan speedup "
              f"{speedup:.1f}x is below the 5x bar")
        ok = ok and not timing_gate
    if abs(replay_epsilon) > 1e-12:
        print(f"FAIL: replay charged epsilon {replay_epsilon}")
        ok = False
    if ok:
        print(
            f"OK: plan cache {speedup:.1f}x faster, batching "
            f"{report['batch_speedup']:.1f}x throughput, replay free"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
