"""Benchmark / reproduction of Figure 9 (Appendix B): the ε ∈ {0.001, 1} panels.

Figure 9 repeats the four Figure 8 experiments at the extreme privacy budgets.
To keep the suite fast each panel runs on a reduced dataset subset; the
qualitative orderings asserted here are the ones the paper highlights for the
extreme budgets (the Blowfish advantage persists at ε = 1 and ε = 0.001, and
at ε = 1 the data-dependent variants remain competitive).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    mean_error_of,
    render_results,
    run_hist_experiment,
    run_range1d_experiment,
    run_range2d_experiment,
)

from bench_utils import join_sections, save_and_print

TRIALS = 2


@pytest.mark.parametrize("epsilon", [0.001, 1.0])
def test_figure9_hist_panel(benchmark, epsilon):
    results = benchmark.pedantic(
        run_hist_experiment,
        kwargs={
            "epsilon": epsilon,
            "datasets": ("B", "E"),
            "trials": TRIALS,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title=f"Hist under G^1_k, eps={epsilon}")
    save_and_print(f"figure9_hist_eps{epsilon}", text)
    for dataset in ("B", "E"):
        assert mean_error_of(results, "Transformed+Laplace", dataset) < mean_error_of(
            results, "Laplace", dataset
        )


@pytest.mark.parametrize("epsilon", [0.001, 1.0])
def test_figure9_1d_range_panel(benchmark, epsilon):
    results = benchmark.pedantic(
        run_range1d_experiment,
        kwargs={
            "epsilon": epsilon,
            "datasets": ("D", "G"),
            "num_queries": 400,
            "trials": TRIALS,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title=f"1D-Range under G^1_k, eps={epsilon}")
    save_and_print(f"figure9_1d_range_eps{epsilon}", text)
    for dataset in ("D", "G"):
        assert mean_error_of(results, "Transformed+Laplace", dataset) < mean_error_of(
            results, "Privelet", dataset
        ) / 50


@pytest.mark.parametrize("epsilon", [0.001, 1.0])
def test_figure9_2d_range_panel(benchmark, epsilon):
    results = benchmark.pedantic(
        run_range2d_experiment,
        kwargs={
            "epsilon": epsilon,
            "datasets": ("T25", "T50"),
            "num_queries": 300,
            "trials": TRIALS,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title=f"2D-Range under G^1_k2, eps={epsilon}")
    save_and_print(f"figure9_2d_range_eps{epsilon}", text)
    for dataset in ("T25", "T50"):
        assert mean_error_of(results, "Transformed+Privelet", dataset) < mean_error_of(
            results, "Privelet", dataset
        )
