"""Benchmark / reproduction of Figure 8(c, g) and 9(c, g): 1D-Range under G¹_k.

Compares ε/2-DP Privelet and DAWA against the three Blowfish mechanisms on
random 1-D range queries over the Table 1 datasets under the line policy, for
ε ∈ {0.01, 0.1}.

Reduced configuration: 500 random range queries (the paper uses 10 000),
datasets {B, D, F} (dense / medium / very sparse), 2 trials.
"""

from __future__ import annotations

import pytest

from repro.experiments import mean_error_of, render_results, run_range1d_experiment

from bench_utils import save_and_print

DATASETS = ("B", "D", "F")
NUM_QUERIES = 500
TRIALS = 2


@pytest.mark.parametrize("epsilon", [0.01, 0.1])
def test_figure8_1d_range_panel(benchmark, epsilon):
    results = benchmark.pedantic(
        run_range1d_experiment,
        kwargs={
            "epsilon": epsilon,
            "datasets": DATASETS,
            "num_queries": NUM_QUERIES,
            "trials": TRIALS,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title=f"1D-Range under G^1_k, eps={epsilon}")
    save_and_print(f"figure8_1d_range_eps{epsilon}", text)

    # Paper finding: the Blowfish mechanisms are 2-3 orders of magnitude better
    # than their differentially private counterparts on every dataset.
    for dataset in DATASETS:
        privelet = mean_error_of(results, "Privelet", dataset)
        blowfish = mean_error_of(results, "Transformed+Laplace", dataset)
        assert blowfish < privelet / 50
