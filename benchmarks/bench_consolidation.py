"""Benchmark draw-aware GLS consolidation against the legacy WLS baseline.

Runs as a plain script (``python benchmarks/bench_consolidation.py``) and
writes ``BENCH_consolidation.json`` at the repository root.  Three
experiments:

1. **WLS vs GLS across batch-correlation levels.**  Each level buys ``b``
   workloads in ONE flush (one mechanism invocation — all ``b``
   measurements share a noise draw) plus one independent anchor
   measurement, then consolidates with ``method="wls"`` (the legacy
   independence-assuming solve) and ``method="gls"`` (the draw-aware
   covariance solve).  The headline gate: at every correlation level ≥ 2,
   the seeded mean MSE of GLS is **no worse** than WLS — correlated
   evidence must not be double-counted.

2. **Top-up accuracy per extra ε.**  An identity measurement at ε = 0.4 is
   topped up by increasing increments; the report records the MSE before
   and after, and the gate asserts the session ledger moved by **exactly
   the increment** (deterministic — the spend-a-little-more contract).

3. **Consolidation solve wall-clock vs cache size** — the cost of the
   covariance assembly + whitened solve as the cache grows.  Reported, and
   gated only softly (``BENCH_CONSOLIDATION_TIMING_GATE=0`` demotes the
   wall-clock bound to a warning on shared runners); the statistical gates
   are deterministic and always enforced.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core import (  # noqa: E402
    Database,
    Domain,
    identity_workload,
    random_range_queries_workload,
)
from repro.engine import PrivateQueryEngine  # noqa: E402
from repro.policy import line_policy  # noqa: E402

DOMAIN_SIZE = 128
BATCH_LEVELS = (1, 2, 4, 8)
BATCH_EPSILON = 0.3
ANCHOR_EPSILON = 1.0
TRIALS = 12
TOP_UP_BASE_EPSILON = 0.4
TOP_UP_INCREMENTS = (0.1, 0.2, 0.4, 0.8)
CACHE_SIZES = (8, 16, 32, 64)
SOLVE_SECONDS_BOUND = 5.0


def build_fixture():
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(23)
    counts = rng.integers(0, 60, size=DOMAIN_SIZE).astype(float)
    database = Database(domain, counts, name="bench-consolidation")
    return domain, database, line_policy(domain)


def make_engine(database, policy, seed):
    # The Laplace route carries exact linear noise models; DAWA would
    # honestly fall back to the proxy and make both methods coincide.
    return PrivateQueryEngine(
        database,
        total_epsilon=10_000.0,
        default_policy=policy,
        prefer_data_dependent=False,
        consistency=False,
        random_state=seed,
    )


def batch_workloads(domain, level, seed):
    rng = np.random.default_rng(1000 + seed)
    return [
        random_range_queries_workload(domain, 8, random_state=rng)
        for _ in range(level)
    ]


def consolidation_error(domain, database, policy, level, seed, method):
    engine = make_engine(database, policy, seed)
    engine.open_session("bench", 5_000.0)
    for workload in batch_workloads(domain, level, seed):
        engine.submit("bench", workload, BATCH_EPSILON)
    engine.flush()  # one invocation: the whole level shares a draw
    engine.ask("bench", identity_workload(domain), ANCHOR_EPSILON)
    engine.consolidate(method=method)
    counts = database.counts
    error = 0.0
    entries = list(engine.answer_cache._entries.values())
    for entry in entries:
        truth = entry.workload.matrix @ counts
        error += float(np.mean((entry.answers - truth) ** 2))
    return error / len(entries)


def sweep_correlation_levels(domain, database, policy):
    levels = []
    for level in BATCH_LEVELS:
        gls = np.mean(
            [
                consolidation_error(domain, database, policy, level, seed, "gls")
                for seed in range(TRIALS)
            ]
        )
        wls = np.mean(
            [
                consolidation_error(domain, database, policy, level, seed, "wls")
                for seed in range(TRIALS)
            ]
        )
        levels.append(
            {
                "batch_mates": level,
                "wls_mean_mse": float(wls),
                "gls_mean_mse": float(gls),
                "gls_improvement": float((wls - gls) / wls) if wls else 0.0,
            }
        )
        print(
            f"correlation level {level}: WLS MSE {wls:.4f} vs GLS MSE {gls:.4f} "
            f"({(wls - gls) / wls:+.1%})"
        )
    return levels


def sweep_top_ups(domain, database, policy):
    rows = []
    workload = identity_workload(domain)
    counts = database.counts
    for extra in TOP_UP_INCREMENTS:
        before_errors, after_errors, increments = [], [], []
        for seed in range(TRIALS):
            engine = make_engine(database, policy, 500 + seed)
            session = engine.open_session("bench", 5_000.0)
            first = engine.ask("bench", workload, TOP_UP_BASE_EPSILON)
            before_errors.append(float(np.mean((first - counts) ** 2)))
            spent_before = session.spent()
            upgraded = engine.top_up("bench", workload, extra_epsilon=extra)
            increments.append(float(session.spent() - spent_before))
            after_errors.append(float(np.mean((upgraded - counts) ** 2)))
        rows.append(
            {
                "extra_epsilon": extra,
                "mse_before": float(np.mean(before_errors)),
                "mse_after": float(np.mean(after_errors)),
                "charged_increment_max_abs_error": float(
                    np.max(np.abs(np.asarray(increments) - extra))
                ),
            }
        )
        print(
            f"top-up +eps {extra}: MSE {np.mean(before_errors):.4f} -> "
            f"{np.mean(after_errors):.4f}; increment exact to "
            f"{rows[-1]['charged_increment_max_abs_error']:.2e}"
        )
    return rows


def sweep_solve_wall_clock(domain, database, policy):
    rows = []
    for size in CACHE_SIZES:
        engine = make_engine(database, policy, 9)
        engine.open_session("bench", 5_000.0)
        rng = np.random.default_rng(9)
        # Buy `size` distinct workloads in flushes of 4 so draws are shared
        # within each flush (a realistic mix of correlated groups).
        bought = 0
        while bought < size:
            for _ in range(min(4, size - bought)):
                workload = random_range_queries_workload(
                    domain, 4, random_state=rng
                )
                engine.submit("bench", workload, BATCH_EPSILON)
                bought += 1
            engine.flush()
        started = time.perf_counter()
        updated = engine.consolidate()
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "cached_entries": size,
                "entries_updated": updated,
                "solve_seconds": float(elapsed),
            }
        )
        print(f"cache size {size}: GLS consolidation solved in {elapsed * 1e3:.1f}ms")
    return rows


def main() -> int:
    domain, database, policy = build_fixture()
    levels = sweep_correlation_levels(domain, database, policy)
    top_ups = sweep_top_ups(domain, database, policy)
    wall_clock = sweep_solve_wall_clock(domain, database, policy)

    report = {
        "domain_size": DOMAIN_SIZE,
        "trials": TRIALS,
        "batch_epsilon": BATCH_EPSILON,
        "anchor_epsilon": ANCHOR_EPSILON,
        "correlation_levels": levels,
        "top_ups": top_ups,
        "solve_wall_clock": wall_clock,
    }
    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_consolidation.json",
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    timing_gate = os.environ.get("BENCH_CONSOLIDATION_TIMING_GATE", "1") != "0"
    ok = True
    # Deterministic gate 1: with real correlation (>= 2 batch-mates), the
    # draw-aware solve must not lose to the independence assumption.
    for row in levels:
        if row["batch_mates"] >= 2 and row["gls_mean_mse"] > row["wls_mean_mse"]:
            print(
                f"FAIL: GLS MSE {row['gls_mean_mse']:.4f} exceeds WLS "
                f"{row['wls_mean_mse']:.4f} at correlation level "
                f"{row['batch_mates']}"
            )
            ok = False
    # Deterministic gate 2: top-ups charge exactly the declared increment.
    for row in top_ups:
        if row["charged_increment_max_abs_error"] > 1e-9:
            print(
                f"FAIL: top-up at +eps {row['extra_epsilon']} charged "
                f"{row['charged_increment_max_abs_error']:.2e} away from the "
                "declared increment"
            )
            ok = False
    # Soft gate: the solve must stay interactive at the largest cache size.
    slowest = max(row["solve_seconds"] for row in wall_clock)
    if slowest > SOLVE_SECONDS_BOUND:
        print(
            f"{'FAIL' if timing_gate else 'WARN'}: GLS consolidation took "
            f"{slowest:.2f}s at the largest cache size (bound "
            f"{SOLVE_SECONDS_BOUND:.1f}s)"
        )
        ok = ok and not timing_gate
    if ok:
        best = max(
            (row for row in levels if row["batch_mates"] >= 2),
            key=lambda row: row["gls_improvement"],
        )
        print(
            f"OK: GLS beats WLS by {best['gls_improvement']:.1%} at "
            f"{best['batch_mates']} correlated batch-mates; top-ups charge "
            f"exactly their increment; slowest solve {slowest * 1e3:.0f}ms"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
