"""Benchmark the multi-core execute stage and warm-start plan persistence.

Runs as a plain script (``python benchmarks/bench_multicore.py``) and writes
``BENCH_multicore.json`` at the repository root.  Three experiments:

1. **Backend × workers × shards sweep.**  A fixed stream of ε-grouped
   workloads is flushed through the execute stage with every backend
   (``inline`` / ``thread`` / ``process``), worker count (1, 2, 4) and shard
   layout (connected 1-shard policy vs a 4-component sharded policy).  The
   headline, ``speedup_process_vs_thread_4_workers``, compares execute-stage
   throughput on the sharded fixture; the acceptance bar for this repository
   is ≥ 1.5× **on hosts with ≥ 4 cores** — on fewer cores the process
   backend buys nothing (there is only one core to run on) and the report
   honestly records parity plus its serialisation overhead instead of
   pretending a win.

2. **Backend equivalence (deterministic, always enforced).**  The same
   seeded stream is served by the thread, the process *and the adaptive*
   backend: the ε ledgers must match **byte for byte** (charges never
   depend on the backend) and the noisy answers must be bit-identical
   (every backend spawns the same per-unit RNG children; the adaptive
   router only picks where an already-seeded unit runs).

3. **Warm start (deterministic, always enforced).**  A cold engine plans,
   serves, and persists its plan store; a **fresh OS process** loads the
   store and serves the same workload — with ``plan_cache_hit_rate == 1.0``
   (zero cold plans) and identical answers for the identical seed.

The wall-clock gate can be demoted to a warning with
``BENCH_MULTICORE_TIMING_GATE=0``; the equivalence and warm-start gates are
deterministic and always enforced.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import Database, Domain, random_range_queries_workload  # noqa: E402
from repro.engine import PrivateQueryEngine  # noqa: E402
from repro.policy import PolicyGraph, line_policy  # noqa: E402

DOMAIN_SIZE = 4096
GROUPS = 4  # distinct epsilons → one batch each per flush
QUERIES_PER_SEGMENT = 8
ROUNDS = 6
#: Rounds dropped from the steady-state statistic: early rounds absorb
#: worker-process boot (spawned workers import numpy/scipy once).
WARM_ROUNDS = ROUNDS // 2
WORKER_SWEEP = (2, 4)
EPSILONS = tuple(0.4 / (1 << index) for index in range(GROUPS))


def build_fixture(num_shards: int):
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(7)
    counts = rng.integers(0, 50, size=DOMAIN_SIZE).astype(float)
    database = Database(domain, counts, name=f"bench-multicore-{num_shards}")
    if num_shards == 1:
        return domain, database, line_policy(domain)
    segment = DOMAIN_SIZE // num_shards
    edges = []
    for shard in range(num_shards):
        start = shard * segment
        edges.extend(
            (i, i + 1) for i in range(start, start + segment - 1)
        )
    policy = PolicyGraph(domain, edges, name=f"{num_shards}-segments")
    return domain, database, policy


def segment_workload(domain, num_shards: int, seed: int):
    """Per-segment range queries: every segment contributes rows.

    Rows stay confined to one segment each, so a sharded policy scatters the
    workload into one piece **per shard** — a 4-shard batch becomes four
    independent work units, the parallelism the process backend feeds on.
    """
    segment = DOMAIN_SIZE // num_shards
    rng = np.random.default_rng(seed)
    matrix = np.zeros((QUERIES_PER_SEGMENT * num_shards, domain.size))
    row = 0
    for shard in range(num_shards):
        base = shard * segment
        for _ in range(QUERIES_PER_SEGMENT):
            lo = int(rng.integers(0, segment - 1))
            hi = int(rng.integers(lo + 1, segment))
            matrix[row, base + lo : base + hi + 1] = 1.0
            row += 1
    from repro.core.workload import Workload

    return Workload(domain, matrix, name=f"seg{num_shards}x{seed}")


def make_engine(database, policy, workers: int, backend: str):
    return PrivateQueryEngine(
        database,
        total_epsilon=1000.0,
        default_policy=policy,
        prefer_data_dependent=True,
        consistency=True,
        enable_answer_cache=False,
        random_state=0,
        execute_workers=workers if workers > 1 else None,
        execute_backend=backend,
    )


def run_sweep_cell(num_shards: int, workers: int, backend: str):
    domain, database, policy = build_fixture(num_shards)
    queries_per_round = GROUPS * QUERIES_PER_SEGMENT * num_shards
    with make_engine(database, policy, workers, backend) as engine:
        engine.open_session("bench", 500.0)
        # Warm every plan up front so the measurement is execute, not planning.
        for epsilon in EPSILONS:
            engine.ask("bench", segment_workload(domain, num_shards, 999), epsilon)
        round_walls = []
        for round_index in range(ROUNDS):
            for group, epsilon in enumerate(EPSILONS):
                engine.submit(
                    "bench",
                    segment_workload(
                        domain, num_shards, 100 * round_index + group
                    ),
                    epsilon,
                )
            started = time.perf_counter()
            engine.flush()
            round_walls.append(time.perf_counter() - started)
        stats = engine.stats
    # Steady state: the first rounds absorb one-off costs (spawned worker
    # processes import numpy/scipy, worker-side plan memos fill); the later
    # rounds measure the regime a long-running server lives in.
    steady = sorted(round_walls[WARM_ROUNDS:])[len(round_walls[WARM_ROUNDS:]) // 2]
    return {
        "shards": num_shards,
        "workers": workers,
        "backend": stats.execute_backend,
        "round_wall_seconds": round_walls,
        "steady_round_seconds": steady,
        "qps": queries_per_round / steady,
        "worker_dispatches": stats.worker_dispatches,
        "serialization_seconds": stats.serialization_seconds,
        "mechanism_invocations": stats.mechanism_invocations,
    }


def run_sweep():
    cells = []
    for num_shards in (1, 4):
        cells.append(run_sweep_cell(num_shards, 1, "thread"))  # inline baseline
        for backend in ("thread", "process", "adaptive"):
            for workers in WORKER_SWEEP:
                cells.append(run_sweep_cell(num_shards, workers, backend))
    return cells


def run_equivalence():
    """Same seeded stream on every backend: identical ledgers and answers.

    The adaptive router only decides *where* a unit runs, after its RNG
    child is fixed, so it is held to exactly the thread/process parity bar.
    """
    def serve(backend: str):
        domain, database, policy = build_fixture(4)
        with make_engine(database, policy, 2, backend) as engine:
            session = engine.open_session("bench", 500.0)
            tickets = []
            for group, epsilon in enumerate(EPSILONS):
                tickets.append(
                    engine.submit(
                        "bench", segment_workload(domain, 4, group), epsilon
                    )
                )
            engine.flush()
            ledger = [
                (op.label, op.epsilon, op.partition)
                for op in session.accountant.operations
            ]
            answers = [ticket.answers for ticket in tickets]
            statuses = [ticket.status for ticket in tickets]
        return ledger, answers, statuses

    backends = ("thread", "process", "adaptive")
    runs = {backend: serve(backend) for backend in backends}
    thread_ledger, thread_answers, _ = runs["thread"]
    ledgers_identical = all(
        runs[backend][0] == thread_ledger for backend in backends[1:]
    )
    answers_identical = all(
        a is not None and b is not None and np.array_equal(a, b)
        for backend in backends[1:]
        for a, b in zip(thread_answers, runs[backend][1])
    )
    return {
        "backends": list(backends),
        "statuses": [runs[backend][2] for backend in backends],
        "ledgers_identical": bool(ledgers_identical),
        "ledger_operations": len(thread_ledger),
        "answers_identical": bool(answers_identical),
    }


WARM_CHILD_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.core import Database, Domain
from repro.core.workload import Workload
from repro.engine import PrivateQueryEngine
from repro.policy import line_policy

domain = Domain(({size},))
rng = np.random.default_rng(7)
counts = rng.integers(0, 50, size={size}).astype(float)
database = Database(domain, counts, name="warm-start")
engine = PrivateQueryEngine(
    database, total_epsilon=1000.0, default_policy=line_policy(domain),
    prefer_data_dependent=True, consistency=True,
    enable_answer_cache=False, random_state=11,
)
loaded = engine.load_plans({store!r})
engine.open_session("bench", 500.0)
matrix = np.load({workload!r})
import time
started = time.perf_counter()
answers = [engine.ask("bench", Workload(domain, matrix), eps) for eps in {epsilons!r}]
elapsed = time.perf_counter() - started
stats = engine.stats
print(json.dumps({{
    "loaded": loaded,
    "plan_hits": stats.plan_hits,
    "plan_misses": stats.plan_misses,
    "plan_cache_hit_rate": stats.plan_cache_hit_rate,
    "serve_seconds": elapsed,
    "answers": [a.tolist() for a in answers],
}}))
"""


def run_warm_start(tmp_dir: str):
    """Cold engine saves its plan store; a fresh OS process serves warm."""
    domain, database, _ = build_fixture(1)
    num_queries = GROUPS * QUERIES_PER_SEGMENT
    matrix = np.zeros((num_queries, domain.size))
    rng = np.random.default_rng(3)
    for row in range(num_queries):
        lo = int(rng.integers(0, domain.size - 1))
        hi = int(rng.integers(lo + 1, domain.size))
        matrix[row, lo : hi + 1] = 1.0
    workload_path = os.path.join(tmp_dir, "warm_workload.npy")
    np.save(workload_path, matrix)

    from repro.core.workload import Workload

    engine = PrivateQueryEngine(
        database,
        total_epsilon=1000.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=True,
        consistency=True,
        enable_answer_cache=False,
        random_state=11,
    )
    engine.open_session("bench", 500.0)
    started = time.perf_counter()
    cold_answers = [
        engine.ask("bench", Workload(domain, matrix), eps) for eps in EPSILONS
    ]
    cold_seconds = time.perf_counter() - started
    store_path = os.path.join(tmp_dir, "plan_store.pkl")
    saved = engine.save_plans(store_path)

    child = WARM_CHILD_SCRIPT.format(
        src=os.path.join(REPO_ROOT, "src"),
        size=DOMAIN_SIZE,
        store=store_path,
        workload=workload_path,
        epsilons=list(EPSILONS),
    )
    result = subprocess.run(
        [sys.executable, "-c", child],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
    )
    warm = json.loads(result.stdout)
    warm_answers = [np.asarray(a) for a in warm.pop("answers")]
    answers_identical = all(
        np.array_equal(cold, fresh)
        for cold, fresh in zip(cold_answers, warm_answers)
    )
    return {
        "plans_saved": saved,
        "cold_serve_seconds": cold_seconds,
        "warm_serve_seconds": warm["serve_seconds"],
        "plans_loaded": warm["loaded"],
        "warm_plan_hits": warm["plan_hits"],
        "warm_plan_misses": warm["plan_misses"],
        "plan_cache_hit_rate": warm["plan_cache_hit_rate"],
        "answers_identical_same_seed": bool(answers_identical),
    }


def main() -> int:
    import tempfile

    cores = os.cpu_count() or 1
    sweep = run_sweep()
    equivalence = run_equivalence()
    with tempfile.TemporaryDirectory() as tmp_dir:
        warm_start = run_warm_start(tmp_dir)

    def cell(shards, workers, backend):
        return next(
            row
            for row in sweep
            if row["shards"] == shards
            and row["workers"] == workers
            and row["backend"] == backend
        )

    thread_at_4 = cell(4, 4, "thread")
    process_at_4 = cell(4, 4, "process")
    speedup = process_at_4["qps"] / thread_at_4["qps"]

    report = {
        "cpu_cores": cores,
        "domain_size": DOMAIN_SIZE,
        "groups": GROUPS,
        "queries_per_segment": QUERIES_PER_SEGMENT,
        "rounds": ROUNDS,
        "steady_rounds_measured": ROUNDS - WARM_ROUNDS,
        "sweep": sweep,
        "speedup_process_vs_thread_4_workers": speedup,
        "equivalence": equivalence,
        "warm_start": warm_start,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_multicore.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    timing_gate = os.environ.get("BENCH_MULTICORE_TIMING_GATE", "1") != "0"
    ok = True
    if cores >= 4:
        if speedup < 1.5:
            print(
                f"{'FAIL' if timing_gate else 'WARN'}: process backend execute "
                f"throughput is {speedup:.2f}x the thread backend at 4 workers "
                f"on {cores} cores — below the 1.5x bar"
            )
            ok = ok and not timing_gate
    else:
        print(
            f"INFO: {cores} core(s) available — the multi-core gate needs >= 4; "
            f"honest parity report: process/thread = {speedup:.2f}x with "
            f"{process_at_4['serialization_seconds']:.3f}s serialisation overhead"
        )
    if not equivalence["ledgers_identical"]:
        print(
            "FAIL: thread/process/adaptive backends produced different "
            "epsilon ledgers"
        )
        ok = False
    if not equivalence["answers_identical"]:
        print(
            "FAIL: thread/process/adaptive backends drew different noise "
            "for one seed"
        )
        ok = False
    if warm_start["plan_cache_hit_rate"] != 1.0 or warm_start["warm_plan_misses"] != 0:
        print(
            "FAIL: warm-started process still planned cold "
            f"(hit rate {warm_start['plan_cache_hit_rate']}, "
            f"misses {warm_start['warm_plan_misses']})"
        )
        ok = False
    if not warm_start["answers_identical_same_seed"]:
        print("FAIL: warm-started process answered differently for the same seed")
        ok = False
    if ok:
        print(
            f"OK: process/thread execute throughput {speedup:.2f}x at 4 workers "
            f"({cores} cores), byte-identical ledgers and draws across backends, "
            f"warm start with {warm_start['plans_loaded']} loaded plans and "
            "plan_cache_hit_rate=1.0"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
