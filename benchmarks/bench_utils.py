"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on a reduced
(but representative) configuration, prints the resulting series as a text
table and also writes it to ``results/`` so that EXPERIMENTS.md can reference
stable artefacts.  The pytest-benchmark timing wraps the full experiment so
the cost of each reproduction is also recorded.

Reduced defaults keep the whole suite to a few minutes; the experiment runners
in :mod:`repro.experiments` accept the paper's full parameters (10 000
queries, 5 trials, all datasets) when an exhaustive run is desired.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIRECTORY = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")


def save_and_print(name: str, text: str) -> None:
    """Print a result table and persist it under ``results/<name>.txt``."""
    os.makedirs(RESULTS_DIRECTORY, exist_ok=True)
    path = os.path.join(RESULTS_DIRECTORY, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def join_sections(sections: Sequence[str]) -> str:
    """Join several rendered tables with blank lines."""
    return "\n\n".join(sections)
