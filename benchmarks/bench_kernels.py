"""Benchmark the kernel-speed pass: factorisation store + fused dispatches.

Runs as a plain script (``python benchmarks/bench_kernels.py``) and writes
``BENCH_kernels.json`` at the repository root.  Three experiments on a
16 384-cell domain (the ISSUE floor for this pass):

1. **Cross-plan factorisation reuse (timing gate).**  The 128×128 grid
   policy's Gram factorisation (SuperLU over ``P_G P_Gᵀ``) is resolved by a
   *fresh* :class:`~repro.policy.transform.PolicyTransform` twice: once
   against an empty store (cold — every plan used to pay this) and once
   against a store already holding the digest (warm — what every plan after
   the first pays now).  The acceptance bar is warm ≥ 5× faster than cold;
   measured margins are ~10×, so the gate is enforced by default
   (``BENCH_KERNELS_TIMING_GATE=0`` demotes it to a warning).

2. **Fused vs per-unit dispatch (self-arming timing gate).**  A 16-shard
   batch is flushed through the thread backend with ``execute_fusion`` on
   and off.  Fused execution must not lose (bar: ≥ 1.0× steady-state
   throughput, i.e. fusion pays for itself) **on hosts with ≥ 4 cores**; on
   fewer cores the report honestly records the measured ratio instead of
   pretending a parallel win on hardware that cannot show one.

3. **Determinism (always enforced).**  The same seeded stream must produce
   byte-identical answers and ε ledgers with the store on vs off, and with
   fusion on vs off across the thread, process and adaptive backends (the
   adaptive run routes part of the flush inline, holding the inline path to
   the same bar).  The store and fusion are *performance* artifacts; they
   must never touch draws or charges.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import Database, Domain  # noqa: E402
from repro.core.workload import Workload  # noqa: E402
from repro.engine import PrivateQueryEngine  # noqa: E402
from repro.engine.factorisation import (  # noqa: E402
    FactorisationStore,
    get_store,
    set_store,
    set_store_enabled,
)
from repro.policy import PolicyGraph, grid_policy  # noqa: E402
from repro.policy.transform import PolicyTransform  # noqa: E402

GRID_SIDE = 128  # 128×128 = 16 384 cells
DOMAIN_SIZE = GRID_SIDE * GRID_SIDE
NUM_SHARDS = 16
QUERIES_PER_SHARD = 4
REUSE_REPS = 5
FUSION_ROUNDS = 6
WARM_ROUNDS = FUSION_ROUNDS // 2


# ---------------------------------------------------------------------------
# Experiment 1: cross-plan factorisation reuse.
# ---------------------------------------------------------------------------
def run_factorisation_reuse():
    domain = Domain((GRID_SIDE, GRID_SIDE))
    policy = grid_policy(domain)
    database = Database(
        domain,
        np.random.default_rng(7).integers(0, 50, DOMAIN_SIZE).astype(float),
        name="bench-kernels-grid",
    )

    store = FactorisationStore()
    previous = set_store(store)
    try:
        cold_walls = []
        for _ in range(REUSE_REPS):
            store.clear()
            transform = PolicyTransform(policy)
            started = time.perf_counter()
            transform.transform_database(database)
            cold_walls.append(time.perf_counter() - started)

        # One live anchor keeps the weakly-held entry resident, exactly like
        # a cached plan holding its handle between flushes.
        anchor = PolicyTransform(policy)
        anchor.transform_database(database)
        warm_walls = []
        for _ in range(REUSE_REPS):
            transform = PolicyTransform(policy)
            started = time.perf_counter()
            transform.transform_database(database)
            warm_walls.append(time.perf_counter() - started)
        stats = store.stats()
    finally:
        set_store(previous)

    cold = statistics.median(cold_walls)
    warm = statistics.median(warm_walls)
    return {
        "cells": DOMAIN_SIZE,
        "cold_resolve_seconds": cold_walls,
        "warm_resolve_seconds": warm_walls,
        "cold_median_seconds": cold,
        "warm_median_seconds": warm,
        "speedup_warm_vs_cold": cold / warm,
        "store_hits": stats.hits,
        "store_misses": stats.misses,
        "store_build_seconds": stats.build_seconds,
    }


# ---------------------------------------------------------------------------
# Experiment 2 + 3 fixture: a 16-shard batch over 16 384 cells.
# ---------------------------------------------------------------------------
def build_sharded_fixture():
    domain = Domain((DOMAIN_SIZE,))
    segment = DOMAIN_SIZE // NUM_SHARDS
    edges = []
    for shard in range(NUM_SHARDS):
        start = shard * segment
        edges.extend((i, i + 1) for i in range(start, start + segment - 1))
    policy = PolicyGraph(domain, edges, name=f"{NUM_SHARDS}-segments")
    database = Database(
        domain,
        np.random.default_rng(7).integers(0, 50, DOMAIN_SIZE).astype(float),
        name="bench-kernels-shards",
    )
    return domain, database, policy


def shard_workload(domain, seed: int) -> Workload:
    """Range queries confined per segment: scatters into one unit per shard."""
    segment = DOMAIN_SIZE // NUM_SHARDS
    rng = np.random.default_rng(seed)
    matrix = np.zeros((QUERIES_PER_SHARD * NUM_SHARDS, domain.size))
    row = 0
    for shard in range(NUM_SHARDS):
        base = shard * segment
        for _ in range(QUERIES_PER_SHARD):
            lo = int(rng.integers(0, segment - 1))
            hi = int(rng.integers(lo + 1, segment))
            matrix[row, base + lo : base + hi + 1] = 1.0
            row += 1
    return Workload(domain, matrix, name=f"shards{NUM_SHARDS}x{seed}")


def make_engine(database, policy, backend: str, workers, fusion: bool):
    return PrivateQueryEngine(
        database,
        total_epsilon=1000.0,
        default_policy=policy,
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
        execute_workers=workers,
        execute_backend=backend,
        execute_fusion=fusion,
    )


def run_fusion_sweep_cell(backend: str, fusion: bool):
    domain, database, policy = build_sharded_fixture()
    with make_engine(database, policy, backend, 2, fusion) as engine:
        engine.open_session("bench", 500.0)
        # Warm the shard plans so rounds measure execute, not planning.
        engine.ask("bench", shard_workload(domain, 999), 0.4)
        round_walls = []
        for round_index in range(FUSION_ROUNDS):
            engine.submit("bench", shard_workload(domain, round_index), 0.4)
            started = time.perf_counter()
            engine.flush()
            round_walls.append(time.perf_counter() - started)
        stats = engine.stats
    tail = round_walls[WARM_ROUNDS:]
    steady = sorted(tail)[len(tail) // 2]
    return {
        "backend": backend,
        "fusion": fusion,
        "round_wall_seconds": round_walls,
        "steady_round_seconds": steady,
        "worker_dispatches": stats.worker_dispatches,
        "fused_units": stats.fused_units,
        "serialization_seconds": stats.serialization_seconds,
    }


# ---------------------------------------------------------------------------
# Experiment 3: determinism — store on/off, fusion on/off, every backend.
# ---------------------------------------------------------------------------
def serve_stream(backend: str, workers, fusion: bool):
    domain, database, policy = build_sharded_fixture()
    with make_engine(database, policy, backend, workers, fusion) as engine:
        session = engine.open_session("bench", 500.0)
        tickets = [
            engine.submit("bench", shard_workload(domain, 0), 0.4),
            engine.submit("bench", shard_workload(domain, 1), 0.2),
        ]
        engine.flush()
        answers = [np.asarray(ticket.answers) for ticket in tickets]
        ledger = [
            (op.label, op.epsilon, op.partition)
            for op in session.accountant.operations
        ]
    return answers, ledger


def run_determinism():
    reference_answers, reference_ledger = serve_stream("thread", 2, False)

    def matches(answers, ledger):
        return (
            all(np.array_equal(a, b) for a, b in zip(reference_answers, answers))
            and ledger == reference_ledger
        )

    results = {}
    for name, backend, fusion in (
        ("thread-fused", "thread", True),
        ("process-fused", "process", True),
        ("process-unfused", "process", False),
        ("adaptive-fused", "adaptive", True),
    ):
        answers, ledger = serve_stream(backend, 2, fusion)
        results[name] = matches(answers, ledger)

    get_store().clear()
    previous = set_store_enabled(False)
    try:
        answers, ledger = serve_stream("thread", 2, True)
    finally:
        set_store_enabled(previous)
    results["store-disabled"] = matches(answers, ledger)

    # The no-pool engine is its own reference (it derives RNG per batch, not
    # per flush-unit): the store must not change its draws either.
    inline_on, inline_ledger_on = serve_stream("thread", None, True)
    get_store().clear()
    previous = set_store_enabled(False)
    try:
        inline_off, inline_ledger_off = serve_stream("thread", None, True)
    finally:
        set_store_enabled(previous)
    results["inline-store-invariant"] = (
        all(np.array_equal(a, b) for a, b in zip(inline_on, inline_off))
        and inline_ledger_on == inline_ledger_off
    )
    return results


def main() -> int:
    cores = os.cpu_count() or 1
    reuse = run_factorisation_reuse()
    fusion_cells = [
        run_fusion_sweep_cell("thread", True),
        run_fusion_sweep_cell("thread", False),
        run_fusion_sweep_cell("process", True),
        run_fusion_sweep_cell("process", False),
    ]
    determinism = run_determinism()

    def cell(backend, fusion):
        return next(
            row
            for row in fusion_cells
            if row["backend"] == backend and row["fusion"] is fusion
        )

    fused_speedup = (
        cell("thread", False)["steady_round_seconds"]
        / cell("thread", True)["steady_round_seconds"]
    )
    report = {
        "cpu_cores": cores,
        "cells": DOMAIN_SIZE,
        "shards": NUM_SHARDS,
        "factorisation_reuse": reuse,
        "fusion_sweep": fusion_cells,
        "speedup_fused_vs_unfused_thread": fused_speedup,
        "determinism": determinism,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_kernels.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    timing_gate = os.environ.get("BENCH_KERNELS_TIMING_GATE", "1") != "0"
    ok = True
    reuse_speedup = reuse["speedup_warm_vs_cold"]
    if reuse_speedup < 5.0:
        print(
            f"{'FAIL' if timing_gate else 'WARN'}: warm factorisation resolve "
            f"is only {reuse_speedup:.2f}x the cold resolve at "
            f"{DOMAIN_SIZE} cells — below the 5x bar"
        )
        ok = ok and not timing_gate
    if cores >= 4:
        if fused_speedup < 1.0:
            print(
                f"{'FAIL' if timing_gate else 'WARN'}: fused dispatch is "
                f"{fused_speedup:.2f}x per-unit dispatch on the "
                f"{NUM_SHARDS}-shard batch — fusion must not lose"
            )
            ok = ok and not timing_gate
    else:
        print(
            f"INFO: {cores} core(s) available — the fused-dispatch gate needs "
            f">= 4; honest report: fused/unfused = {fused_speedup:.2f}x "
            f"({cell('thread', True)['worker_dispatches']} vs "
            f"{cell('thread', False)['worker_dispatches']} dispatches per serve)"
        )
    for name, identical in determinism.items():
        if not identical:
            print(f"FAIL: {name} run diverged from the reference draws/ledgers")
            ok = False
    if ok:
        print(
            f"OK: factorisation reuse {reuse_speedup:.1f}x warm-vs-cold at "
            f"{DOMAIN_SIZE} cells, fused/unfused {fused_speedup:.2f}x on "
            f"{NUM_SHARDS} shards ({cores} cores), draws and ledgers "
            "byte-identical across store and fusion settings on every backend"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
