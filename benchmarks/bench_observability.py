"""Benchmark the flight-recorder observability layer.

Runs as a plain script (``python benchmarks/bench_observability.py``) and
writes ``BENCH_observability.json`` at the repository root.  Three
experiments:

1. **Disabled-mode overhead.**  The observability hooks are one branch per
   flush when disabled — that claim is priced against a *stripped* engine
   whose pipeline has the hooks compiled out entirely (a subclass with no-op
   ``_obs_flush_begin``/``_obs_flush_end``).  Stripped / disabled / enabled
   engines serve identical interleaved rounds (interleaving amortises
   machine drift across all three arms) and the headline gate is
   ``median(disabled) <= 1.05 x median(stripped)``.  Timing gates are
   demotable to warnings on noisy shared runners via
   ``BENCH_OBSERVABILITY_TIMING_GATE=0``; the deterministic gates below are
   always enforced.

2. **Trace completeness across the process boundary (deterministic).**  A
   seeded process-backend flush must produce ONE trace tree holding all
   four stage spans, one span per execute unit, and per-unit worker spans
   whose recorded pid differs from the parent's — the PR 5 kernel-seconds
   side channel widened to whole spans.

3. **Noise-stream neutrality + audit completeness (deterministic).**
   Identically-seeded enabled and disabled engines must produce
   bit-identical answers (instrumentation never touches the RNG stream),
   and every charge in the audit stream must name a completed trace.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import Database, Domain  # noqa: E402
from repro.core.workload import Workload  # noqa: E402
from repro.engine import (  # noqa: E402
    AuditLog,
    FlushPipeline,
    Observability,
    PrivateQueryEngine,
)
from repro.policy import line_policy  # noqa: E402

DOMAIN_SIZE = 1024
QUERIES = 8
ROUNDS = 60
WARMUP_ROUNDS = 5
OVERHEAD_BAR = 1.05


class StrippedPipeline(FlushPipeline):
    """The flush pipeline with the observability hooks compiled out.

    The honest baseline for the "disabled mode is one branch per flush"
    claim: not an engine that skips the work, but one where even the branch
    is gone.
    """

    def _obs_flush_begin(self, tickets):  # noqa: D401 - no-op override
        return None

    def _obs_flush_end(self, context):  # noqa: D401 - no-op override
        return None


def build_database(name: str) -> Database:
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(7)
    counts = rng.integers(0, 50, size=DOMAIN_SIZE).astype(float)
    return Database(domain, counts, name=name)


def build_engine(mode: str) -> PrivateQueryEngine:
    database = build_database(f"bench-obs-{mode}")
    domain = database.domain
    if mode == "enabled":
        observability = Observability(enabled=True, audit=AuditLog())
    else:
        observability = None  # engine default: disabled hub
    engine = PrivateQueryEngine(
        database,
        total_epsilon=10_000.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
        observability=observability,
    )
    if mode == "stripped":
        engine._pipeline = StrippedPipeline(engine)
    engine.open_session("bench", 5_000.0)
    return engine


def round_workload(domain: Domain, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    matrix = np.zeros((QUERIES, domain.size))
    for row in range(QUERIES):
        lo = int(rng.integers(0, domain.size - 2))
        hi = int(rng.integers(lo + 1, domain.size))
        matrix[row, lo : hi + 1] = 1.0
    return Workload(domain, matrix, name=f"obs-{seed}")


def run_overhead():
    """Interleaved flush-latency sampling across the three arms."""
    modes = ("stripped", "disabled", "enabled")
    engines = {mode: build_engine(mode) for mode in modes}
    samples = {mode: [] for mode in modes}
    try:
        for round_index in range(WARMUP_ROUNDS + ROUNDS):
            for mode in modes:
                engine = engines[mode]
                workload = round_workload(
                    engine.database.domain, 1000 + round_index
                )
                engine.submit("bench", workload, 0.05)
                started = time.perf_counter()
                engine.flush()
                elapsed = time.perf_counter() - started
                if round_index >= WARMUP_ROUNDS:
                    samples[mode].append(elapsed)
    finally:
        for engine in engines.values():
            engine.close()
    report = {}
    for mode in modes:
        report[mode] = {
            "median_flush_seconds": statistics.median(samples[mode]),
            "mean_flush_seconds": statistics.fmean(samples[mode]),
            "rounds": len(samples[mode]),
        }
    report["disabled_vs_stripped"] = (
        report["disabled"]["median_flush_seconds"]
        / report["stripped"]["median_flush_seconds"]
    )
    report["enabled_vs_stripped"] = (
        report["enabled"]["median_flush_seconds"]
        / report["stripped"]["median_flush_seconds"]
    )
    return report


def run_trace_tree():
    """One seeded process-backend flush → one coherent two-process tree."""
    database = build_database("bench-obs-trace")
    domain = database.domain
    observability = Observability(enabled=True)
    engine = PrivateQueryEngine(
        database,
        total_epsilon=100.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
        observability=observability,
        execute_workers=2,
        execute_backend="process",
    )
    with engine:
        engine.open_session("bench", 50.0)
        engine.submit("bench", round_workload(domain, 1), 0.5)
        engine.submit("bench", round_workload(domain, 2), 0.7)
        engine.flush()
        trace = observability.tracer.last()
        stage_spans = {
            stage: len(trace.find(stage))
            for stage in ("plan", "charge", "execute", "resolve")
        }
        units = trace.find("unit")
        workers = trace.find("worker")
        unit_ids = {span.span_id for span in units}
        waterfall = trace.waterfall()
    print(waterfall)
    return {
        "trace_id": trace.trace_id,
        "stage_spans": stage_spans,
        "unit_spans": len(units),
        "worker_spans": len(workers),
        "worker_spans_parented_to_units": sum(
            1 for span in workers if span.parent_id in unit_ids
        ),
        "worker_pids_differ_from_parent": bool(
            workers
            and all(
                span.attributes.get("pid") not in (None, os.getpid())
                for span in workers
            )
        ),
        "json_exportable": bool(json.loads(trace.to_json())["spans"]),
    }


def run_neutrality_and_audit():
    """Seeded answer equality + every charge names a completed trace."""

    def serve(observability):
        database = build_database("bench-obs-neutral")
        domain = database.domain
        engine = PrivateQueryEngine(
            database,
            total_epsilon=100.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=1234,
            observability=observability,
        )
        engine.open_session("bench", 50.0)
        tickets = []
        for round_index in range(3):
            for group, epsilon in enumerate((0.4, 0.2)):
                tickets.append(
                    engine.submit(
                        "bench",
                        round_workload(domain, 10 * round_index + group),
                        epsilon,
                    )
                )
            engine.flush()
        engine.close()
        return [ticket.answers for ticket in tickets]

    baseline = serve(None)
    observability = Observability(enabled=True, audit=AuditLog())
    observed = serve(observability)
    answers_identical = all(
        a is not None and b is not None and np.array_equal(a, b)
        for a, b in zip(baseline, observed)
    )
    charges = [
        record
        for record in observability.audit.events("charge")
        if "ticket_id" in record
    ]
    traced = [
        record
        for record in charges
        if observability.tracer.find(record.get("trace_id")) is not None
    ]
    return {
        "answers_identical": bool(answers_identical),
        "charges_audited": len(charges),
        "charges_with_completed_trace": len(traced),
        "audit_events_total": observability.audit.count,
    }


def main() -> int:
    overhead = run_overhead()
    trace_tree = run_trace_tree()
    neutrality = run_neutrality_and_audit()

    report = {
        "domain_size": DOMAIN_SIZE,
        "queries_per_flush": QUERIES,
        "rounds": ROUNDS,
        "overhead_bar": OVERHEAD_BAR,
        "overhead": overhead,
        "process_trace_tree": trace_tree,
        "neutrality_and_audit": neutrality,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_observability.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    enforce_timing = os.environ.get("BENCH_OBSERVABILITY_TIMING_GATE", "1") != "0"
    ok = True

    ratio = overhead["disabled_vs_stripped"]
    if ratio > OVERHEAD_BAR:
        message = (
            f"disabled-mode flushes run {ratio:.3f}x the stripped pipeline — "
            f"above the {OVERHEAD_BAR}x bar"
        )
        if enforce_timing:
            print(f"FAIL: {message}")
            ok = False
        else:
            print(f"WARN (gate demoted): {message}")

    for stage, count in trace_tree["stage_spans"].items():
        if count != 1:
            print(f"FAIL: expected exactly one '{stage}' stage span, got {count}")
            ok = False
    if trace_tree["unit_spans"] < 1:
        print("FAIL: the process-backend flush produced no unit spans")
        ok = False
    if trace_tree["worker_spans"] != trace_tree["unit_spans"]:
        print(
            f"FAIL: {trace_tree['unit_spans']} unit span(s) but "
            f"{trace_tree['worker_spans']} worker span(s)"
        )
        ok = False
    if trace_tree["worker_spans_parented_to_units"] != trace_tree["worker_spans"]:
        print("FAIL: a worker span is not parented to its unit span")
        ok = False
    if not trace_tree["worker_pids_differ_from_parent"]:
        print("FAIL: worker spans were not measured in a worker process")
        ok = False
    if not trace_tree["json_exportable"]:
        print("FAIL: the flush trace did not export to JSON")
        ok = False

    if not neutrality["answers_identical"]:
        print("FAIL: enabling observability changed the noise stream")
        ok = False
    if neutrality["charges_audited"] == 0:
        print("FAIL: no per-ticket charges reached the audit stream")
        ok = False
    if neutrality["charges_with_completed_trace"] != neutrality["charges_audited"]:
        print(
            f"FAIL: only {neutrality['charges_with_completed_trace']} of "
            f"{neutrality['charges_audited']} audited charges name a "
            "completed trace"
        )
        ok = False

    if ok:
        print(
            f"OK: disabled-mode flushes run {ratio:.3f}x the stripped pipeline "
            f"(bar {OVERHEAD_BAR}x, enabled {overhead['enabled_vs_stripped']:.3f}x); "
            f"one process-backend flush yielded a single trace tree with all "
            f"four stage spans, {trace_tree['unit_spans']} unit span(s) and "
            f"worker spans measured in worker processes; seeded answers are "
            f"bit-identical with observability on, and all "
            f"{neutrality['charges_audited']} charges name completed traces"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
