"""Benchmark / reproduction of Figure 8(d, h) and 9(d, h): 1D-Range under G⁴_k.

Dataset D is aggregated to domain sizes 512–4096 and the ε/2-DP Privelet and
DAWA baselines are compared against Transformed+Laplace and Trans+Dawa running
through the ``H⁴_k`` spanner with budget ε/3 (Corollary 4.6).

Reduced configuration: 400 random range queries, 2 trials, domain sizes
{512, 1024, 2048, 4096} as in the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments import mean_error_of, render_results, run_range1d_theta_experiment

from bench_utils import save_and_print

DOMAIN_SIZES = (512, 1024, 2048, 4096)
NUM_QUERIES = 400
TRIALS = 2


@pytest.mark.parametrize("epsilon", [0.01, 0.1])
def test_figure8_theta_panel(benchmark, epsilon):
    results = benchmark.pedantic(
        run_range1d_theta_experiment,
        kwargs={
            "epsilon": epsilon,
            "theta": 4,
            "dataset": "D",
            "domain_sizes": DOMAIN_SIZES,
            "num_queries": NUM_QUERIES,
            "trials": TRIALS,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title=f"1D-Range under G^4_k, eps={epsilon}")
    save_and_print(f"figure8_theta_range_eps{epsilon}", text)

    # Paper finding 1: the Blowfish mechanisms have at least an order of
    # magnitude smaller error than the DP baselines at every domain size.
    for size in DOMAIN_SIZES:
        assert mean_error_of(results, "Transformed+Laplace", str(size)) < mean_error_of(
            results, "Privelet", str(size)
        ) / 5

    # Paper finding 2: the baseline error grows with the domain size while the
    # Blowfish error stays essentially flat (the transformed strategy is
    # identity-like within fixed-size groups).
    privelet_growth = mean_error_of(results, "Privelet", "4096") / mean_error_of(
        results, "Privelet", "512"
    )
    blowfish_growth = mean_error_of(results, "Transformed+Laplace", "4096") / mean_error_of(
        results, "Transformed+Laplace", "512"
    )
    assert blowfish_growth < privelet_growth
