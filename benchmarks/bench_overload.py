"""Benchmark overload protection: shed latency, zero-ε discipline, drain.

Runs as a plain script (``python benchmarks/bench_overload.py``) and writes
``BENCH_overload.json`` at the repository root.  Three experiments:

1. **Shed latency at 4× capacity.**  The admission edge is loaded with four
   times its pending-queue bound; everything over the bound must shed fast
   — the whole point of admission control is that an overloaded server
   answers *quickly in the negative* instead of slowly in the positive.
   The headline, ``shed_p99_ms``, gates at ≤ 50 ms (demotable with
   ``BENCH_OVERLOAD_TIMING_GATE=0`` on noisy runners).

2. **Zero ε for shed and expired work — and byte-identical admitted
   work.**  A *loaded* server (extra submits shed by the rate limiter,
   extra submits expired by a past deadline) and a *calm* server (only the
   admitted workload) run the same seed over durable ledgers.  Gates, all
   strict: the two ledgers journal byte-identical charge sequences (shed
   and expired work never reached the accountant), and the admitted
   answers draw byte-identical noise (overload never shifts the RNG
   stream of admitted work).

3. **SIGTERM drain.**  The real ``python -m repro.engine.serving`` process
   is loaded with in-flight queries and SIGTERMed; the gate (strict) is
   that it exits 0 with every in-flight ticket resolved
   (``drain complete: pending=0 answered=N``).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core import Database, Domain  # noqa: E402
from repro.engine import PrivateQueryEngine, recover_accountant  # noqa: E402
from repro.engine.serving import AdmissionController, create_app  # noqa: E402
from repro.engine.serving.http import Request  # noqa: E402
from repro.policy import line_policy  # noqa: E402

DOMAIN_SIZE = 128
CAPACITY = 32           # admission pending bound = "capacity"
OVERLOAD_FACTOR = 4     # submits driven per capacity slot
SHED_P99_BUDGET_MS = 50.0
ADMITTED = 8            # admitted queries in the determinism experiment
EPSILON = 0.01


def build_fixture():
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(5)
    counts = rng.integers(0, 40, size=DOMAIN_SIZE).astype(float)
    database = Database(domain, counts, name="bench-overload")
    return domain, database


def make_engine(database, domain, seed: int = 0, **overrides):
    options = dict(
        total_epsilon=1000.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=seed,
    )
    options.update(overrides)
    return PrivateQueryEngine(database, **options)


def http_request(method, path, body=None, headers=None):
    payload = json.dumps(body).encode() if body is not None else b""
    return Request(
        method, path, {}, {k.lower(): v for k, v in (headers or {}).items()},
        payload, True,
    )


def query_row(domain, index: int) -> list:
    row = [0.0] * domain.size
    row[(7 * index) % domain.size] = 1.0
    return row


# ------------------------------------------------------------- shed latency
def run_shed_latency(domain, database):
    """Drive 4× the admission capacity; time every shed response."""
    engine = make_engine(database, domain)
    engine.open_session("alice", 500.0)
    # Big triggers: no flush runs during the burst, so the pending queue
    # stays full and every over-capacity submit must shed.
    app = create_app(
        engine,
        max_batch_size=100_000,
        max_delay=600.0,
        admission=AdmissionController(engine, max_pending=CAPACITY),
    )

    total = CAPACITY * OVERLOAD_FACTOR
    body = {
        "client_id": "alice",
        "workload": {"kind": "identity"},
        "epsilon": EPSILON,
    }

    async def scenario():
        statuses = []
        shed_latencies = []
        for _ in range(total):
            started = time.perf_counter()
            response = await app.dispatch(http_request("POST", "/api/queries", body))
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            statuses.append(response.status)
            if response.status in (429, 503):
                shed_latencies.append(elapsed_ms)
        await app.aclose()
        return statuses, shed_latencies

    statuses, shed_latencies = asyncio.run(scenario())
    engine.close()
    admitted = sum(1 for status in statuses if status == 202)
    shed = len(shed_latencies)
    latencies = np.asarray(shed_latencies)
    return {
        "capacity": CAPACITY,
        "overload_factor": OVERLOAD_FACTOR,
        "submits": total,
        "admitted": admitted,
        "shed": shed,
        "shed_p50_ms": float(np.percentile(latencies, 50)),
        "shed_p99_ms": float(np.percentile(latencies, 99)),
        "shed_max_ms": float(latencies.max()),
    }


# ----------------------------------------------------- zero-epsilon discipline
def run_zero_epsilon_determinism(domain, database, scratch_dir):
    """Loaded vs calm run: identical ledgers and identical admitted draws."""

    def run(loaded: bool, ledger_path: str):
        engine = make_engine(database, domain, seed=23, durable_ledger=ledger_path)
        engine.open_session("alice", 500.0)
        # Token bucket with a negligible refill rate: the burst covers the
        # admitted queries plus (in the loaded run) one born-dead expired
        # submit apiece; once it is spent, every further submit sheds —
        # deterministically, independent of wall-clock.
        app = create_app(
            engine,
            max_batch_size=100_000,
            max_delay=600.0,
            admission=AdmissionController(
                engine, client_rate=1e-9, client_burst=float(2 * ADMITTED)
            ),
        )

        async def scenario():
            ticket_ids = []
            for index in range(ADMITTED):
                body = {
                    "client_id": "alice",
                    "workload": {
                        "kind": "rows",
                        "rows": [query_row(domain, index)],
                    },
                    "epsilon": EPSILON,
                }
                response = await app.dispatch(
                    http_request("POST", "/api/queries", body)
                )
                assert response.status == 202, response.status
                ticket_ids.append(json.loads(response.body)["ticket_id"])
            if loaded:
                # Pile abuse on top of the admitted work before the flush:
                # born-dead deadline expiries (admitted — they consume
                # tokens — but resolved ``expired`` without ever queueing)
                # followed by rate-limit sheds once the burst is spent.
                # None of it may touch the ledger or shift the admitted
                # RNG stream.  (Ticket ids are embedded in charge labels,
                # so the abuse goes *after* the admitted submits to keep
                # the byte-compare exact; interleaved expiry is covered by
                # the unit suite's RNG-stream tests.)
                for _ in range(ADMITTED):
                    expired = await app.dispatch(
                        http_request(
                            "POST",
                            "/api/queries",
                            body,
                            headers={"X-Request-Deadline": str(time.time() - 60.0)},
                        )
                    )
                    assert expired.status == 202, expired.status
                    assert (
                        json.loads(expired.body)["status"] == "expired"
                    ), expired.body
                for _ in range(ADMITTED):
                    shed = await app.dispatch(
                        http_request("POST", "/api/queries", body)
                    )
                    assert shed.status == 429, shed.status
            await app.async_engine.flush()
            answers = []
            for ticket_id in ticket_ids:
                poll = await app.dispatch(
                    http_request("GET", f"/api/queries/{ticket_id}")
                )
                payload = json.loads(poll.body)
                assert payload["status"] == "answered", payload
                answers.append(payload["answers"])
            await app.aclose()
            return answers

        answers = asyncio.run(scenario())
        stats = engine.stats
        engine.close()
        reader, state = recover_accountant(ledger_path)
        operations = [
            (scope.label, op.label, op.epsilon)
            for scope in state.scopes
            for op in scope.accountant.operations
        ] + [
            (None, op.label, op.epsilon) for op in state.accountant.operations
        ]
        reader.close()
        return answers, operations, stats

    loaded_answers, loaded_ops, loaded_stats = run(
        True, os.path.join(scratch_dir, "loaded-ledger.db")
    )
    calm_answers, calm_ops, _ = run(
        False, os.path.join(scratch_dir, "calm-ledger.db")
    )
    return {
        "admitted": ADMITTED,
        "loaded_ledger_entries": len(loaded_ops),
        "draws_identical": loaded_answers == calm_answers,
        "ledgers_identical": json.dumps(loaded_ops) == json.dumps(calm_ops),
        "loaded_expired": loaded_stats.queries_expired,
        "loaded_submitted": loaded_stats.queries_submitted,
    }


# -------------------------------------------------------------- SIGTERM drain
def run_sigterm_drain():
    """Load the real server, SIGTERM it, parse the drain banner."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("PYTHONUNBUFFERED", "1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine.serving", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=repo_root,
    )
    inflight = 6
    try:
        banner = proc.stdout.readline()
        port = int(banner.rstrip().rsplit(":", 1)[1])

        async def load():
            async def call(method, path, body=None):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                payload = json.dumps(body).encode() if body is not None else b""
                writer.write(
                    (
                        f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
                        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
                    ).encode()
                    + payload
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return int(raw.split(b" ", 2)[1])

            assert await call(
                "POST",
                "/api/clients",
                {"client_id": "alice", "epsilon_allotment": 4.0},
            ) == 201
            for _ in range(inflight):
                assert await call(
                    "POST",
                    "/api/queries",
                    {
                        "client_id": "alice",
                        "workload": {"kind": "identity"},
                        "epsilon": 0.05,
                    },
                ) == 202

        asyncio.run(load())
        started = time.perf_counter()
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        drain_seconds = time.perf_counter() - started
        drain_lines = [
            line for line in out.splitlines() if line.startswith("drain complete:")
        ]
        return {
            "inflight_at_sigterm": inflight,
            "exit_code": proc.returncode,
            "drain_seconds": drain_seconds,
            "drain_line": drain_lines[0] if drain_lines else None,
            "all_resolved": bool(drain_lines)
            and "pending=0" in drain_lines[0]
            and f"answered={inflight}" in drain_lines[0],
        }
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


def main() -> int:
    import tempfile

    domain, database = build_fixture()
    shed = run_shed_latency(domain, database)
    with tempfile.TemporaryDirectory() as scratch:
        epsilon = run_zero_epsilon_determinism(domain, database, scratch)
    drain = run_sigterm_drain()

    report = {
        "domain_size": DOMAIN_SIZE,
        "shed_latency": shed,
        "zero_epsilon": epsilon,
        "sigterm_drain": drain,
    }
    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_overload.json",
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    timing_gate = os.environ.get("BENCH_OVERLOAD_TIMING_GATE", "1") != "0"
    ok = True
    if shed["shed_p99_ms"] > SHED_P99_BUDGET_MS:
        print(
            f"{'FAIL' if timing_gate else 'WARN'}: shed p99 "
            f"{shed['shed_p99_ms']:.2f} ms exceeds the "
            f"{SHED_P99_BUDGET_MS:.0f} ms budget at "
            f"{OVERLOAD_FACTOR}x capacity "
            f"(gate {'armed' if timing_gate else 'disarmed'})"
        )
        ok = ok and not timing_gate
    if shed["shed"] == 0 or shed["admitted"] == 0:
        print("FAIL: overload run shed or admitted nothing — gate is vacuous")
        ok = False
    if not epsilon["draws_identical"]:
        print("FAIL: admitted draws under overload differ from the calm run")
        ok = False
    if not epsilon["ledgers_identical"]:
        print("FAIL: shed/expired work left a trace in the durable ledger")
        ok = False
    if epsilon["loaded_ledger_entries"] == 0:
        print("FAIL: zero-epsilon check charged nothing — gate is vacuous")
        ok = False
    if epsilon["loaded_expired"] != ADMITTED:
        print(
            f"FAIL: expected {ADMITTED} expired tickets in the loaded run, "
            f"saw {epsilon['loaded_expired']} — gate is vacuous"
        )
        ok = False
    if drain["exit_code"] != 0 or not drain["all_resolved"]:
        print(
            f"FAIL: SIGTERM drain broke its contract "
            f"(exit {drain['exit_code']}, line {drain['drain_line']!r})"
        )
        ok = False
    if ok:
        print(
            f"OK: shed p99 {shed['shed_p99_ms']:.2f} ms at "
            f"{OVERLOAD_FACTOR}x capacity ({shed['shed']} shed, "
            f"{shed['admitted']} admitted); shed/expired ε=0 with "
            f"byte-identical admitted draws; SIGTERM drained "
            f"{drain['inflight_at_sigterm']} in-flight tickets in "
            f"{drain['drain_seconds']:.2f}s"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
