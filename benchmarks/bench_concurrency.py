"""Benchmark the staged flush pipeline under concurrent submitters.

Runs as a plain script (``python benchmarks/bench_concurrency.py``) and
writes ``BENCH_concurrency.json`` at the repository root.  Two experiments:

1. **Concurrency sweep** (threads × executor batch size).  The *baseline* is
   PR 1's single-lock engine (``serialize_flush=True``) with every client
   thread doing a synchronous ``ask`` — the whole flush, planning and
   mechanism execution included, runs inside one lock, so concurrent clients
   serialise and every flush carries one query.  The *pipeline* mode serves
   the same query stream through the lock-narrowed staged pipeline behind a
   :class:`~repro.engine.BatchingExecutor`, so concurrent submissions
   accumulate into shared vectorised flushes.  The headline number,
   ``speedup_4_threads``, is pipeline vs baseline throughput at 4 submitter
   threads; the acceptance bar for this repository is ≥ 2×.

2. **Sharded scatter/gather identity.**  A two-component policy is served
   once sharded and once unsharded; the per-session and global ledgers must
   match **exactly** (parallel composition makes the scatter free), and the
   sharded flush must run one mechanism invocation per touched shard.

The wall-clock gate can be demoted to a warning on noisy shared runners with
``BENCH_CONCURRENCY_TIMING_GATE=0``; the ε-identity gate is deterministic and
always enforced.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core import Database, Domain, random_range_queries_workload  # noqa: E402
from repro.core.workload import Workload  # noqa: E402
from repro.engine import BatchingExecutor, PrivateQueryEngine  # noqa: E402
from repro.policy import PolicyGraph, line_policy  # noqa: E402

DOMAIN_SIZE = 2048
QUERIES_PER_WORKLOAD = 16
QUERIES_PER_THREAD = 16
EPSILON_PER_QUERY = 0.001
THREAD_COUNTS = (1, 2, 4)
BATCH_SIZES_AT_4 = (1, 2, 4, 8)
MAX_DELAY = 0.01


def build_fixture():
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(7)
    counts = rng.integers(0, 50, size=DOMAIN_SIZE).astype(float)
    database = Database(domain, counts, name="bench-concurrency")
    return domain, database, line_policy(domain)


def make_engine(database, policy, serialize: bool, num_sessions: int):
    engine = PrivateQueryEngine(
        database,
        total_epsilon=1000.0,
        default_policy=policy,
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
        serialize_flush=serialize,
    )
    for index in range(num_sessions):
        engine.open_session(f"client{index}", 100.0)
    return engine


def thread_workloads(domain, thread_index: int):
    return [
        random_range_queries_workload(
            domain,
            num_queries=QUERIES_PER_WORKLOAD,
            random_state=1000 * thread_index + seed,
        )
        for seed in range(QUERIES_PER_THREAD)
    ]


def warm_plan(engine, domain):
    """Plan once up front so every mode measures answering, not planning."""
    warm = random_range_queries_workload(
        domain, num_queries=QUERIES_PER_WORKLOAD, random_state=999_999
    )
    engine.ask("client0", warm, epsilon=EPSILON_PER_QUERY)


def run_baseline(domain, database, policy, threads: int):
    """Single-lock engine, synchronous per-thread ask (the PR 1 pattern)."""
    engine = make_engine(database, policy, serialize=True, num_sessions=threads)
    warm_plan(engine, domain)
    work = {index: thread_workloads(domain, index) for index in range(threads)}

    def client(index: int) -> None:
        for workload in work[index]:
            engine.ask(f"client{index}", workload, epsilon=EPSILON_PER_QUERY)

    workers = [
        threading.Thread(target=client, args=(index,)) for index in range(threads)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    total = threads * QUERIES_PER_THREAD
    return {
        "threads": threads,
        "qps": total / elapsed,
        "mechanism_invocations": engine.stats.mechanism_invocations,
    }


def run_pipeline(domain, database, policy, threads: int, max_batch_size: int):
    """Staged pipeline behind the deadline/size-batched concurrent front-end."""
    engine = make_engine(database, policy, serialize=False, num_sessions=threads)
    warm_plan(engine, domain)
    work = {index: thread_workloads(domain, index) for index in range(threads)}
    with BatchingExecutor(
        engine, max_batch_size=max_batch_size, max_delay=MAX_DELAY
    ) as executor:

        def client(index: int) -> None:
            for workload in work[index]:
                executor.ask(
                    f"client{index}",
                    workload,
                    epsilon=EPSILON_PER_QUERY,
                    timeout=60.0,
                )

        workers = [
            threading.Thread(target=client, args=(index,)) for index in range(threads)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
    total = threads * QUERIES_PER_THREAD
    stats = engine.stats
    return {
        "threads": threads,
        "max_batch_size": max_batch_size,
        "qps": total / elapsed,
        "mechanism_invocations": stats.mechanism_invocations,
        "stage_seconds": stats.stage_seconds,
    }


def run_sharding_identity():
    """Scatter/gather over a 2-component policy: ε ledgers must match exactly."""
    size = 512
    domain = Domain((size,))
    rng = np.random.default_rng(11)
    database = Database(
        domain, rng.integers(0, 50, size=size).astype(float), name="bench-shards"
    )
    half = size // 2
    policy = PolicyGraph(
        domain,
        edges=[(i, i + 1) for i in range(half - 1)]
        + [(i, i + 1) for i in range(half, size - 1)],
        name="two-components",
    )
    left = Workload(
        domain,
        np.hstack([np.eye(half), np.zeros((half, half))]),
        name="left-half",
    )
    right = Workload(
        domain,
        np.hstack([np.zeros((half, half)), np.eye(half)]),
        name="right-half",
    )

    def serve(enable_sharding: bool):
        engine = PrivateQueryEngine(
            database,
            total_epsilon=100.0,
            default_policy=policy,
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=5,
            enable_sharding=enable_sharding,
        )
        session = engine.open_session("alice", 50.0)
        from repro.core import identity_workload

        engine.ask("alice", identity_workload(domain), epsilon=0.5)
        engine.ask("alice", left, epsilon=0.25)
        engine.ask("alice", right, epsilon=0.125)
        return engine, session

    sharded_engine, sharded_session = serve(True)
    plain_engine, plain_session = serve(False)
    session_delta = abs(sharded_session.spent() - plain_session.spent())
    global_delta = abs(
        sharded_engine.accountant.spent() - plain_engine.accountant.spent()
    )
    return {
        "domain_size": size,
        "shards": sharded_engine.shard_count(),
        "sharded_batches": sharded_engine.stats.sharded_batches,
        "sharded_invocations": sharded_engine.stats.mechanism_invocations,
        "unsharded_invocations": plain_engine.stats.mechanism_invocations,
        "session_epsilon_delta": session_delta,
        "global_epsilon_delta": global_delta,
        "session_epsilon_spent": sharded_session.spent(),
    }


def main() -> int:
    domain, database, policy = build_fixture()

    baseline = [
        run_baseline(domain, database, policy, threads) for threads in THREAD_COUNTS
    ]
    pipeline = [
        run_pipeline(domain, database, policy, threads, max_batch_size=threads)
        for threads in THREAD_COUNTS
    ]
    batch_sweep = [
        run_pipeline(domain, database, policy, 4, max_batch_size=batch_size)
        for batch_size in BATCH_SIZES_AT_4
    ]

    baseline_at_4 = next(row for row in baseline if row["threads"] == 4)
    pipeline_at_4 = next(row for row in pipeline if row["threads"] == 4)
    speedup = pipeline_at_4["qps"] / baseline_at_4["qps"]

    sharding = run_sharding_identity()

    report = {
        "domain_size": DOMAIN_SIZE,
        "queries_per_workload": QUERIES_PER_WORKLOAD,
        "queries_per_thread": QUERIES_PER_THREAD,
        "max_delay_seconds": MAX_DELAY,
        "baseline_single_lock": baseline,
        "pipeline_batched": pipeline,
        "batch_size_sweep_at_4_threads": batch_sweep,
        "speedup_4_threads": speedup,
        "sharding": sharding,
    }

    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_concurrency.json",
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    # The ε-identity gate is deterministic and always enforced.  The
    # wall-clock gate can be demoted to a warning (set
    # BENCH_CONCURRENCY_TIMING_GATE=0) on shared/noisy runners such as CI.
    timing_gate = os.environ.get("BENCH_CONCURRENCY_TIMING_GATE", "1") != "0"
    ok = True
    if speedup < 2.0:
        print(
            f"{'FAIL' if timing_gate else 'WARN'}: concurrent flush speedup "
            f"{speedup:.2f}x at 4 threads is below the 2x bar"
        )
        ok = ok and not timing_gate
    if sharding["session_epsilon_delta"] != 0.0 or sharding["global_epsilon_delta"] != 0.0:
        print(
            "FAIL: sharded scatter/gather changed the ledger "
            f"(session delta {sharding['session_epsilon_delta']}, "
            f"global delta {sharding['global_epsilon_delta']})"
        )
        ok = False
    if sharding["shards"] != 2 or sharding["sharded_batches"] < 1:
        print("FAIL: the 2-component policy was not served via scatter/gather")
        ok = False
    if ok:
        print(
            f"OK: {speedup:.2f}x flush throughput with 4 concurrent submitters, "
            f"scatter/gather over {sharding['shards']} shards with byte-identical "
            "epsilon accounting"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
