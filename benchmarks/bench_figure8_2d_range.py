"""Benchmark / reproduction of Figure 8(a, e) and 9(a, e): 2D-Range under G¹_k².

Compares ε/2-DP Privelet and DAWA against Transformed+Privelet (the grid-slab
matrix mechanism of Theorem 5.4) on random 2-D range queries over the Twitter
grids T25 / T50 / T100.

Reduced configuration: 300 random range queries (the paper uses 10 000),
2 trials.
"""

from __future__ import annotations

import pytest

from repro.experiments import mean_error_of, render_results, run_range2d_experiment

from bench_utils import save_and_print

DATASETS = ("T25", "T50", "T100")
NUM_QUERIES = 300
TRIALS = 2


@pytest.mark.parametrize("epsilon", [0.01, 0.1])
def test_figure8_2d_range_panel(benchmark, epsilon):
    results = benchmark.pedantic(
        run_range2d_experiment,
        kwargs={
            "epsilon": epsilon,
            "datasets": DATASETS,
            "num_queries": NUM_QUERIES,
            "trials": TRIALS,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title=f"2D-Range under G^1_k2, eps={epsilon}")
    save_and_print(f"figure8_2d_range_eps{epsilon}", text)

    # Paper finding 1: Transformed+Privelet significantly outperforms Privelet
    # on every grid size.
    for dataset in DATASETS:
        assert mean_error_of(results, "Transformed+Privelet", dataset) < mean_error_of(
            results, "Privelet", dataset
        )
    # Paper finding 2: it also improves over DAWA when the domain is large.
    assert mean_error_of(results, "Transformed+Privelet", "T100") < mean_error_of(
        results, "Dawa", "T100"
    )
