"""Benchmark / reproduction of Table 1: the dataset catalogue statistics.

Regenerates every synthetic stand-in dataset and reports its domain size,
scale and percentage of zero counts next to the published targets.
"""

from __future__ import annotations

from repro.experiments import format_table, table1_rows

from bench_utils import save_and_print


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(table1_rows, kwargs={"random_state": 0}, rounds=1, iterations=1)
    text = format_table(
        rows,
        columns=[
            "dataset",
            "domain_size",
            "target_scale",
            "generated_scale",
            "target_zero_percent",
            "generated_zero_percent",
        ],
    )
    save_and_print("table1_datasets", text)
    assert len(rows) == 10
