"""Ablation benchmarks for the reproduction's design choices (see DESIGN.md).

Not part of the paper's evaluation; these quantify the levers of the
implementation so downstream users can see what each component contributes:
the consistency step, DAWA's budget split, the spanner stretch penalty and the
choice of per-slab strategy on the grid policy.
"""

from __future__ import annotations

from repro.experiments import (
    ablate_consistency,
    ablate_dawa_budget_split,
    ablate_grid_strategy,
    ablate_spanner_stretch,
    render_results,
)

from bench_utils import save_and_print


def test_ablation_consistency(benchmark):
    results = benchmark.pedantic(
        ablate_consistency,
        kwargs={
            "epsilon": 0.1,
            "domain_size": 1024,
            "zero_fractions": (0.2, 0.6, 0.95),
            "trials": 2,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    save_and_print(
        "ablation_consistency",
        render_results(results, title="Consistency post-processing vs data sparsity"),
    )
    assert results


def test_ablation_dawa_budget_split(benchmark):
    results = benchmark.pedantic(
        ablate_dawa_budget_split,
        kwargs={
            "epsilon": 0.1,
            "domain_size": 1024,
            "fractions": (0.1, 0.25, 0.5, 0.75),
            "trials": 2,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    save_and_print(
        "ablation_dawa_budget", render_results(results, title="DAWA partition-budget fraction")
    )
    assert results


def test_ablation_spanner_stretch(benchmark):
    results = benchmark.pedantic(
        ablate_spanner_stretch,
        kwargs={
            "epsilon": 0.1,
            "domain_size": 1024,
            "thetas": (1, 2, 4, 8, 16),
            "num_queries": 300,
            "trials": 2,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    save_and_print(
        "ablation_spanner_stretch",
        render_results(results, title="Theta-threshold policies through the H^theta spanner"),
    )
    errors = {r.extra["theta"]: r.mean_error for r in results}
    assert errors[16] > errors[1]


def test_ablation_grid_strategy(benchmark):
    results = benchmark.pedantic(
        ablate_grid_strategy,
        kwargs={
            "epsilon": 0.1,
            "grid_size": 24,
            "num_queries": 300,
            "trials": 2,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    save_and_print(
        "ablation_grid_strategy",
        render_results(results, title="Per-slab Haar vs identity strategies (grid policy)"),
    )
    assert {r.algorithm for r in results} == {"slab-haar", "slab-identity"}
