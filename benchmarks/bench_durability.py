"""Benchmark the durable state tier: ε-ledger overhead + crash recovery.

Runs as a plain script (``python benchmarks/bench_durability.py``) and
writes ``BENCH_durability.json`` at the repository root.  Three
experiments:

1. **Durable-charge overhead.**  Durable mode journals every charge to
   SQLite (WAL, ``synchronous=NORMAL``) inside the charge stage, *before*
   the mechanism runs.  Identically-seeded durable and disabled-mode
   engines serve interleaved rounds (interleaving amortises machine drift
   across both arms) and the headline gate is
   ``median(durable) <= 1.10 x median(disabled)``.  The timing gate is
   demotable to a warning on noisy shared runners via
   ``BENCH_DURABILITY_TIMING_GATE=0``; the deterministic gates below are
   always enforced.

2. **Noise-stream neutrality (deterministic).**  The durable hooks must
   never touch the noise path: identically-seeded engines with the ledger
   on and off must produce bit-identical answers and identical ε ledgers.

3. **Crash-recovery smoke (deterministic).**  A child process charges
   against a durable ledger and is crashed (``os._exit``) at the
   ``post-charge`` fault point.  The relaunched engine must recover
   exactly the ε that was journalled before the crash, refuse an
   over-budget retry against the recovered spend, and still serve an
   affordable query.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import Database, Domain  # noqa: E402
from repro.core.workload import Workload  # noqa: E402
from repro.engine import (  # noqa: E402
    PrivateQueryEngine,
    recover_accountant,
    set_store_enabled,
)
from repro.exceptions import PrivacyBudgetError  # noqa: E402
from repro.policy import line_policy  # noqa: E402

DOMAIN_SIZE = 1024
QUERIES = 8
ROUNDS = 60
WARMUP_ROUNDS = 5
OVERHEAD_BAR = 1.10

#: ε journalled before the ``post-charge`` crash point fires in the child:
#: the session reservation (5.0) plus the first ticket's charge (1.0).
CRASH_SESSION_ALLOTMENT = 5.0
CRASH_CHARGED_BEFORE = 1.0

CRASH_CHILD = """
import sys

import numpy as np

from repro.core import Database, Domain
from repro.core.workload import Workload
from repro.engine import FaultInjector, PrivateQueryEngine
from repro.policy import line_policy

ledger_path = sys.argv[1]
domain = Domain((64,))
rng = np.random.default_rng(7)
database = Database(
    domain, rng.integers(0, 50, size=64).astype(float), name="bench-dur-crash"
)
engine = PrivateQueryEngine(
    database,
    total_epsilon=10.0,
    default_policy=line_policy(domain),
    prefer_data_dependent=False,
    consistency=False,
    enable_answer_cache=False,
    random_state=7,
    durable_ledger=ledger_path,
)
engine.open_session("bench", 5.0)
workload = Workload(domain, np.eye(64), name="crash-q")
engine.submit("bench", workload, epsilon=1.0)
engine.submit("bench", Workload(domain, np.cumsum(np.eye(64), 0), name="crash-q2"),
              epsilon=0.75)
FaultInjector().crash_at("post-charge", exit_code=42).install()
engine.flush()
print("SURVIVED", flush=True)
sys.exit(0)
"""


def build_database(name: str) -> Database:
    domain = Domain((DOMAIN_SIZE,))
    rng = np.random.default_rng(7)
    counts = rng.integers(0, 50, size=DOMAIN_SIZE).astype(float)
    return Database(domain, counts, name=name)


def build_engine(mode: str, ledger_path: str | None) -> PrivateQueryEngine:
    database = build_database(f"bench-dur-{mode}")
    domain = database.domain
    engine = PrivateQueryEngine(
        database,
        total_epsilon=10_000.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=0,
        durable_ledger=ledger_path,
    )
    engine.open_session("bench", 5_000.0)
    return engine


def round_workload(domain: Domain, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    matrix = np.zeros((QUERIES, domain.size))
    for row in range(QUERIES):
        lo = int(rng.integers(0, domain.size - 2))
        hi = int(rng.integers(lo + 1, domain.size))
        matrix[row, lo : hi + 1] = 1.0
    return Workload(domain, matrix, name=f"dur-{seed}")


def run_overhead(tmp_dir: str):
    """Interleaved flush-latency sampling: durable ledger on vs off.

    The process-wide factorisation store is disabled for this experiment:
    with it on, whichever arm flushes first each round pays the
    factorisation miss the other arm rides, and that asymmetry (~2x) would
    swamp the sub-millisecond ledger append actually being measured.  With
    the store off both arms do identical linear algebra and the ratio
    isolates the durable-charge cost.
    """
    modes = ("durable", "disabled")
    engines = {
        "disabled": build_engine("disabled", None),
        "durable": build_engine(
            "durable", os.path.join(tmp_dir, "overhead_ledger.db")
        ),
    }
    samples = {mode: [] for mode in modes}
    set_store_enabled(False)
    try:
        for round_index in range(WARMUP_ROUNDS + ROUNDS):
            for mode in modes:
                engine = engines[mode]
                workload = round_workload(
                    engine.database.domain, 1000 + round_index
                )
                engine.submit("bench", workload, 0.05)
                started = time.perf_counter()
                engine.flush()
                elapsed = time.perf_counter() - started
                if round_index >= WARMUP_ROUNDS:
                    samples[mode].append(elapsed)
    finally:
        set_store_enabled(True)
        for engine in engines.values():
            engine.close()
    report = {}
    for mode in modes:
        report[mode] = {
            "median_flush_seconds": statistics.median(samples[mode]),
            "mean_flush_seconds": statistics.fmean(samples[mode]),
            "rounds": len(samples[mode]),
        }
    report["durable_vs_disabled"] = (
        report["durable"]["median_flush_seconds"]
        / report["disabled"]["median_flush_seconds"]
    )
    return report


def run_neutrality(tmp_dir: str):
    """Seeded draws and ε ledgers must be byte-identical durable-on/off."""

    def serve(ledger_path):
        database = build_database("bench-dur-neutral")
        domain = database.domain
        engine = PrivateQueryEngine(
            database,
            total_epsilon=100.0,
            default_policy=line_policy(domain),
            prefer_data_dependent=False,
            consistency=False,
            enable_answer_cache=False,
            random_state=1234,
            durable_ledger=ledger_path,
        )
        session = engine.open_session("bench", 50.0)
        tickets = []
        for round_index in range(3):
            for group, epsilon in enumerate((0.4, 0.2)):
                tickets.append(
                    engine.submit(
                        "bench",
                        round_workload(domain, 10 * round_index + group),
                        epsilon,
                    )
                )
            engine.flush()
        ledger = [
            (op.label, op.epsilon, op.partition)
            for op in session.accountant.operations
        ]
        engine.close()
        return [ticket.answers for ticket in tickets], ledger

    baseline_answers, baseline_ledger = serve(None)
    durable_answers, durable_ledger = serve(
        os.path.join(tmp_dir, "neutrality_ledger.db")
    )
    answers_identical = all(
        a is not None
        and b is not None
        and np.asarray(a).tobytes() == np.asarray(b).tobytes()
        for a, b in zip(baseline_answers, durable_answers)
    )
    return {
        "tickets": len(baseline_answers),
        "answers_identical": bool(answers_identical),
        "ledgers_identical": baseline_ledger == durable_ledger,
        "ledger_operations": len(baseline_ledger),
    }


def run_crash_recovery(tmp_dir: str):
    """Kill a child at post-charge; the relaunch recovers and enforces."""
    ledger_path = os.path.join(tmp_dir, "crash_ledger.db")
    script = os.path.join(tmp_dir, "crash_child.py")
    with open(script, "w", encoding="utf-8") as handle:
        handle.write(CRASH_CHILD)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    result = subprocess.run(
        [sys.executable, script, ledger_path],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )

    store, state = recover_accountant(ledger_path)
    sessions = [s for s in state.scopes if s.label == "session:bench"]
    recovered_spent = sessions[0].accountant.spent() if sessions else None
    store.close()

    domain = Domain((64,))
    rng = np.random.default_rng(7)
    database = Database(
        domain, rng.integers(0, 50, size=64).astype(float), name="bench-dur-crash"
    )
    refused = False
    served = False
    remaining_after = None
    engine = PrivateQueryEngine(
        database,
        total_epsilon=10.0,
        default_policy=line_policy(domain),
        prefer_data_dependent=False,
        consistency=False,
        enable_answer_cache=False,
        random_state=7,
        durable_ledger=ledger_path,
    )
    with engine:
        session = engine.session("bench")
        remaining = session.remaining()
        try:
            engine.ask(
                "bench",
                Workload(domain, np.eye(64), name="over"),
                epsilon=remaining + 0.5,
            )
        except PrivacyBudgetError:
            refused = True
        answers = engine.ask(
            "bench", Workload(domain, np.eye(64), name="ok"), epsilon=0.25
        )
        served = answers is not None
        remaining_after = session.remaining()

    return {
        "child_exit_code": result.returncode,
        "child_survived": "SURVIVED" in result.stdout,
        "expected_session_spent": CRASH_CHARGED_BEFORE,
        "recovered_session_spent": recovered_spent,
        "recovered_global_spent": state.accountant.spent(),
        "over_budget_retry_refused": refused,
        "affordable_query_served": served,
        "remaining_after_relaunch": remaining_after,
        "child_stderr_tail": result.stderr.strip().splitlines()[-1:]
        if result.stderr.strip()
        else [],
    }


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp_dir:
        overhead = run_overhead(tmp_dir)
        neutrality = run_neutrality(tmp_dir)
        crash = run_crash_recovery(tmp_dir)

    report = {
        "domain_size": DOMAIN_SIZE,
        "queries_per_flush": QUERIES,
        "rounds": ROUNDS,
        "overhead_bar": OVERHEAD_BAR,
        "overhead": overhead,
        "neutrality": neutrality,
        "crash_recovery": crash,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_durability.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))

    enforce_timing = os.environ.get("BENCH_DURABILITY_TIMING_GATE", "1") != "0"
    ok = True

    ratio = overhead["durable_vs_disabled"]
    if ratio > OVERHEAD_BAR:
        message = (
            f"durable-mode flushes run {ratio:.3f}x disabled mode — above "
            f"the {OVERHEAD_BAR}x bar"
        )
        if enforce_timing:
            print(f"FAIL: {message}")
            ok = False
        else:
            print(f"WARN (gate demoted): {message}")

    if not neutrality["answers_identical"]:
        print("FAIL: enabling the durable ledger changed the noise stream")
        ok = False
    if not neutrality["ledgers_identical"]:
        print("FAIL: durable-on and durable-off ε ledgers differ")
        ok = False

    if crash["child_exit_code"] != 42 or crash["child_survived"]:
        print(
            f"FAIL: crash child exited {crash['child_exit_code']} "
            f"(survived={crash['child_survived']}) — expected a clean kill "
            f"at the post-charge fault point (exit 42)"
        )
        ok = False
    if crash["recovered_session_spent"] is None:
        print("FAIL: recovery found no 'session:bench' scope in the ledger")
        ok = False
    elif abs(crash["recovered_session_spent"] - CRASH_CHARGED_BEFORE) > 1e-9:
        print(
            f"FAIL: recovered session spent "
            f"{crash['recovered_session_spent']} != journalled "
            f"{CRASH_CHARGED_BEFORE} ε charged before the crash"
        )
        ok = False
    if abs(crash["recovered_global_spent"] - CRASH_SESSION_ALLOTMENT) > 1e-9:
        print(
            f"FAIL: recovered global spent {crash['recovered_global_spent']} "
            f"!= the journalled session reservation {CRASH_SESSION_ALLOTMENT}"
        )
        ok = False
    if not crash["over_budget_retry_refused"]:
        print("FAIL: the relaunched engine served a query the recovered spend forbids")
        ok = False
    if not crash["affordable_query_served"]:
        print("FAIL: the relaunched engine refused an affordable query")
        ok = False

    if ok:
        print(
            f"OK: durable-mode flushes run {ratio:.3f}x disabled mode (bar "
            f"{OVERHEAD_BAR}x); seeded draws and ε ledgers are bit-identical "
            f"with the ledger on; and the post-charge kill recovered exactly "
            f"{crash['recovered_session_spent']} ε of session spend, refused "
            f"the over-budget retry, and kept serving"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
