"""Benchmark / reproduction of Figure 8(b, f) and 9(b, f): the Hist workload.

Compares the ε/2-DP Laplace and DAWA baselines against the three Blowfish
mechanisms (Transformed+Laplace, Transformed+ConsistentEst, Trans+Dawa+Cons)
on the 1-D datasets under the line policy ``G¹_k``, for ε ∈ {0.01, 0.1}
(Figure 8) — the Figure 9 budgets live in ``bench_figure9.py``.

Reduced configuration: a representative dense / medium / sparse dataset subset
(A is the densest, D medium, E and G sparse) at the full 4096-cell domain,
2 trials.  The qualitative findings asserted below are the ones highlighted in
Section 6.1.
"""

from __future__ import annotations

import pytest

from repro.experiments import mean_error_of, render_results, run_hist_experiment

from bench_utils import save_and_print

DATASETS = ("A", "D", "E", "G")
TRIALS = 2


@pytest.mark.parametrize("epsilon", [0.01, 0.1])
def test_figure8_hist_panel(benchmark, epsilon):
    results = benchmark.pedantic(
        run_hist_experiment,
        kwargs={
            "epsilon": epsilon,
            "datasets": DATASETS,
            "trials": TRIALS,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    text = render_results(results, title=f"Hist under G^1_k, eps={epsilon}")
    save_and_print(f"figure8_hist_eps{epsilon}", text)

    # Paper finding 1: Transformed+Laplace is roughly a factor 2 better than
    # the eps/2 Laplace baseline on every dataset.
    for dataset in DATASETS:
        assert mean_error_of(results, "Transformed+Laplace", dataset) < mean_error_of(
            results, "Laplace", dataset
        )
    # Paper finding 2: on the sparse datasets (E, G) the consistency step gives
    # a large additional win over plain Transformed+Laplace.
    for dataset in ("E", "G"):
        assert mean_error_of(results, "Transformed+ConsistentEst", dataset) < 0.5 * mean_error_of(
            results, "Transformed+Laplace", dataset
        )
