"""Privacy-budget accounting: sequential and parallel composition.

The Section 5 strategies rely on two composition facts:

* **Sequential composition** — running mechanisms with budgets ε₁, …, ε_m on
  the same data costs ε₁ + … + ε_m (used by DAWA's two stages and by the
  G^θ_{k^d} strategy that splits the budget across dimensions);
* **Parallel composition** — mechanisms operating on *disjoint* parts of the
  data (disjoint groups of policy edges in the transformed domain) each enjoy
  the full budget (used by every per-line / per-group strategy).

:class:`PrivacyAccountant` is a small bookkeeping helper that the experiment
harness and the planner use to make the budget arithmetic explicit and
testable.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..exceptions import PrivacyBudgetError


@dataclass(frozen=True)
class BudgetedOperation:
    """One charged operation: a label, a budget, and the data partition it touched."""

    label: str
    epsilon: float
    partition: Optional[frozenset] = None


@dataclass
class PrivacyAccountant:
    """Track budget consumption under sequential and parallel composition.

    Parameters
    ----------
    total_epsilon:
        The overall budget that must not be exceeded.

    Notes
    -----
    Operations charged with a ``partition`` (any hashable collection of keys,
    e.g. edge-group identifiers) compose in parallel with other operations
    whose partitions are disjoint; operations without a partition compose
    sequentially with everything.

    The ledger is protected by its own re-entrant ``lock``: :meth:`charge` is
    check-then-append, so unsynchronised concurrent charges could overspend.
    This lock is the engine's **narrowed accountant lock** — it is held only
    for the microseconds of a ledger mutation, never across planning or
    mechanism execution.  Scopes created by :meth:`open_scope` share their
    parent's lock so that a scope :meth:`~ScopedAccountant.close` (which
    rewrites the parent's reservation) is atomic with concurrent charges.

    ``audit``, when set, receives one event per ledger mutation (charge,
    rollback, scope open/close) — any object with an
    ``emit(event, **fields)`` method works; the engine installs an
    :class:`repro.engine.observability.AuditLog`.  The type is deliberately
    untyped here: accounting sits below the engine layer and must not import
    from it.  Events are emitted while the ledger lock is held so the audit
    stream's order always matches the ledger's.

    ``durable``, when set, is a write-ahead journalling binding (the engine
    installs one from :class:`repro.engine.durability.LedgerStore`) —
    likewise untyped for the same layering reason.  Its hooks run inside
    the ledger lock, *before* the audit emit, and make every mutation
    check-then-**durable**-append: a charge whose durable append fails is
    undone and refused (fail closed — a crash must never under-count spent
    budget), while rollback/close journalling failures are tolerated (they
    leave over-counts, the allowed direction).
    """

    total_epsilon: float
    operations: List[BudgetedOperation] = field(default_factory=list)
    lock: "threading.RLock" = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    audit: Optional[object] = field(default=None, repr=False, compare=False)
    durable: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not math.isfinite(self.total_epsilon) or self.total_epsilon <= 0:
            raise PrivacyBudgetError(
                f"total_epsilon must be positive and finite, got {self.total_epsilon}"
            )

    def charge(
        self,
        label: str,
        epsilon: float,
        partition: Optional[Sequence] = None,
    ) -> BudgetedOperation:
        """Charge ``epsilon`` for an operation, optionally over a data partition.

        Returns the recorded :class:`BudgetedOperation`, which callers that
        may need to undo the charge (the engine's batch executor) should hand
        back to :meth:`rollback`.
        """
        with self.lock:
            if getattr(self, "closed", False):
                raise PrivacyBudgetError(
                    f"Cannot charge {epsilon} for {label!r}: this accountant is closed"
                )
            # A NaN epsilon would defeat every later comparison (NaN > total is
            # False), permanently corrupting the ledger — reject it up front.
            if not math.isfinite(epsilon) or epsilon <= 0:
                raise PrivacyBudgetError(
                    f"Charged epsilon must be positive and finite, got {epsilon}"
                )
            frozen = None if partition is None else frozenset(partition)
            operation = BudgetedOperation(
                label=label, epsilon=float(epsilon), partition=frozen
            )
            projected = self._spent_with(self.operations + [operation])
            if projected > self.total_epsilon * (1 + 1e-12):
                raise PrivacyBudgetError(
                    f"Charging {epsilon} for {label!r} would exceed the total budget "
                    f"{self.total_epsilon} (already spent {self.spent():.6g})"
                )
            self.operations.append(operation)
            if self.durable is not None:
                # Write-ahead: the charge must be on disk before the
                # mechanism runs.  A failed durable append (disk full)
                # refuses the charge — letting it stand in memory only
                # would under-count after a crash.
                try:
                    self.durable.record_charge(operation)
                except Exception as exc:
                    self.operations.pop()
                    raise PrivacyBudgetError(
                        f"Charge {label!r} refused: durable ledger append "
                        f"failed ({exc}); admitting it would risk "
                        "under-counting spent budget after a crash"
                    ) from exc
            if self.audit is not None:
                spent = self._spent_with(self.operations)
                self.audit.emit(
                    "charge",
                    label=label,
                    epsilon=operation.epsilon,
                    spent=spent,
                    remaining=self.total_epsilon - spent,
                )
            return operation

    def rollback(self, operation: BudgetedOperation) -> bool:
        """Remove a previously charged operation from the ledger.

        Used by the engine when a mechanism fails *after* charging but
        *before* releasing anything: the charge must not stand.  Matching is
        by identity so that an equal-valued charge from another thread is
        never refunded by mistake.  Returns ``True`` when the operation was
        found and removed.
        """
        with self.lock:
            for index, candidate in enumerate(self.operations):
                if candidate is operation:
                    del self.operations[index]
                    if self.durable is not None:
                        # Best-effort durable delete: a failure leaves the
                        # store over-counting, which the invariant allows.
                        self.durable.record_rollback(operation)
                    if self.audit is not None:
                        spent = self._spent_with(self.operations)
                        self.audit.emit(
                            "rollback",
                            label=operation.label,
                            epsilon=operation.epsilon,
                            spent=spent,
                            remaining=self.total_epsilon - spent,
                        )
                    return True
            return False

    def spent(self) -> float:
        """Total budget consumed so far under the composition rules."""
        with self.lock:
            return self._spent_with(self.operations)

    def remaining(self) -> float:
        """Budget still available."""
        return self.total_epsilon - self.spent()

    def can_charge(self, epsilon: float, partition: Optional[Sequence] = None) -> bool:
        """Return ``True`` when a :meth:`charge` with these arguments would succeed."""
        if getattr(self, "closed", False) or not math.isfinite(epsilon) or epsilon <= 0:
            return False
        frozen = None if partition is None else frozenset(partition)
        operation = BudgetedOperation(label="?", epsilon=float(epsilon), partition=frozen)
        with self.lock:
            projected = self._spent_with(self.operations + [operation])
        return projected <= self.total_epsilon * (1 + 1e-12)

    def open_scope(self, label: str, epsilon: float) -> "ScopedAccountant":
        """Reserve ``epsilon`` for a sub-accountant (e.g. one client session).

        The reservation is charged against this accountant immediately, under
        sequential composition — scopes may interleave arbitrarily on the same
        data, so nothing weaker is sound.  The returned
        :class:`ScopedAccountant` then tracks consumption *within* the
        reservation; closing it refunds whatever the scope never spent.  The
        scope shares this accountant's ledger lock.
        """
        with self.lock:
            reservation = self.charge(label, epsilon)
            child_durable = None
            if self.durable is not None:
                # Journal the scope (session allotment) itself; failure
                # refunds the reservation and refuses the open, mirroring
                # the fail-closed charge path.
                try:
                    child_durable = self.durable.record_scope_open(
                        label, float(epsilon), reservation
                    )
                except Exception as exc:
                    self.rollback(reservation)
                    raise PrivacyBudgetError(
                        f"Scope {label!r} refused: durable scope journal "
                        f"failed ({exc})"
                    ) from exc
            if self.audit is not None:
                self.audit.emit("scope_open", scope=label, epsilon=float(epsilon))
            return ScopedAccountant(
                total_epsilon=float(epsilon),
                lock=self.lock,
                audit=self.audit,
                durable=child_durable,
                parent=self,
                label=label,
                reservation=reservation,
            )

    @classmethod
    def recover(cls, path: str, audit: Optional[object] = None) -> "PrivacyAccountant":
        """Rebuild an accountant from a durable ledger store on boot.

        The returned accountant carries every journalled operation —
        including the reservations of scopes that were still open at the
        crash — and keeps journalling to the same store, so a relaunched
        server refuses queries against budget it already spent.  Callers
        that also need the recovered scopes themselves (the engine, to
        rebuild client sessions) should use
        :func:`repro.engine.durability.recover_accountant` directly.

        The import is deferred: accounting sits below the engine layer, and
        only this boot-time convenience reaches up into it.
        """
        from ..engine.durability.ledger_store import recover_accountant

        _, state = recover_accountant(path, audit=audit)
        return state.accountant

    @staticmethod
    def _spent_with(operations: List[BudgetedOperation]) -> float:
        """Composition cost of a list of operations.

        Sequential operations (no partition) always add up.  Partitioned
        operations are grouped greedily: operations whose partitions overlap
        add up, disjoint ones take the maximum.  The computation is
        conservative (never underestimates the true composition cost).
        """
        sequential = sum(op.epsilon for op in operations if op.partition is None)
        partitioned = [op for op in operations if op.partition is not None]
        # Group partitioned operations into overlap classes.
        groups: List[Tuple[Set, float]] = []
        for op in partitioned:
            merged_keys: Set = set(op.partition)
            merged_cost = op.epsilon
            remaining_groups: List[Tuple[Set, float]] = []
            for keys, cost in groups:
                if keys & merged_keys:
                    merged_keys |= keys
                    merged_cost += cost
                else:
                    remaining_groups.append((keys, cost))
            remaining_groups.append((merged_keys, merged_cost))
            groups = remaining_groups
        parallel = max((cost for _, cost in groups), default=0.0)
        return sequential + parallel


@dataclass
class ScopedAccountant(PrivacyAccountant):
    """A session-scoped accountant living inside a parent reservation.

    Created by :meth:`PrivacyAccountant.open_scope`.  Charges debit only the
    scope (the parent was already debited the full reservation up front), so a
    runaway session can never spend more than its allotment no matter what the
    rest of the system does.  :meth:`close` shrinks the parent's reservation to
    what was actually spent and refuses further charges.
    """

    parent: Optional[PrivacyAccountant] = None
    label: str = ""
    closed: bool = False
    reservation: Optional[BudgetedOperation] = None

    def close(self) -> float:
        """Close the scope and refund unspent budget to the parent.

        Returns the refunded amount.  The parent's reservation operation is
        replaced by one recording the scope's actual spend (or dropped
        entirely when nothing was spent).
        """
        with self.lock:
            if self.closed:
                return 0.0
            self.closed = True
            refund = self.remaining()
            actually_spent = self.spent()
            if self.parent is not None and refund > 0:
                for index, operation in enumerate(self.parent.operations):
                    if operation is self.reservation:
                        if actually_spent > 0:
                            self.parent.operations[index] = BudgetedOperation(
                                label=self.label, epsilon=actually_spent, partition=None
                            )
                        else:
                            del self.parent.operations[index]
                        break
            refunded = max(refund, 0.0)
            if self.durable is not None:
                self.durable.record_scope_close(
                    self.parent.durable if self.parent is not None else None,
                    self.reservation,
                    self.label,
                    actually_spent,
                    refund,
                )
            if self.audit is not None:
                self.audit.emit(
                    "scope_close",
                    scope=self.label,
                    spent=actually_spent,
                    refunded=refunded,
                )
            return refunded


def sequential_composition(epsilons: Sequence[float]) -> float:
    """Budget of running mechanisms with the given budgets on the same data."""
    if any(eps <= 0 for eps in epsilons):
        raise PrivacyBudgetError("All epsilons must be positive")
    return float(sum(epsilons))


def parallel_composition(epsilons: Sequence[float]) -> float:
    """Budget of running mechanisms on disjoint parts of the data."""
    if any(eps <= 0 for eps in epsilons):
        raise PrivacyBudgetError("All epsilons must be positive")
    return float(max(epsilons, default=0.0))
