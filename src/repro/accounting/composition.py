"""Privacy-budget accounting: sequential and parallel composition.

The Section 5 strategies rely on two composition facts:

* **Sequential composition** — running mechanisms with budgets ε₁, …, ε_m on
  the same data costs ε₁ + … + ε_m (used by DAWA's two stages and by the
  G^θ_{k^d} strategy that splits the budget across dimensions);
* **Parallel composition** — mechanisms operating on *disjoint* parts of the
  data (disjoint groups of policy edges in the transformed domain) each enjoy
  the full budget (used by every per-line / per-group strategy).

:class:`PrivacyAccountant` is a small bookkeeping helper that the experiment
harness and the planner use to make the budget arithmetic explicit and
testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..exceptions import PrivacyBudgetError


@dataclass(frozen=True)
class BudgetedOperation:
    """One charged operation: a label, a budget, and the data partition it touched."""

    label: str
    epsilon: float
    partition: Optional[frozenset] = None


@dataclass
class PrivacyAccountant:
    """Track budget consumption under sequential and parallel composition.

    Parameters
    ----------
    total_epsilon:
        The overall budget that must not be exceeded.

    Notes
    -----
    Operations charged with a ``partition`` (any hashable collection of keys,
    e.g. edge-group identifiers) compose in parallel with other operations
    whose partitions are disjoint; operations without a partition compose
    sequentially with everything.
    """

    total_epsilon: float
    operations: List[BudgetedOperation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise PrivacyBudgetError(
                f"total_epsilon must be positive, got {self.total_epsilon}"
            )

    def charge(
        self,
        label: str,
        epsilon: float,
        partition: Optional[Sequence] = None,
    ) -> None:
        """Charge ``epsilon`` for an operation, optionally over a data partition."""
        if epsilon <= 0:
            raise PrivacyBudgetError(f"Charged epsilon must be positive, got {epsilon}")
        frozen = None if partition is None else frozenset(partition)
        operation = BudgetedOperation(label=label, epsilon=float(epsilon), partition=frozen)
        projected = self._spent_with(self.operations + [operation])
        if projected > self.total_epsilon * (1 + 1e-12):
            raise PrivacyBudgetError(
                f"Charging {epsilon} for {label!r} would exceed the total budget "
                f"{self.total_epsilon} (already spent {self.spent():.6g})"
            )
        self.operations.append(operation)

    def spent(self) -> float:
        """Total budget consumed so far under the composition rules."""
        return self._spent_with(self.operations)

    def remaining(self) -> float:
        """Budget still available."""
        return self.total_epsilon - self.spent()

    @staticmethod
    def _spent_with(operations: List[BudgetedOperation]) -> float:
        """Composition cost of a list of operations.

        Sequential operations (no partition) always add up.  Partitioned
        operations are grouped greedily: operations whose partitions overlap
        add up, disjoint ones take the maximum.  The computation is
        conservative (never underestimates the true composition cost).
        """
        sequential = sum(op.epsilon for op in operations if op.partition is None)
        partitioned = [op for op in operations if op.partition is not None]
        # Group partitioned operations into overlap classes.
        groups: List[Tuple[Set, float]] = []
        for op in partitioned:
            merged_keys: Set = set(op.partition)
            merged_cost = op.epsilon
            remaining_groups: List[Tuple[Set, float]] = []
            for keys, cost in groups:
                if keys & merged_keys:
                    merged_keys |= keys
                    merged_cost += cost
                else:
                    remaining_groups.append((keys, cost))
            remaining_groups.append((merged_keys, merged_cost))
            groups = remaining_groups
        parallel = max((cost for _, cost in groups), default=0.0)
        return sequential + parallel


def sequential_composition(epsilons: Sequence[float]) -> float:
    """Budget of running mechanisms with the given budgets on the same data."""
    if any(eps <= 0 for eps in epsilons):
        raise PrivacyBudgetError("All epsilons must be positive")
    return float(sum(epsilons))


def parallel_composition(epsilons: Sequence[float]) -> float:
    """Budget of running mechanisms on disjoint parts of the data."""
    if any(eps <= 0 for eps in epsilons):
        raise PrivacyBudgetError("All epsilons must be positive")
    return float(max(epsilons, default=0.0))
