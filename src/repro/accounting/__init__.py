"""Privacy-budget accounting (sequential and parallel composition)."""

from .composition import (
    BudgetedOperation,
    PrivacyAccountant,
    ScopedAccountant,
    parallel_composition,
    sequential_composition,
)

__all__ = [
    "BudgetedOperation",
    "PrivacyAccountant",
    "ScopedAccountant",
    "parallel_composition",
    "sequential_composition",
]
