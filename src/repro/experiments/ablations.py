"""Ablation studies for the design choices called out in DESIGN.md.

The paper itself does not publish ablations; these experiments probe the
levers of the reproduction so that downstream users understand what each
component buys:

* :func:`ablate_consistency` — value of the monotone-consistency step
  (Section 5.4.2) at several sparsity levels;
* :func:`ablate_dawa_budget_split` — sensitivity of DAWA to the fraction of
  budget spent on partitioning;
* :func:`ablate_spanner_stretch` — cost of the ε/ℓ budget split (Lemma 4.5)
  as θ grows;
* :func:`ablate_grid_strategy` — Haar versus identity per-slab strategies for
  the 2-D grid policy (the "Transformed + Privelet" versus
  "Transformed + Laplace" choice of Section 5.2.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..blowfish.algorithms import (
    NamedAlgorithm,
    blowfish_transformed_consistent,
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
)
from ..blowfish.matrix_mechanism import PolicyMatrixMechanism
from ..blowfish.strategies import grid_slab_strategy
from ..core.database import Database
from ..core.domain import Domain
from ..core.range_queries import random_range_queries_workload
from ..core.rng import RandomState, ensure_rng
from ..core.workload import identity_workload
from ..mechanisms.dawa import DawaMechanism
from ..mechanisms.strategies import haar_strategy, identity_strategy
from ..policy.builders import grid_policy, line_policy, threshold_policy
from ..policy.spanner import approximate_with_line_spanner
from .harness import ComparisonResult, run_comparison


def _sparse_database(domain: Domain, zero_fraction: float, rng) -> Database:
    counts = np.zeros(domain.size)
    support_size = max(1, int(round(domain.size * (1.0 - zero_fraction))))
    support = rng.choice(domain.size, size=support_size, replace=False)
    counts[support] = rng.integers(1, 200, size=support_size)
    return Database(domain, counts, name=f"zero={zero_fraction:.2f}")


def ablate_consistency(
    epsilon: float = 0.1,
    domain_size: int = 1024,
    zero_fractions: Sequence[float] = (0.2, 0.6, 0.95),
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """Hist error with and without the monotone-consistency post-processing."""
    rng = ensure_rng(random_state)
    domain = Domain((domain_size,))
    policy = line_policy(domain)
    workload = identity_workload(domain)
    results: List[ComparisonResult] = []
    for zero_fraction in zero_fractions:
        database = _sparse_database(domain, zero_fraction, rng)
        algorithms = [
            blowfish_transformed_laplace(policy, epsilon),
            blowfish_transformed_consistent(policy, epsilon),
        ]
        results.extend(
            run_comparison(
                algorithms,
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="Hist",
                extra={"zero_fraction": zero_fraction},
            )
        )
    return results


def ablate_dawa_budget_split(
    epsilon: float = 0.1,
    domain_size: int = 1024,
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75),
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """DAWA error as a function of the partition-budget fraction ρ."""
    rng = ensure_rng(random_state)
    domain = Domain((domain_size,))
    database = _sparse_database(domain, 0.9, rng)
    workload = identity_workload(domain)
    results: List[ComparisonResult] = []
    for fraction in fractions:
        algorithm = NamedAlgorithm(
            name=f"DAWA(rho={fraction})",
            mechanism=DawaMechanism(
                epsilon, (domain_size,), partition_budget_fraction=fraction
            ),
            data_dependent=True,
        )
        results.extend(
            run_comparison(
                [algorithm],
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="Hist",
                extra={"rho": fraction},
            )
        )
    return results


def ablate_spanner_stretch(
    epsilon: float = 0.1,
    domain_size: int = 1024,
    thetas: Sequence[int] = (1, 2, 4, 8, 16),
    num_queries: int = 400,
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """Range-query error of the spanner route as θ (and hence the stretch penalty) grows."""
    rng = ensure_rng(random_state)
    domain = Domain((domain_size,))
    database = _sparse_database(domain, 0.8, rng)
    workload = random_range_queries_workload(domain, num_queries, rng)
    results: List[ComparisonResult] = []
    for theta in thetas:
        policy = threshold_policy(domain, theta)
        if theta == 1:
            algorithm = blowfish_transformed_laplace(policy, epsilon)
            stretch = 1
        else:
            spanner = approximate_with_line_spanner(policy, theta)
            algorithm = blowfish_transformed_laplace(policy, epsilon, spanner=spanner)
            stretch = spanner.stretch
        algorithm = NamedAlgorithm(
            name=f"theta={theta}", mechanism=algorithm.mechanism, data_dependent=False
        )
        results.extend(
            run_comparison(
                [algorithm],
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="1D-Range",
                extra={"theta": theta, "stretch": stretch},
            )
        )
    return results


def ablate_grid_strategy(
    epsilon: float = 0.1,
    grid_size: int = 24,
    num_queries: int = 300,
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """Per-slab Haar versus per-slab identity strategies on the grid policy."""
    rng = ensure_rng(random_state)
    domain = Domain((grid_size, grid_size))
    database = _sparse_database(domain, 0.7, rng)
    policy = grid_policy(domain)
    workload = random_range_queries_workload(domain, num_queries, rng)
    haar = NamedAlgorithm(
        name="slab-haar",
        mechanism=PolicyMatrixMechanism(
            policy, epsilon, strategy=lambda t: grid_slab_strategy(t, haar_strategy)
        ),
        data_dependent=False,
    )
    identity = NamedAlgorithm(
        name="slab-identity",
        mechanism=PolicyMatrixMechanism(
            policy, epsilon, strategy=lambda t: grid_slab_strategy(t, identity_strategy)
        ),
        data_dependent=False,
    )
    return run_comparison(
        [haar, identity],
        workload,
        database,
        epsilon=epsilon,
        trials=trials,
        random_state=rng,
        workload_label="2D-Range",
        extra={"grid_size": grid_size},
    )
