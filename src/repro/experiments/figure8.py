"""Runners for the paper's main evaluation (Figures 8 and 9, Section 6).

Figures 8 and 9 share the same four experiments and differ only in the privacy
budget (ε ∈ {0.01, 0.1} for Figure 8 and ε ∈ {0.001, 1} for Figure 9):

* **Hist** — the identity workload on datasets A–G under ``G^1_k``
  (panels b/f), comparing Laplace, DAWA, Transformed+Laplace,
  Transformed+ConsistentEst and Trans+Dawa+Cons;
* **1D-Range** — random range queries on datasets A–G under ``G^1_k``
  (panels c/g), comparing Privelet, DAWA and the three Blowfish variants;
* **1D-Range under G^4_k** — dataset D aggregated to domain sizes
  512–4096 (panels d/h), comparing Privelet, DAWA, Transformed+Laplace and
  Trans+Dawa through the ``H^4_k`` spanner (budget ε/3);
* **2D-Range** — random 2-D range queries on the Twitter grids under
  ``G^1_{k²}`` (panels a/e), comparing Privelet, DAWA and
  Transformed+Privelet.

The paper uses 10 000 random range queries and 5 trials; the runners default
to smaller workloads so the benchmark suite stays fast, and every knob is a
parameter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..blowfish.algorithms import (
    NamedAlgorithm,
    blowfish_transformed_consistent,
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
    blowfish_transformed_privelet_grid,
    dp_dawa_baseline,
    dp_laplace_baseline,
    dp_privelet_baseline,
)
from ..core.database import Database
from ..core.rng import RandomState, ensure_rng
from ..core.workload import identity_workload
from ..core.range_queries import random_range_queries_workload
from ..data.catalog import ONE_DIMENSIONAL_DATASETS, TWO_DIMENSIONAL_DATASETS, load_dataset
from ..policy.builders import grid_policy, line_policy, threshold_policy
from ..policy.spanner import approximate_with_line_spanner
from .harness import ComparisonResult, run_comparison

#: Privacy budgets of Figure 8 (main text) and Figure 9 (appendix).
FIGURE8_EPSILONS = (0.01, 0.1)
FIGURE9_EPSILONS = (0.001, 1.0)


def hist_algorithms(policy, epsilon: float, domain_size: int) -> List[NamedAlgorithm]:
    """The five algorithms of the Hist panels (Figure 8b/f)."""
    return [
        dp_laplace_baseline(epsilon),
        dp_dawa_baseline(epsilon, (domain_size,)),
        blowfish_transformed_laplace(policy, epsilon),
        blowfish_transformed_consistent(policy, epsilon),
        blowfish_transformed_dawa(policy, epsilon, consistency=True),
    ]


def range1d_algorithms(policy, epsilon: float, domain_size: int) -> List[NamedAlgorithm]:
    """The five algorithms of the 1D-Range panels (Figure 8c/g)."""
    return [
        dp_privelet_baseline(epsilon, (domain_size,)),
        dp_dawa_baseline(epsilon, (domain_size,)),
        blowfish_transformed_laplace(policy, epsilon),
        blowfish_transformed_consistent(policy, epsilon),
        blowfish_transformed_dawa(policy, epsilon, consistency=True),
    ]


def range1d_theta_algorithms(
    policy, epsilon: float, domain_size: int, theta: int
) -> List[NamedAlgorithm]:
    """The four algorithms of the G^θ_k panels (Figure 8d/h)."""
    spanner = approximate_with_line_spanner(policy, theta)
    return [
        dp_privelet_baseline(epsilon, (domain_size,)),
        dp_dawa_baseline(epsilon, (domain_size,)),
        blowfish_transformed_laplace(policy, epsilon, spanner=spanner),
        blowfish_transformed_dawa(policy, epsilon, spanner=spanner, consistency=False),
    ]


def range2d_algorithms(policy, epsilon: float, shape) -> List[NamedAlgorithm]:
    """The three algorithms of the 2D-Range panels (Figure 8a/e)."""
    return [
        dp_privelet_baseline(epsilon, shape),
        dp_dawa_baseline(epsilon, shape),
        blowfish_transformed_privelet_grid(policy, epsilon),
    ]


# ---------------------------------------------------------------------------
# Experiment runners.
# ---------------------------------------------------------------------------
def run_hist_experiment(
    epsilon: float,
    datasets: Sequence[str] = ONE_DIMENSIONAL_DATASETS,
    trials: int = 3,
    domain_size: Optional[int] = None,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """Hist workload under ``G^1_k`` on the 1-D datasets (Figure 8b/f, 9b/f)."""
    rng = ensure_rng(random_state)
    results: List[ComparisonResult] = []
    for name in datasets:
        database = load_dataset(name, random_state=rng, domain_size=domain_size)
        policy = line_policy(database.domain)
        workload = identity_workload(database.domain)
        algorithms = hist_algorithms(policy, epsilon, database.domain.size)
        results.extend(
            run_comparison(
                algorithms,
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="Hist",
                extra={"policy": policy.name},
            )
        )
    return results


def run_range1d_experiment(
    epsilon: float,
    datasets: Sequence[str] = ONE_DIMENSIONAL_DATASETS,
    num_queries: int = 1000,
    trials: int = 3,
    domain_size: Optional[int] = None,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """1D-Range workload under ``G^1_k`` on the 1-D datasets (Figure 8c/g, 9c/g)."""
    rng = ensure_rng(random_state)
    results: List[ComparisonResult] = []
    for name in datasets:
        database = load_dataset(name, random_state=rng, domain_size=domain_size)
        policy = line_policy(database.domain)
        workload = random_range_queries_workload(database.domain, num_queries, rng)
        algorithms = range1d_algorithms(policy, epsilon, database.domain.size)
        results.extend(
            run_comparison(
                algorithms,
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="1D-Range",
                extra={"policy": policy.name},
            )
        )
    return results


def run_range1d_theta_experiment(
    epsilon: float,
    theta: int = 4,
    dataset: str = "D",
    domain_sizes: Sequence[int] = (512, 1024, 2048, 4096),
    num_queries: int = 1000,
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """1D-Range under ``G^θ_k`` for varying domain sizes (Figure 8d/h, 9d/h)."""
    rng = ensure_rng(random_state)
    results: List[ComparisonResult] = []
    for size in domain_sizes:
        database = load_dataset(dataset, random_state=rng, domain_size=size)
        database = database.rename(str(size))
        policy = threshold_policy(database.domain, theta)
        workload = random_range_queries_workload(database.domain, num_queries, rng)
        algorithms = range1d_theta_algorithms(policy, epsilon, size, theta)
        results.extend(
            run_comparison(
                algorithms,
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="1D-Range",
                extra={"policy": policy.name, "domain_size": size},
            )
        )
    return results


def run_range2d_experiment(
    epsilon: float,
    datasets: Sequence[str] = TWO_DIMENSIONAL_DATASETS,
    num_queries: int = 500,
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """2D-Range workload under ``G^1_{k²}`` on the Twitter grids (Figure 8a/e, 9a/e)."""
    rng = ensure_rng(random_state)
    results: List[ComparisonResult] = []
    for name in datasets:
        database = load_dataset(name, random_state=rng)
        policy = grid_policy(database.domain)
        workload = random_range_queries_workload(database.domain, num_queries, rng)
        algorithms = range2d_algorithms(policy, epsilon, database.domain.shape)
        results.extend(
            run_comparison(
                algorithms,
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="2D-Range",
                extra={"policy": policy.name},
            )
        )
    return results


def run_all_panels(
    epsilon: float,
    trials: int = 3,
    num_queries: int = 500,
    random_state: RandomState = 0,
    datasets_1d: Sequence[str] = ("B", "D", "F"),
    datasets_2d: Sequence[str] = ("T25", "T50"),
    theta_domain_sizes: Sequence[int] = (512, 1024),
) -> Dict[str, List[ComparisonResult]]:
    """Run a reduced version of every Figure 8/9 panel for one ε.

    The defaults keep the total runtime to a couple of minutes; the individual
    runners accept the paper's full parameters when a complete reproduction is
    desired.
    """
    return {
        "2D-Range": run_range2d_experiment(
            epsilon, datasets=datasets_2d, num_queries=num_queries, trials=trials,
            random_state=random_state,
        ),
        "Hist": run_hist_experiment(
            epsilon, datasets=datasets_1d, trials=trials, random_state=random_state
        ),
        "1D-Range": run_range1d_experiment(
            epsilon, datasets=datasets_1d, num_queries=num_queries, trials=trials,
            random_state=random_state,
        ),
        "1D-Range-theta": run_range1d_theta_experiment(
            epsilon, domain_sizes=theta_domain_sizes, num_queries=num_queries,
            trials=trials, random_state=random_state,
        ),
    }
