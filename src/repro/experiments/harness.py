"""Experiment harness: run algorithm comparisons and collect per-query errors.

The harness mirrors the paper's protocol: every algorithm answers the same
workload on the same database several times (the paper averages 5 independent
runs) and the *average mean squared error per query* is reported.  Results are
plain dictionaries so the benchmark scripts can print them and the tests can
assert the qualitative claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.database import Database
from ..core.error import ErrorAccumulator
from ..core.rng import RandomState, ensure_rng, spawn_rngs
from ..core.workload import Workload
from ..blowfish.algorithms import NamedAlgorithm
from ..exceptions import ExperimentError


@dataclass(frozen=True)
class ComparisonResult:
    """Average per-query error of one algorithm on one experimental cell."""

    algorithm: str
    dataset: str
    epsilon: float
    workload: str
    mean_error: float
    std_error: float
    trials: int
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flatten into a plain dictionary (used by the reporting helpers)."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "epsilon": self.epsilon,
            "workload": self.workload,
            "mean_error": self.mean_error,
            "std_error": self.std_error,
            "trials": self.trials,
        }
        row.update(self.extra)
        return row


def run_comparison(
    algorithms: Sequence[NamedAlgorithm],
    workload: Workload,
    database: Database,
    epsilon: float,
    trials: int = 5,
    random_state: RandomState = None,
    workload_label: Optional[str] = None,
    extra: Optional[Dict[str, object]] = None,
) -> List[ComparisonResult]:
    """Run every algorithm ``trials`` times and return their average errors.

    Each (algorithm, trial) pair receives an independent, reproducible random
    stream derived from ``random_state``, so adding or removing an algorithm
    does not change the noise seen by the others.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be at least 1, got {trials}")
    if not algorithms:
        raise ExperimentError("At least one algorithm is required")
    rng = ensure_rng(random_state)
    true_answers = workload.answer(database)
    results: List[ComparisonResult] = []
    label = workload_label or workload.name or "workload"
    for algorithm in algorithms:
        streams = spawn_rngs(rng, trials)
        accumulator = ErrorAccumulator()
        for trial_rng in streams:
            noisy = algorithm.answer(workload, database, trial_rng)
            accumulator.add_trial(true_answers, noisy)
        results.append(
            ComparisonResult(
                algorithm=algorithm.name,
                dataset=database.name or "dataset",
                epsilon=float(epsilon),
                workload=label,
                mean_error=accumulator.mean,
                std_error=accumulator.std_error,
                trials=trials,
                extra=dict(extra or {}),
            )
        )
    return results


def results_by_algorithm(
    results: Iterable[ComparisonResult],
) -> Dict[str, List[ComparisonResult]]:
    """Group results by algorithm name."""
    grouped: Dict[str, List[ComparisonResult]] = {}
    for result in results:
        grouped.setdefault(result.algorithm, []).append(result)
    return grouped


def mean_error_of(
    results: Iterable[ComparisonResult], algorithm: str, dataset: Optional[str] = None
) -> float:
    """Average the mean error of one algorithm (optionally on one dataset)."""
    selected = [
        r.mean_error
        for r in results
        if r.algorithm == algorithm and (dataset is None or r.dataset == dataset)
    ]
    if not selected:
        raise ExperimentError(
            f"No results for algorithm {algorithm!r}"
            + (f" on dataset {dataset!r}" if dataset else "")
        )
    return float(np.mean(selected))
