"""Runner for the lower-bound study of Appendix A (Figure 10).

Figure 10 plots the Li–Miklau SVD lower bound (transferred to Blowfish via
Corollary A.2) against the domain size:

* **Figure 10a** — one-dimensional range queries ``R_k`` under ``G^θ_k`` for
  θ ∈ {1, 2, 4, 8, 16}, compared to unbounded differential privacy;
* **Figure 10b** — two-dimensional range queries ``R_{k²}`` under
  ``G^θ_{k²}`` for θ ∈ {1, 2, 3}, compared to both unbounded and bounded
  differential privacy.

Both use ε = 1 and δ = 0.001.  The runner returns the curves as rows that the
benchmark harness prints, plus helpers asserting the qualitative findings
(Blowfish bounds grow more slowly in 1-D; in 2-D only θ=1 beats unbounded DP
while every θ beats bounded DP).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..bounds.svd import LowerBoundPoint, curves_by_series, figure10_curves


def run_figure10a(
    domain_sizes: Sequence[int] = (32, 64, 96, 128),
    thetas: Sequence[int] = (1, 2, 4, 8, 16),
    epsilon: float = 1.0,
    delta: float = 0.001,
) -> List[LowerBoundPoint]:
    """Lower-bound curves for 1-D range queries (Figure 10a)."""
    return figure10_curves(
        dimension=1,
        domain_sizes=domain_sizes,
        thetas=thetas,
        epsilon=epsilon,
        delta=delta,
        include_unbounded=True,
        include_bounded=False,
    )


def run_figure10b(
    domain_sizes: Sequence[int] = (16, 36, 64, 81),
    thetas: Sequence[int] = (1, 2, 3),
    epsilon: float = 1.0,
    delta: float = 0.001,
) -> List[LowerBoundPoint]:
    """Lower-bound curves for 2-D range queries (Figure 10b)."""
    return figure10_curves(
        dimension=2,
        domain_sizes=domain_sizes,
        thetas=thetas,
        epsilon=epsilon,
        delta=delta,
        include_unbounded=True,
        include_bounded=True,
    )


def figure10_rows(points: Sequence[LowerBoundPoint]) -> List[Dict[str, object]]:
    """Pivot lower-bound points into one row per domain size (series as columns)."""
    grouped = curves_by_series(points)
    domain_sizes = sorted({point.domain_size for point in points})
    rows: List[Dict[str, object]] = []
    for size in domain_sizes:
        row: Dict[str, object] = {"domain_size": size}
        for series, series_points in grouped.items():
            match: Optional[float] = None
            for point in series_points:
                if point.domain_size == size:
                    match = point.bound
                    break
            row[series] = match if match is not None else ""
        rows.append(row)
    return rows


def qualitative_findings_1d(points: Sequence[LowerBoundPoint]) -> Dict[str, bool]:
    """Check the paper's reading of Figure 10a.

    * every Blowfish (θ) bound is below the unbounded-DP bound at the largest
      domain size, and
    * the unbounded-DP bound grows faster than the θ=1 bound (ratio of largest
      to smallest domain size is larger for unbounded DP).
    """
    grouped = curves_by_series(points)
    unbounded = grouped["unbounded DP"]
    largest = unbounded[-1].domain_size
    findings = {}
    unbounded_at_largest = unbounded[-1].bound
    findings["blowfish_below_unbounded_at_largest_domain"] = all(
        series_points[-1].bound <= unbounded_at_largest
        for series, series_points in grouped.items()
        if series.startswith("theta=") and series_points[-1].domain_size == largest
    )
    theta1 = grouped.get("theta=1", [])
    if len(theta1) >= 2 and len(unbounded) >= 2:
        unbounded_growth = unbounded[-1].bound / unbounded[0].bound
        theta1_growth = theta1[-1].bound / theta1[0].bound
        findings["unbounded_grows_faster_than_theta1"] = unbounded_growth > theta1_growth
    return findings


def qualitative_findings_2d(points: Sequence[LowerBoundPoint]) -> Dict[str, bool]:
    """Check the paper's reading of Figure 10b.

    * θ=1 is below unbounded DP at the largest domain size,
    * every θ is below bounded DP at the largest domain size.
    """
    grouped = curves_by_series(points)
    findings = {}
    unbounded = grouped["unbounded DP"][-1].bound
    bounded = grouped["bounded DP"][-1].bound
    theta_series = {
        series: series_points[-1].bound
        for series, series_points in grouped.items()
        if series.startswith("theta=")
    }
    findings["theta1_below_unbounded"] = theta_series.get("theta=1", float("inf")) <= unbounded
    findings["all_theta_below_bounded"] = all(
        value <= bounded for value in theta_series.values()
    )
    return findings
