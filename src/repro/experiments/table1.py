"""Runner for Table 1: the dataset catalogue statistics.

Prints, for every dataset of the paper, the published target statistics
(domain size, scale, % zero counts) next to the statistics of the generated
synthetic stand-in, so the fidelity of the substitution (DESIGN.md) is
auditable from the benchmark output.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.rng import RandomState
from ..data.catalog import table1_statistics


def table1_rows(random_state: RandomState = 0) -> List[Dict[str, object]]:
    """The Table 1 rows (target vs generated statistics)."""
    return table1_statistics(random_state=random_state)


def table1_fidelity(random_state: RandomState = 0) -> Dict[str, Dict[str, float]]:
    """Relative deviation of the generated statistics from the published targets."""
    fidelity: Dict[str, Dict[str, float]] = {}
    for row in table1_statistics(random_state=random_state):
        name = str(row["dataset"])
        target_scale = float(row["target_scale"])
        generated_scale = float(row["generated_scale"])
        target_zero = float(row["target_zero_percent"])
        generated_zero = float(row["generated_zero_percent"])
        fidelity[name] = {
            "scale_relative_error": abs(generated_scale - target_scale) / target_scale,
            "zero_percent_absolute_error": abs(generated_zero - target_zero),
        }
    return fidelity
