"""Runner for the error-bound summary (Figure 3) and its empirical validation.

Figure 3 is an analytic table; beyond reprinting it
(:func:`repro.bounds.analytic.figure3_table`), this runner validates the two
headline claims empirically on small instances:

* the per-query error of the Blowfish line mechanism for ``R_k`` under
  ``G^1_k`` is essentially independent of ``k`` (Θ(1/ε²), Theorem 5.2), while
  Privelet's grows polylogarithmically;
* the grid mechanism for ``R_{k²}`` under ``G^1_{k²}`` beats Privelet by a
  polylogarithmic factor (Theorem 5.4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..blowfish.algorithms import (
    blowfish_transformed_laplace,
    blowfish_transformed_privelet_grid,
    dp_privelet_baseline,
)
from ..bounds.analytic import Figure3Row, figure3_table
from ..core.database import Database
from ..core.domain import Domain
from ..core.range_queries import random_range_queries_workload
from ..core.rng import RandomState, ensure_rng
from ..policy.builders import grid_policy, line_policy
from .harness import ComparisonResult, run_comparison


def figure3_rows(
    epsilon: float = 1.0, k: int = 4096, d: int = 2, theta: int = 4
) -> List[Dict[str, object]]:
    """The Figure 3 table as printable rows."""
    rows: List[Dict[str, object]] = []
    for entry in figure3_table(epsilon=epsilon, k=k, d=d, theta=theta):
        rows.append(
            {
                "workload": entry.workload,
                "policy": entry.policy,
                "blowfish_bound": entry.blowfish_bound,
                "blowfish_value": entry.blowfish_value,
                "dp_bound": entry.dp_bound,
                "dp_value": entry.dp_value,
                "improvement": entry.improvement,
            }
        )
    return rows


def empirical_scaling_1d(
    epsilon: float = 0.1,
    domain_sizes: Sequence[int] = (128, 256, 512, 1024),
    num_queries: int = 400,
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """Measure how 1-D range-query error scales with the domain size.

    The Blowfish line mechanism should stay roughly flat while Privelet's
    error grows with ``log³ k`` — the empirical counterpart of the first row
    of Figure 3 (and the domain-size trend of Figure 8d).
    """
    rng = ensure_rng(random_state)
    results: List[ComparisonResult] = []
    for k in domain_sizes:
        domain = Domain((int(k),))
        counts = np.zeros(k)
        support = rng.integers(0, k, size=max(4, k // 16))
        counts[support] = rng.integers(1, 100, size=support.shape[0])
        database = Database(domain, counts, name=str(k))
        policy = line_policy(domain)
        workload = random_range_queries_workload(domain, num_queries, rng)
        algorithms = [
            dp_privelet_baseline(epsilon, (int(k),)),
            blowfish_transformed_laplace(policy, epsilon),
        ]
        results.extend(
            run_comparison(
                algorithms,
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="1D-Range",
                extra={"domain_size": int(k)},
            )
        )
    return results


def empirical_scaling_2d(
    epsilon: float = 0.1,
    grid_sizes: Sequence[int] = (16, 24, 32),
    num_queries: int = 300,
    trials: int = 3,
    random_state: RandomState = 0,
) -> List[ComparisonResult]:
    """Measure 2-D range-query error versus grid size (Theorem 5.4 vs Privelet)."""
    rng = ensure_rng(random_state)
    results: List[ComparisonResult] = []
    for k in grid_sizes:
        domain = Domain((int(k), int(k)))
        counts = np.zeros(domain.size)
        support = rng.integers(0, domain.size, size=max(8, domain.size // 12))
        counts[support] = rng.integers(1, 50, size=support.shape[0])
        database = Database(domain, counts, name=f"{k}x{k}")
        policy = grid_policy(domain)
        workload = random_range_queries_workload(domain, num_queries, rng)
        algorithms = [
            dp_privelet_baseline(epsilon, (int(k), int(k))),
            blowfish_transformed_privelet_grid(policy, epsilon),
        ]
        results.extend(
            run_comparison(
                algorithms,
                workload,
                database,
                epsilon=epsilon,
                trials=trials,
                random_state=rng,
                workload_label="2D-Range",
                extra={"grid_size": int(k)},
            )
        )
    return results
