"""Plain-text reporting of experiment results.

The paper's figures are log-scale bar charts; the reproduction prints the same
series as aligned text tables (one row per dataset / domain size, one column
per algorithm), which is what the benchmark harness emits and what
EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .harness import ComparisonResult


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Format a list of dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(cell[i]) for cell in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(width) for col, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell[i].ljust(widths[i]) for i in range(len(columns)))
        for cell in rendered
    ]
    return "\n".join([header, separator, *body])


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def pivot_results(
    results: Iterable[ComparisonResult],
    row_key: str = "dataset",
    column_key: str = "algorithm",
) -> List[Dict[str, object]]:
    """Pivot comparison results into one row per ``row_key`` value.

    The default layout (datasets as rows, algorithms as columns) matches the
    bar groups of Figures 8 and 9.
    """
    results = list(results)
    row_values: List[object] = []
    column_values: List[object] = []
    for result in results:
        row_value = getattr(result, row_key) if hasattr(result, row_key) else result.extra.get(row_key)
        column_value = (
            getattr(result, column_key)
            if hasattr(result, column_key)
            else result.extra.get(column_key)
        )
        if row_value not in row_values:
            row_values.append(row_value)
        if column_value not in column_values:
            column_values.append(column_value)

    table: List[Dict[str, object]] = []
    for row_value in row_values:
        row: Dict[str, object] = {row_key: row_value}
        for column_value in column_values:
            matches = [
                r.mean_error
                for r in results
                if (getattr(r, row_key, r.extra.get(row_key)) == row_value)
                and (getattr(r, column_key, r.extra.get(column_key)) == column_value)
            ]
            row[str(column_value)] = matches[0] if matches else ""
        table.append(row)
    return table


def render_results(
    results: Iterable[ComparisonResult],
    title: str = "",
    row_key: str = "dataset",
) -> str:
    """Render comparison results as a titled text table."""
    table = pivot_results(results, row_key=row_key)
    body = format_table(table)
    return f"{title}\n{body}" if title else body
