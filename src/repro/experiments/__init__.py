"""Experiment runners that regenerate every table and figure of the paper."""

from .ablations import (
    ablate_consistency,
    ablate_dawa_budget_split,
    ablate_grid_strategy,
    ablate_spanner_stretch,
)
from .figure3 import empirical_scaling_1d, empirical_scaling_2d, figure3_rows
from .figure8 import (
    FIGURE8_EPSILONS,
    FIGURE9_EPSILONS,
    hist_algorithms,
    range1d_algorithms,
    range1d_theta_algorithms,
    range2d_algorithms,
    run_all_panels,
    run_hist_experiment,
    run_range1d_experiment,
    run_range1d_theta_experiment,
    run_range2d_experiment,
)
from .figure10 import (
    figure10_rows,
    qualitative_findings_1d,
    qualitative_findings_2d,
    run_figure10a,
    run_figure10b,
)
from .harness import ComparisonResult, mean_error_of, results_by_algorithm, run_comparison
from .reporting import format_table, pivot_results, render_results
from .table1 import table1_fidelity, table1_rows

__all__ = [
    "ComparisonResult",
    "FIGURE8_EPSILONS",
    "FIGURE9_EPSILONS",
    "ablate_consistency",
    "ablate_dawa_budget_split",
    "ablate_grid_strategy",
    "ablate_spanner_stretch",
    "empirical_scaling_1d",
    "empirical_scaling_2d",
    "figure10_rows",
    "figure3_rows",
    "format_table",
    "hist_algorithms",
    "mean_error_of",
    "pivot_results",
    "qualitative_findings_1d",
    "qualitative_findings_2d",
    "range1d_algorithms",
    "range1d_theta_algorithms",
    "range2d_algorithms",
    "render_results",
    "results_by_algorithm",
    "run_all_panels",
    "run_comparison",
    "run_figure10a",
    "run_figure10b",
    "run_hist_experiment",
    "run_range1d_experiment",
    "run_range1d_theta_experiment",
    "run_range2d_experiment",
    "table1_fidelity",
    "table1_rows",
]
