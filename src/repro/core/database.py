"""Databases represented as histogram vectors.

The paper represents a database ``D`` over a domain ``T`` of size ``k`` as a
vector ``x`` in ``R^k`` whose ``i``-th entry is the number of records taking
the ``i``-th domain value (Section 2).  :class:`Database` wraps that vector
together with its :class:`~repro.core.domain.Domain` and provides the handful
of operations the algorithms and experiments need: construction from raw
records, aggregation to coarser domains, sparsity statistics, and prefix-sum
views used by the tree transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import DataError, DomainError
from .domain import Domain


@dataclass(frozen=True)
class Database:
    """A histogram-vector database over a finite domain.

    Parameters
    ----------
    domain:
        The domain the histogram is defined over.
    counts:
        A length ``domain.size`` vector of non-negative counts, in the flat
        (row-major) cell order of the domain.
    name:
        Optional human-readable name used by the experiment harness.
    """

    domain: Domain
    counts: np.ndarray
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.float64)
        if counts.ndim != 1:
            counts = counts.reshape(-1)
        if counts.shape[0] != self.domain.size:
            raise DataError(
                f"Histogram has {counts.shape[0]} entries but the domain has "
                f"{self.domain.size} cells"
            )
        if np.any(counts < 0):
            raise DataError("Histogram counts must be non-negative")
        if not np.all(np.isfinite(counts)):
            raise DataError("Histogram counts must be finite")
        object.__setattr__(self, "counts", counts)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_records(
        cls,
        domain: Domain,
        records: Iterable[Sequence[int]],
        name: str = "",
    ) -> "Database":
        """Build a database by counting raw ``records`` (cells of the domain)."""
        counts = np.zeros(domain.size, dtype=np.float64)
        for record in records:
            if np.isscalar(record) or isinstance(record, (int, np.integer)):
                cell = (int(record),)
            else:
                cell = tuple(int(c) for c in record)
            counts[domain.index_of(cell)] += 1.0
        return cls(domain=domain, counts=counts, name=name)

    @classmethod
    def from_histogram(
        cls, histogram: np.ndarray, name: str = ""
    ) -> "Database":
        """Build a database from a (possibly multi-dimensional) histogram array."""
        histogram = np.asarray(histogram, dtype=np.float64)
        domain = Domain(histogram.shape)
        return cls(domain=domain, counts=histogram.reshape(-1), name=name)

    # ------------------------------------------------------------- properties
    @property
    def vector(self) -> np.ndarray:
        """The histogram vector ``x`` (alias of :attr:`counts`)."""
        return self.counts

    @property
    def scale(self) -> float:
        """Total number of records ``n = sum_i x[i]`` (the paper's "scale")."""
        return float(self.counts.sum())

    @property
    def zero_fraction(self) -> float:
        """Fraction of domain cells with a zero count (Table 1's "% zero counts")."""
        return float(np.mean(self.counts == 0))

    @property
    def nonzero_cells(self) -> int:
        """Number of domain cells with a strictly positive count."""
        return int(np.count_nonzero(self.counts))

    def as_array(self) -> np.ndarray:
        """Return the histogram reshaped to the domain's multi-dimensional shape."""
        return self.counts.reshape(self.domain.shape)

    # ------------------------------------------------------------- operations
    def rename(self, name: str) -> "Database":
        """Return a copy of this database with a different name."""
        return Database(domain=self.domain, counts=self.counts.copy(), name=name)

    def aggregate(self, factor: int) -> "Database":
        """Aggregate the histogram onto a domain coarsened by ``factor``.

        Each new cell's count is the sum of the ``factor^d`` original cells it
        covers.  Mirrors the paper's aggregation of dataset D to domain sizes
        2048, 1024 and 512 and of the Twitter data to 50x50 and 25x25 grids.
        """
        coarse = self.domain.coarsen(factor)
        array = self.as_array()
        for axis in range(self.domain.ndim):
            extent = array.shape[axis]
            new_shape = (
                array.shape[:axis]
                + (extent // factor, factor)
                + array.shape[axis + 1 :]
            )
            array = array.reshape(new_shape).sum(axis=axis + 1)
        return Database(domain=coarse, counts=array.reshape(-1), name=self.name)

    def prefix_sums(self) -> np.ndarray:
        """Cumulative counts ``C_k x`` for a one-dimensional database.

        This is exactly the transformed database ``x_G`` of the line-graph
        policy (Example 4.1 / Algorithm 1 of the paper).
        """
        if self.domain.ndim != 1:
            raise DomainError("prefix_sums is only defined for one-dimensional domains")
        return np.cumsum(self.counts)

    def with_counts(self, counts: np.ndarray, name: str | None = None) -> "Database":
        """Return a database with the same domain but different counts."""
        return Database(
            domain=self.domain,
            counts=np.asarray(counts, dtype=np.float64),
            name=self.name if name is None else name,
        )

    # ----------------------------------------------------------------- dunder
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Database(domain={self.domain.shape}, scale={self.scale:.0f}, "
            f"zero_fraction={self.zero_fraction:.2%}{label})"
        )
