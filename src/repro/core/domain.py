"""Domains of database records.

The paper works with a finite, totally indexed domain ``T = {v_1, ..., v_k}``.
One-dimensional domains are simply ``k`` cells; multi-dimensional domains are
Cartesian products ``[k_1] x ... x [k_d]`` whose cells are flattened in
row-major (C) order so that databases remain plain histogram vectors.

:class:`Domain` is the single source of truth for

* the number of cells (``size``),
* the mapping between multi-dimensional cell coordinates and flat indices,
* L1 (Manhattan) distances between cells, which define the distance-threshold
  policy graphs ``G^theta`` of Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from ..exceptions import DomainError


@dataclass(frozen=True)
class Domain:
    """A finite multi-dimensional domain of record values.

    Parameters
    ----------
    shape:
        Number of cells along each dimension.  A one-dimensional domain of
        size ``k`` is ``Domain((k,))``.

    Examples
    --------
    >>> dom = Domain((4, 4))
    >>> dom.size
    16
    >>> dom.index_of((1, 2))
    6
    >>> dom.cell_of(6)
    (1, 2)
    """

    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise DomainError("Domain shape must have at least one dimension")
        if any(int(k) <= 0 for k in self.shape):
            raise DomainError(f"All dimension sizes must be positive, got {self.shape}")
        object.__setattr__(self, "shape", tuple(int(k) for k in self.shape))

    # ------------------------------------------------------------------ basic
    @property
    def ndim(self) -> int:
        """Number of dimensions ``d``."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of cells ``k_1 * ... * k_d``."""
        return int(np.prod(self.shape))

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Iterate over cells in flat (row-major) order."""
        return iter(np.ndindex(*self.shape))

    # ------------------------------------------------------------ conversions
    def index_of(self, cell: Sequence[int]) -> int:
        """Return the flat index of a multi-dimensional ``cell``."""
        cell = tuple(int(c) for c in cell)
        if len(cell) != self.ndim:
            raise DomainError(
                f"Cell {cell} has {len(cell)} coordinates but the domain has "
                f"{self.ndim} dimensions"
            )
        for coordinate, extent in zip(cell, self.shape):
            if not 0 <= coordinate < extent:
                raise DomainError(f"Cell {cell} is outside the domain of shape {self.shape}")
        return int(np.ravel_multi_index(cell, self.shape))

    def cell_of(self, index: int) -> Tuple[int, ...]:
        """Return the multi-dimensional cell of a flat ``index``."""
        index = int(index)
        if not 0 <= index < self.size:
            raise DomainError(f"Index {index} is outside the domain of size {self.size}")
        return tuple(int(c) for c in np.unravel_index(index, self.shape))

    def all_cells(self) -> np.ndarray:
        """Return an ``(size, ndim)`` array of all cells in flat order."""
        grids = np.indices(self.shape).reshape(self.ndim, -1).T
        return grids.astype(np.int64)

    # --------------------------------------------------------------- geometry
    def l1_distance(self, cell_a: Sequence[int], cell_b: Sequence[int]) -> int:
        """Manhattan (L1) distance between two cells.

        This is the distance used by the distance-threshold policy graphs
        ``G^theta_{k^d}`` (Section 5.1 of the paper).
        """
        a = np.asarray(cell_a, dtype=np.int64)
        b = np.asarray(cell_b, dtype=np.int64)
        if a.shape != (self.ndim,) or b.shape != (self.ndim,):
            raise DomainError("Cells must have the same dimensionality as the domain")
        return int(np.abs(a - b).sum())

    def contains_cell(self, cell: Sequence[int]) -> bool:
        """Return ``True`` when ``cell`` lies inside the domain."""
        if len(cell) != self.ndim:
            return False
        return all(0 <= int(c) < extent for c, extent in zip(cell, self.shape))

    # ------------------------------------------------------------- refinement
    def coarsen(self, factor: int) -> "Domain":
        """Return a coarsened domain where each dimension shrinks by ``factor``.

        Used by the experiments that aggregate a dataset to smaller domain
        sizes (e.g. dataset D at 4096, 2048, 1024 and 512 cells).
        """
        if factor <= 0:
            raise DomainError(f"factor must be positive, got {factor}")
        new_shape = []
        for extent in self.shape:
            if extent % factor != 0:
                raise DomainError(
                    f"Dimension of size {extent} is not divisible by factor {factor}"
                )
            new_shape.append(extent // factor)
        return Domain(tuple(new_shape))

    # ----------------------------------------------------------------- dunder
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Domain(shape={self.shape})"


def line_domain(k: int) -> Domain:
    """Convenience constructor for a one-dimensional domain of size ``k``."""
    return Domain((k,))


def grid_domain(k: int, ndim: int = 2) -> Domain:
    """Convenience constructor for a ``k^ndim`` hyper-grid domain."""
    if ndim <= 0:
        raise DomainError(f"ndim must be positive, got {ndim}")
    return Domain((k,) * ndim)


def common_domain(domains: Iterable[Domain]) -> Domain:
    """Return the single domain shared by ``domains``.

    Raises
    ------
    DomainError
        If the iterable is empty or the domains differ.
    """
    domains = list(domains)
    if not domains:
        raise DomainError("At least one domain is required")
    first = domains[0]
    for other in domains[1:]:
        if other != first:
            raise DomainError(f"Domains differ: {first} vs {other}")
    return first
