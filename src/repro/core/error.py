"""Error metrics for private query answering.

The paper measures utility as the mean squared error of the noisy workload
answers (Definition 2.4), reported *per query* in the experiments of
Section 6.  This module provides:

* :func:`squared_error` / :func:`mean_squared_error` — error of one noisy
  answer vector against the truth;
* :class:`ErrorAccumulator` — running mean over repeated trials, with standard
  errors, as used by the experiment harness ("average mean square error over 5
  independent runs");
* analytic helpers such as :func:`laplace_error` implementing Theorem 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..exceptions import ExperimentError


def squared_error(true_answers: np.ndarray, noisy_answers: np.ndarray) -> float:
    """Total squared error ``sum_i (true_i - noisy_i)^2``."""
    true_answers = np.asarray(true_answers, dtype=np.float64).ravel()
    noisy_answers = np.asarray(noisy_answers, dtype=np.float64).ravel()
    if true_answers.shape != noisy_answers.shape:
        raise ExperimentError(
            f"Answer vectors have different shapes: {true_answers.shape} vs "
            f"{noisy_answers.shape}"
        )
    return float(np.sum((true_answers - noisy_answers) ** 2))


def mean_squared_error(true_answers: np.ndarray, noisy_answers: np.ndarray) -> float:
    """Per-query mean squared error (the quantity plotted in Figures 8 and 9)."""
    true_answers = np.asarray(true_answers, dtype=np.float64).ravel()
    if true_answers.size == 0:
        return 0.0
    return squared_error(true_answers, noisy_answers) / true_answers.size


def mean_absolute_error(true_answers: np.ndarray, noisy_answers: np.ndarray) -> float:
    """Per-query mean absolute error (secondary metric, not used by the paper)."""
    true_answers = np.asarray(true_answers, dtype=np.float64).ravel()
    noisy_answers = np.asarray(noisy_answers, dtype=np.float64).ravel()
    if true_answers.shape != noisy_answers.shape:
        raise ExperimentError("Answer vectors have different shapes")
    if true_answers.size == 0:
        return 0.0
    return float(np.mean(np.abs(true_answers - noisy_answers)))


def laplace_error(num_queries: int, sensitivity: float, epsilon: float) -> float:
    """Expected total squared error of the Laplace mechanism (Theorem 2.1).

    ``ERROR_L(W) = 2 q (Delta_W)^2 / epsilon^2``.
    """
    if epsilon <= 0:
        raise ExperimentError(f"epsilon must be positive, got {epsilon}")
    if num_queries < 0:
        raise ExperimentError(f"num_queries must be non-negative, got {num_queries}")
    return 2.0 * num_queries * (sensitivity**2) / (epsilon**2)


def laplace_error_per_query(sensitivity: float, epsilon: float) -> float:
    """Expected per-query squared error of the Laplace mechanism: ``2 Delta^2 / eps^2``."""
    return laplace_error(1, sensitivity, epsilon)


@dataclass
class ErrorAccumulator:
    """Running per-query mean-squared-error statistics over repeated trials.

    The experiment harness runs each mechanism several times (the paper uses 5
    independent runs) and reports the average per-query error; this class
    keeps the per-trial values so that standard errors can also be reported.
    """

    per_trial: List[float] = field(default_factory=list)

    def add_trial(self, true_answers: np.ndarray, noisy_answers: np.ndarray) -> float:
        """Record one trial and return its per-query mean squared error."""
        value = mean_squared_error(true_answers, noisy_answers)
        self.per_trial.append(value)
        return value

    def add_value(self, value: float) -> None:
        """Record a pre-computed per-query error value."""
        self.per_trial.append(float(value))

    @property
    def num_trials(self) -> int:
        """Number of recorded trials."""
        return len(self.per_trial)

    @property
    def mean(self) -> float:
        """Mean per-query squared error across trials."""
        if not self.per_trial:
            raise ExperimentError("No trials recorded")
        return float(np.mean(self.per_trial))

    @property
    def std_error(self) -> float:
        """Standard error of the mean across trials (0 for a single trial)."""
        if not self.per_trial:
            raise ExperimentError("No trials recorded")
        if len(self.per_trial) == 1:
            return 0.0
        return float(np.std(self.per_trial, ddof=1) / np.sqrt(len(self.per_trial)))

    def summary(self) -> Dict[str, float]:
        """Return ``{"mean": ..., "std_error": ..., "trials": ...}``."""
        return {
            "mean": self.mean,
            "std_error": self.std_error,
            "trials": float(self.num_trials),
        }
