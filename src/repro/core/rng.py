"""Randomness utilities.

Every stochastic component of the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  Funnelling all randomness
through :func:`ensure_rng` keeps experiments reproducible and keeps the tests
deterministic without any module-level global state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a fresh non-deterministic generator, an ``int`` seed for a
        deterministic generator, or an existing generator which is returned
        unchanged.

    Returns
    -------
    numpy.random.Generator
        A generator ready for sampling.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Split ``random_state`` into ``count`` independent generators.

    Useful when an experiment runs several mechanisms that should each see an
    independent, but reproducible, noise stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(random_state)
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
