"""Core data model: domains, databases, workloads, sensitivity and error metrics."""

from .database import Database
from .domain import Domain, common_domain, grid_domain, line_domain
from .error import (
    ErrorAccumulator,
    laplace_error,
    laplace_error_per_query,
    mean_absolute_error,
    mean_squared_error,
    squared_error,
)
from .range_queries import (
    RangeQuery,
    all_range_queries,
    all_range_queries_workload,
    prefix_range_queries_workload,
    random_range_queries,
    random_range_queries_workload,
    range_queries_workload,
)
from .rng import RandomState, ensure_rng, spawn_rngs
from .sensitivity import (
    bounded_sensitivity,
    per_edge_sensitivities,
    policy_sensitivity_from_incidence,
    unbounded_sensitivity,
    workload_sensitivity,
)
from .workload import (
    Workload,
    cumulative_workload,
    identity_workload,
    marginal_workload,
    stack_workloads,
    total_workload,
    workload_from_rows,
)

__all__ = [
    "Database",
    "Domain",
    "ErrorAccumulator",
    "RandomState",
    "RangeQuery",
    "Workload",
    "all_range_queries",
    "all_range_queries_workload",
    "bounded_sensitivity",
    "common_domain",
    "cumulative_workload",
    "ensure_rng",
    "grid_domain",
    "identity_workload",
    "laplace_error",
    "laplace_error_per_query",
    "line_domain",
    "marginal_workload",
    "mean_absolute_error",
    "mean_squared_error",
    "per_edge_sensitivities",
    "policy_sensitivity_from_incidence",
    "prefix_range_queries_workload",
    "random_range_queries",
    "random_range_queries_workload",
    "range_queries_workload",
    "spawn_rngs",
    "squared_error",
    "stack_workloads",
    "total_workload",
    "unbounded_sensitivity",
    "workload_from_rows",
    "workload_sensitivity",
]
