"""Workloads of linear queries.

A workload of ``q`` linear queries over a domain of size ``k`` is a
``q x k`` real matrix ``W``; its answer on a database ``x`` is ``W x``
(Section 2 of the paper).  :class:`Workload` wraps the matrix (stored as a
SciPy CSR matrix so that the large range-query workloads of the experiments
stay affordable), remembers the domain it refers to, and offers the named
constructors used throughout the paper:

* :func:`identity_workload` — the histogram workload ``I_k`` (Figure 1, left);
* :func:`cumulative_workload` — the prefix-sum workload ``C_k`` (Figure 1, right);
* :func:`total_workload` — the single query counting the database size ``n``;
* range-query workloads live in :mod:`repro.core.range_queries`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..exceptions import WorkloadError
from .database import Database
from .domain import Domain

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _as_csr(matrix: MatrixLike) -> sp.csr_matrix:
    """Convert any matrix-like object into a CSR matrix of floats."""
    if sp.issparse(matrix):
        return sp.csr_matrix(matrix, dtype=np.float64)
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise WorkloadError(f"Workload matrices must be 2-D, got {array.ndim}-D")
    return sp.csr_matrix(array)


@dataclass(frozen=True)
class Workload:
    """A workload ``W`` of linear queries over a :class:`Domain`.

    Parameters
    ----------
    domain:
        Domain whose cells index the columns of the matrix.
    matrix:
        A ``q x domain.size`` matrix; rows are linear queries.
    name:
        Optional human-readable name for reports.
    """

    domain: Domain
    matrix: sp.csr_matrix
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        matrix = _as_csr(self.matrix)
        if matrix.shape[1] != self.domain.size:
            raise WorkloadError(
                f"Workload has {matrix.shape[1]} columns but the domain has "
                f"{self.domain.size} cells"
            )
        object.__setattr__(self, "matrix", matrix)

    # ------------------------------------------------------------- properties
    @property
    def num_queries(self) -> int:
        """Number of queries ``q`` (rows of the matrix)."""
        return int(self.matrix.shape[0])

    @property
    def num_columns(self) -> int:
        """Number of columns (the domain size, plus any appended dummy column)."""
        return int(self.matrix.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(q, k)``."""
        return (int(self.matrix.shape[0]), int(self.matrix.shape[1]))

    def dense(self) -> np.ndarray:
        """Return the workload as a dense NumPy array (use only for small workloads)."""
        return self.matrix.toarray()

    def row(self, index: int) -> np.ndarray:
        """Return the ``index``-th query as a dense vector."""
        if not 0 <= index < self.num_queries:
            raise WorkloadError(f"Query index {index} out of range")
        return np.asarray(self.matrix.getrow(index).todense()).ravel()

    def is_counting(self, tolerance: float = 1e-12) -> bool:
        """Return ``True`` when every entry of the workload is 0 or 1.

        Linear *counting* queries (Section 2) are the inputs to Lemma 5.1; the
        transformed-query structure exploited by the Section 5 strategies only
        holds for counting workloads.
        """
        data = self.matrix.data
        if data.size == 0:
            return True
        return bool(np.all(np.abs(data * (data - 1.0)) <= tolerance))

    def signature(self) -> str:
        """A stable content hash of the workload (domain shape plus matrix).

        Two workloads share a signature exactly when they are defined over the
        same domain and their matrices have identical sparsity structure and
        values.  The serving engine (:mod:`repro.engine`) keys its plan and
        noisy-answer caches on this, so the hash is computed once per instance
        and memoised (the matrix of a frozen :class:`Workload` never changes).
        """
        cached = self.__dict__.get("_signature")
        if cached is not None:
            return cached
        matrix = self._canonical_matrix()
        hasher = hashlib.sha256()
        hasher.update(repr(self.domain.shape).encode())
        hasher.update(repr(matrix.shape).encode())
        hasher.update(matrix.indptr.tobytes())
        hasher.update(matrix.indices.tobytes())
        hasher.update(np.ascontiguousarray(matrix.data, dtype=np.float64).tobytes())
        digest = hasher.hexdigest()
        object.__setattr__(self, "_signature", digest)
        return digest

    def _canonical_matrix(self) -> sp.csr_matrix:
        """The matrix with representation details normalised away.

        Unsorted indices, duplicate entries and explicit stored zeros are
        representation, not semantics: both the content signature and the
        touched-column set must agree for two semantically equal workloads.
        """
        matrix = self.matrix
        if not matrix.has_canonical_format or (matrix.data == 0).any():
            matrix = matrix.copy()
            matrix.sum_duplicates()
            matrix.eliminate_zeros()
            matrix.sort_indices()
        return matrix

    def touched_columns(self) -> np.ndarray:
        """Sorted, unique domain-cell indices the workload actually reads.

        Computed from the canonicalised matrix, so explicit stored zeros do
        not count as touched (used by the engine's partition coverage check).
        """
        return np.unique(self._canonical_matrix().indices)

    # ------------------------------------------------------------- operations
    def answer(self, database: Database) -> np.ndarray:
        """Exact (non-private) workload answer ``W x``."""
        self._check_domain(database.domain)
        return np.asarray(self.matrix @ database.counts).ravel()

    def answer_vector(self, x: np.ndarray) -> np.ndarray:
        """Exact answer ``W x`` for a raw histogram vector ``x``."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != self.num_columns:
            raise WorkloadError(
                f"Vector has {x.shape[0]} entries, workload expects {self.num_columns}"
            )
        return np.asarray(self.matrix @ x).ravel()

    def stack(self, other: "Workload", name: str = "") -> "Workload":
        """Vertically stack two workloads over the same domain."""
        self._check_domain(other.domain)
        stacked = sp.vstack([self.matrix, other.matrix], format="csr")
        return Workload(domain=self.domain, matrix=stacked, name=name or self.name)

    def subset(self, rows: Sequence[int], name: str = "") -> "Workload":
        """Return the workload restricted to the given query ``rows``."""
        rows = list(int(r) for r in rows)
        for r in rows:
            if not 0 <= r < self.num_queries:
                raise WorkloadError(f"Query index {r} out of range")
        return Workload(
            domain=self.domain, matrix=self.matrix[rows, :], name=name or self.name
        )

    def restrict_to_columns(
        self, columns: Sequence[int], domain: Domain, name: str = ""
    ) -> "Workload":
        """Project the workload onto a subset of domain cells (shard scatter path).

        ``columns`` are the (sorted, unique) flat cell indices a
        :class:`~repro.engine.DomainShard` owns and ``domain`` is the shard's
        own domain (``domain.size == len(columns)``); column ``j`` of the
        result is column ``columns[j]`` of this workload.  Raises
        :class:`WorkloadError` when the workload touches a cell outside
        ``columns`` — a restricted workload must answer identically on the
        projected histogram, which only holds when its support is confined to
        the kept cells.
        """
        kept = np.asarray(list(int(c) for c in columns), dtype=np.int64)
        if kept.size != domain.size:
            raise WorkloadError(
                f"Restriction keeps {kept.size} columns but the target domain has "
                f"{domain.size} cells"
            )
        matrix = self._canonical_matrix()
        positions = np.searchsorted(kept, matrix.indices)
        inside = (positions < kept.size) & (
            kept[np.minimum(positions, kept.size - 1)] == matrix.indices
        )
        if not bool(np.all(inside)):
            outside = np.unique(matrix.indices[~inside])
            raise WorkloadError(
                f"Workload touches {outside.size} cells outside the restriction "
                f"(e.g. {outside[:5].tolist()}); restrict only confined workloads"
            )
        restricted = sp.csr_matrix(
            (matrix.data, positions, matrix.indptr),
            shape=(matrix.shape[0], kept.size),
        )
        return Workload(domain=domain, matrix=restricted, name=name or self.name)

    def rows_by_column_label(self, labels: np.ndarray) -> Optional[Dict[int, List[int]]]:
        """Group query rows by the single label shared by all their columns.

        ``labels`` assigns an integer label to every domain cell (typically
        :meth:`repro.policy.PolicyGraph.component_labels`).  Returns a dict
        mapping each label to the (ascending) row indices whose support lies
        entirely in that label's cells, or ``None`` when some row spans two
        labels — such a workload cannot be scattered component-wise without
        changing its noise distribution, so callers must fall back to the
        unsharded path.  Rows with empty support (all-zero queries) answer
        exactly zero on every histogram and are attached to the first group.
        """
        labels = np.asarray(labels)
        if labels.shape[0] != self.num_columns:
            raise WorkloadError(
                f"Expected one label per column ({self.num_columns}), got "
                f"{labels.shape[0]}"
            )
        matrix = self._canonical_matrix()
        column_labels = labels[matrix.indices]
        indptr = matrix.indptr
        row_nnz = np.diff(indptr)
        nonempty = row_nnz > 0
        empty_rows = np.nonzero(~nonempty)[0]
        groups: Dict[int, List[int]] = {}
        if bool(nonempty.any()):
            # Vectorised per-row min/max over the CSR segments: consecutive
            # non-empty rows tile column_labels contiguously (empty rows
            # contribute zero-length gaps), so reduceat over their starts
            # reduces exactly each row's label segment.
            starts = indptr[:-1][nonempty]
            mins = np.minimum.reduceat(column_labels, starts)
            maxs = np.maximum.reduceat(column_labels, starts)
            if bool(np.any(mins != maxs)):
                return None
            nonempty_rows = np.nonzero(nonempty)[0]
            for label in np.unique(mins):
                groups[int(label)] = nonempty_rows[mins == label].tolist()
        if empty_rows.size:
            if not groups:
                groups[int(labels[0])] = []
            groups[next(iter(groups))].extend(int(row) for row in empty_rows)
        return groups

    def right_multiply(self, matrix: MatrixLike, name: str = "") -> sp.csr_matrix:
        """Return ``W @ matrix`` as a CSR matrix (used by the policy transform)."""
        other = _as_csr(matrix) if not sp.issparse(matrix) else sp.csr_matrix(matrix)
        if other.shape[0] != self.num_columns:
            raise WorkloadError(
                f"Cannot multiply a {self.shape} workload by a {other.shape} matrix"
            )
        return sp.csr_matrix(self.matrix @ other)

    def l1_sensitivity(self) -> float:
        """L1 sensitivity under unbounded differential privacy (Definition 2.3).

        For unbounded neighbors (add/remove one record) the sensitivity equals
        the maximum L1 norm of a column of ``W``.
        """
        if self.matrix.nnz == 0:
            return 0.0
        column_norms = np.asarray(np.abs(self.matrix).sum(axis=0)).ravel()
        return float(column_norms.max())

    # ----------------------------------------------------------------- helper
    def _check_domain(self, other: Domain) -> None:
        if other != self.domain:
            raise WorkloadError(f"Domain mismatch: {self.domain} vs {other}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return f"Workload(shape={self.shape}{label})"


# ---------------------------------------------------------------------------
# Named constructors used throughout the paper.
# ---------------------------------------------------------------------------
def identity_workload(domain: Domain) -> Workload:
    """The histogram workload ``I_k`` (Figure 1, left): one query per cell."""
    return Workload(
        domain=domain,
        matrix=sp.identity(domain.size, format="csr", dtype=np.float64),
        name="Hist",
    )


def cumulative_workload(domain: Domain) -> Workload:
    """The cumulative-histogram workload ``C_k`` (Figure 1, right).

    Query ``i`` is the prefix sum ``x[0] + ... + x[i]``.  Only defined for
    one-dimensional domains, matching the paper's usage.
    """
    if domain.ndim != 1:
        raise WorkloadError("The cumulative workload C_k is one-dimensional")
    k = domain.size
    rows, cols = np.tril_indices(k)
    data = np.ones(rows.shape[0], dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(k, k))
    return Workload(domain=domain, matrix=matrix, name="Cumulative")


def total_workload(domain: Domain) -> Workload:
    """The single query returning the database size ``n``."""
    matrix = sp.csr_matrix(np.ones((1, domain.size), dtype=np.float64))
    return Workload(domain=domain, matrix=matrix, name="Total")


def marginal_workload(domain: Domain, axis: int) -> Workload:
    """The one-way marginal workload along ``axis`` of a multi-dimensional domain.

    Query ``j`` counts all records whose ``axis`` coordinate equals ``j``.
    """
    if not 0 <= axis < domain.ndim:
        raise WorkloadError(f"axis {axis} out of range for a {domain.ndim}-D domain")
    cells = domain.all_cells()
    extent = domain.shape[axis]
    rows = cells[:, axis]
    cols = np.arange(domain.size)
    data = np.ones(domain.size, dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(extent, domain.size))
    return Workload(domain=domain, matrix=matrix, name=f"Marginal[{axis}]")


def workload_from_rows(
    domain: Domain, rows: Iterable[np.ndarray], name: str = ""
) -> Workload:
    """Build a workload from an iterable of dense query rows."""
    stacked = np.vstack([np.asarray(row, dtype=np.float64).ravel() for row in rows])
    return Workload(domain=domain, matrix=stacked, name=name)


def stack_workloads(
    workloads: Sequence[Workload], name: str = ""
) -> Tuple[Workload, List[slice]]:
    """Stack several workloads over one domain into a single batched workload.

    Returns the stacked workload plus one row ``slice`` per input, so that a
    batched answer vector can be split back into per-workload answers.  This is
    the vectorised entry point used by the batch executor of
    :mod:`repro.engine`: answering the stacked workload runs each mechanism
    exactly once instead of once per client query.
    """
    if not workloads:
        raise WorkloadError("At least one workload is required to stack")
    domain = workloads[0].domain
    slices: List[slice] = []
    start = 0
    for workload in workloads:
        if workload.domain != domain:
            raise WorkloadError(
                f"Cannot stack workloads over different domains: {domain} vs "
                f"{workload.domain}"
            )
        slices.append(slice(start, start + workload.num_queries))
        start += workload.num_queries
    stacked = sp.vstack([w.matrix for w in workloads], format="csr")
    return Workload(domain=domain, matrix=stacked, name=name or "Batched"), slices


def answer_workloads_batched(answer, workloads: Sequence[Workload], *args, **kwargs):
    """Answer several workloads through one call to ``answer`` on their stack.

    ``answer`` is any ``(workload, ...) -> vector`` callable (typically a
    mechanism's bound ``answer`` method); the extra arguments are forwarded
    verbatim.  Returns one answer vector per input workload, in order.  This
    is the single implementation behind every ``answer_batch`` method, so the
    one-invocation-per-batch semantics cannot drift between mechanism
    hierarchies.
    """
    stacked, slices = stack_workloads(workloads)
    batched = answer(stacked, *args, **kwargs)
    return [batched[rows] for rows in slices]


def answer_workloads_batched_with_noise(
    answer, noise_model, workloads: Sequence[Workload], *args, **kwargs
):
    """:func:`answer_workloads_batched` plus the invocation's noise metadata.

    ``noise_model`` is a ``(workload) -> Optional[NoiseModel]`` callable
    (typically a mechanism's bound ``noise_model``), applied to the stacked
    workload *after* the answers are drawn — so the draws are identical to
    :func:`answer_workloads_batched` on the same stream.  The metadata is
    advisory: a failure computing it degrades to ``None`` rather than
    voiding the already-drawn release.  This is the single implementation
    behind every ``answer_batch_with_noise`` method, so the semantics cannot
    drift between mechanism hierarchies.
    """
    stacked, slices = stack_workloads(workloads)
    batched = answer(stacked, *args, **kwargs)
    try:
        model = noise_model(stacked)
    except Exception:
        model = None
    return [batched[rows] for rows in slices], model
