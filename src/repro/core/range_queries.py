"""Range-query workloads ``R_k`` and ``R_{k^d}``.

A multi-dimensional range query is an axis-aligned hyper-rectangle with lower
corner ``l`` and upper corner ``r`` (both inclusive); its answer counts the
records falling inside the rectangle (Section 5.1 of the paper).  This module
provides:

* :class:`RangeQuery` — a single query with conversion to a workload row;
* :func:`all_range_queries_workload` — the full workload ``R_k`` / ``R_{k^d}``
  (quadratic in the domain size; only use for small domains, e.g. the
  lower-bound experiments of Figure 10);
* :func:`random_range_queries_workload` — uniformly random range queries,
  matching the 10 000-query evaluation workloads of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import WorkloadError
from .domain import Domain
from .rng import RandomState, ensure_rng
from .workload import Workload


@dataclass(frozen=True)
class RangeQuery:
    """An axis-aligned (inclusive) range query ``q(l, r)``.

    Parameters
    ----------
    lower, upper:
        Cell coordinates of the lower-left and upper-right corners.  Both are
        inclusive; every coordinate of ``lower`` must not exceed the matching
        coordinate of ``upper``.
    """

    lower: Tuple[int, ...]
    upper: Tuple[int, ...]

    def __post_init__(self) -> None:
        lower = tuple(int(c) for c in self.lower)
        upper = tuple(int(c) for c in self.upper)
        if len(lower) != len(upper):
            raise WorkloadError("lower and upper corners must have the same dimension")
        if any(lo > hi for lo, hi in zip(lower, upper)):
            raise WorkloadError(f"Invalid range query: lower={lower} exceeds upper={upper}")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @property
    def ndim(self) -> int:
        """Dimensionality of the query."""
        return len(self.lower)

    def num_cells(self) -> int:
        """Number of domain cells covered by the query."""
        return int(np.prod([hi - lo + 1 for lo, hi in zip(self.lower, self.upper)]))

    def cells(self) -> Iterator[Tuple[int, ...]]:
        """Iterate over the cells covered by the query."""
        ranges = [range(lo, hi + 1) for lo, hi in zip(self.lower, self.upper)]
        grid = np.meshgrid(*ranges, indexing="ij")
        stacked = np.stack([g.ravel() for g in grid], axis=1)
        for row in stacked:
            yield tuple(int(c) for c in row)

    def contains(self, cell: Sequence[int]) -> bool:
        """Return ``True`` when ``cell`` falls inside the query rectangle."""
        return all(
            lo <= int(c) <= hi for c, lo, hi in zip(cell, self.lower, self.upper)
        )

    def to_row(self, domain: Domain) -> np.ndarray:
        """Return the dense workload row of this query over ``domain``."""
        if domain.ndim != self.ndim:
            raise WorkloadError(
                f"Query dimension {self.ndim} does not match domain dimension {domain.ndim}"
            )
        row = np.zeros(domain.size, dtype=np.float64)
        for cell in self.cells():
            row[domain.index_of(cell)] = 1.0
        return row

    def evaluate(self, histogram: np.ndarray, domain: Domain) -> float:
        """Evaluate the query exactly against a histogram vector."""
        array = np.asarray(histogram, dtype=np.float64).reshape(domain.shape)
        slices = tuple(slice(lo, hi + 1) for lo, hi in zip(self.lower, self.upper))
        return float(array[slices].sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeQuery(lower={self.lower}, upper={self.upper})"


# ---------------------------------------------------------------------------
# Workload constructors.
# ---------------------------------------------------------------------------
def _queries_to_workload(
    domain: Domain, queries: Sequence[RangeQuery], name: str
) -> Workload:
    """Assemble a sparse workload matrix from a list of range queries."""
    rows: List[int] = []
    cols: List[int] = []
    shape = domain.shape
    for query_index, query in enumerate(queries):
        if query.ndim != domain.ndim:
            raise WorkloadError(
                f"Query {query} does not match the {domain.ndim}-D domain"
            )
        # Vectorised cell enumeration: build the index grid for the rectangle.
        ranges = [
            np.arange(lo, hi + 1) for lo, hi in zip(query.lower, query.upper)
        ]
        mesh = np.meshgrid(*ranges, indexing="ij")
        flat = np.ravel_multi_index([m.ravel() for m in mesh], shape)
        rows.extend([query_index] * flat.size)
        cols.extend(flat.tolist())
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix(
        (data, (rows, cols)), shape=(len(queries), domain.size)
    )
    workload = Workload(domain=domain, matrix=matrix, name=name)
    return workload


def all_range_queries(domain: Domain) -> List[RangeQuery]:
    """Enumerate every axis-aligned range query over ``domain``.

    The count is ``prod_i k_i (k_i + 1) / 2`` and grows quadratically per
    dimension — use only for small domains (as the paper does for the
    lower-bound study of Figure 10).
    """
    per_dim_intervals: List[List[Tuple[int, int]]] = []
    for extent in domain.shape:
        intervals = [
            (lo, hi) for lo in range(extent) for hi in range(lo, extent)
        ]
        per_dim_intervals.append(intervals)

    queries: List[RangeQuery] = []

    def build(dim: int, lower: Tuple[int, ...], upper: Tuple[int, ...]) -> None:
        if dim == domain.ndim:
            queries.append(RangeQuery(lower=lower, upper=upper))
            return
        for lo, hi in per_dim_intervals[dim]:
            build(dim + 1, lower + (lo,), upper + (hi,))

    build(0, (), ())
    return queries


def all_range_queries_workload(domain: Domain) -> Workload:
    """The full range-query workload ``R_k`` (1-D) or ``R_{k^d}``."""
    queries = all_range_queries(domain)
    return _queries_to_workload(domain, queries, name=f"AllRanges[{domain.shape}]")


def random_range_queries(
    domain: Domain, num_queries: int, random_state: RandomState = None
) -> List[RangeQuery]:
    """Sample ``num_queries`` uniformly random range queries over ``domain``.

    Each dimension's endpoints are drawn uniformly and sorted, matching the
    "10,000 random range queries" workloads of Section 6.
    """
    if num_queries < 0:
        raise WorkloadError(f"num_queries must be non-negative, got {num_queries}")
    rng = ensure_rng(random_state)
    queries: List[RangeQuery] = []
    for _ in range(num_queries):
        lower: List[int] = []
        upper: List[int] = []
        for extent in domain.shape:
            a, b = rng.integers(0, extent, size=2)
            lo, hi = (int(min(a, b)), int(max(a, b)))
            lower.append(lo)
            upper.append(hi)
        queries.append(RangeQuery(lower=tuple(lower), upper=tuple(upper)))
    return queries


def random_range_queries_workload(
    domain: Domain, num_queries: int, random_state: RandomState = None
) -> Workload:
    """Workload of uniformly random range queries (Section 6 evaluation workload)."""
    queries = random_range_queries(domain, num_queries, random_state)
    return _queries_to_workload(
        domain, queries, name=f"RandomRanges[{num_queries}]"
    )


def range_queries_workload(
    domain: Domain, queries: Iterable[RangeQuery], name: str = "Ranges"
) -> Workload:
    """Workload built from an explicit list of range queries."""
    return _queries_to_workload(domain, list(queries), name=name)


def prefix_range_queries_workload(domain: Domain) -> Workload:
    """All prefix ranges ``q(0, r)`` of a one-dimensional domain.

    Equivalent to the cumulative workload ``C_k``; provided for symmetry with
    the range-query API.
    """
    if domain.ndim != 1:
        raise WorkloadError("Prefix ranges are only defined for 1-D domains")
    queries = [RangeQuery((0,), (r,)) for r in range(domain.size)]
    return _queries_to_workload(domain, queries, name="PrefixRanges")
