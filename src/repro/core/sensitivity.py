"""Sensitivity computations.

Two notions of sensitivity appear in the paper:

* the standard L1 sensitivity of a workload under (unbounded or bounded)
  differential privacy (Definition 2.3), and
* the *policy-specific* sensitivity with respect to a Blowfish policy graph
  ``G`` (Definition 4.1), which by Lemma 4.7 / D.1 equals the maximum L1
  column norm of the transformed workload ``W_G = W P_G``.

The functions here operate directly on matrices so they can be reused both by
the standard mechanisms (which only need unbounded/bounded sensitivity) and by
the Blowfish mechanisms (which pass in the policy's ``P_G``).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..exceptions import WorkloadError
from .workload import Workload

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _column_l1_norms(matrix: MatrixLike) -> np.ndarray:
    """Return the L1 norm of every column of ``matrix``."""
    if sp.issparse(matrix):
        return np.asarray(np.abs(matrix).sum(axis=0)).ravel()
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim != 2:
        raise WorkloadError("Sensitivity is only defined for 2-D matrices")
    return np.abs(array).sum(axis=0)


def unbounded_sensitivity(matrix: MatrixLike) -> float:
    """L1 sensitivity under *unbounded* DP (add/remove one record).

    Adding or removing a record with value ``v`` changes the answer vector by
    the ``v``-th column of the matrix, so the sensitivity is the largest
    column L1 norm.
    """
    norms = _column_l1_norms(matrix)
    return float(norms.max()) if norms.size else 0.0


def bounded_sensitivity(matrix: MatrixLike) -> float:
    """L1 sensitivity under *bounded* DP (replace one record's value).

    Replacing a record with value ``u`` by value ``v`` changes the answer by
    ``column_u - column_v``; the sensitivity is the largest L1 distance
    between two columns.  Computed exactly; quadratic in the number of
    columns, so intended for moderate domain sizes.
    """
    if sp.issparse(matrix):
        dense = np.asarray(matrix.todense(), dtype=np.float64)
    else:
        dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2:
        raise WorkloadError("Sensitivity is only defined for 2-D matrices")
    k = dense.shape[1]
    if k == 0:
        return 0.0
    best = 0.0
    # Pairwise column L1 distances, blocked to keep memory bounded.
    block = max(1, min(k, 4096 // max(1, dense.shape[0] // 256 + 1)))
    for start in range(0, k, block):
        chunk = dense[:, start : start + block]  # (q, b)
        # |chunk[:, :, None] - dense[:, None, :]| summed over rows.
        diffs = np.abs(chunk[:, :, None] - dense[:, None, :]).sum(axis=0)
        best = max(best, float(diffs.max()))
    return best


def workload_sensitivity(workload: Workload, bounded: bool = False) -> float:
    """Sensitivity of a :class:`Workload` under unbounded or bounded DP."""
    if bounded:
        return bounded_sensitivity(workload.matrix)
    return unbounded_sensitivity(workload.matrix)


def policy_sensitivity_from_incidence(
    matrix: MatrixLike, incidence: MatrixLike
) -> float:
    """Policy-specific sensitivity ``Delta_W(G)`` via the transform (Lemma 4.7).

    Parameters
    ----------
    matrix:
        The workload matrix ``W`` (``q x k``), whose columns are indexed by
        the policy graph's non-``bottom`` vertices in the same order as the
        rows of ``incidence``.
    incidence:
        The policy transform ``P_G`` (``k x |E|``): each column is the signed
        indicator of one policy edge (Section 4.4).

    Returns
    -------
    float
        ``max_{(x, x') in N(G)} || W x - W x' ||_1``, which equals the largest
        L1 column norm of ``W P_G``.
    """
    left = sp.csr_matrix(matrix) if not sp.issparse(matrix) else sp.csr_matrix(matrix)
    right = sp.csr_matrix(incidence) if not sp.issparse(incidence) else sp.csr_matrix(incidence)
    if left.shape[1] != right.shape[0]:
        raise WorkloadError(
            f"Workload has {left.shape[1]} columns but P_G has {right.shape[0]} rows"
        )
    transformed = left @ right
    return unbounded_sensitivity(transformed)


def per_edge_sensitivities(matrix: MatrixLike, incidence: MatrixLike) -> np.ndarray:
    """L1 change of the workload answer for every single policy edge.

    Entry ``e`` is ``|| W (e_u - e_v) ||_1`` for policy edge ``e = (u, v)``
    (or ``|| W e_u ||_1`` for an edge to ``bottom``).  The maximum over the
    result equals :func:`policy_sensitivity_from_incidence`.
    """
    left = sp.csr_matrix(matrix) if not sp.issparse(matrix) else sp.csr_matrix(matrix)
    right = sp.csr_matrix(incidence) if not sp.issparse(incidence) else sp.csr_matrix(incidence)
    if left.shape[1] != right.shape[0]:
        raise WorkloadError(
            f"Workload has {left.shape[1]} columns but P_G has {right.shape[0]} rows"
        )
    transformed = left @ right
    return _column_l1_norms(transformed)
