"""The Li–Miklau SVD lower bound transferred to Blowfish (Appendix A, Figure 10).

Li and Miklau [16] show that every (ε, δ) matrix mechanism answering a
workload ``W`` incurs total squared error at least::

    MINERROR(W) = P(ε, δ) · (λ₁ + ... + λ_s)² / n

where ``λ_i`` are the singular values of ``W``, ``n`` its number of columns
and ``P(ε, δ) = 2·log(2/δ) / ε²``.  Because transformational equivalence holds
for all matrix mechanisms under every policy graph (Theorem 4.1), the same
bound applied to the *transformed* workload ``W_G`` (with ``n_G = |E|``
columns) lower-bounds every ``(ε, δ, G)``-Blowfish matrix mechanism
(Corollary A.2).  Figure 10 plots this bound against the domain size for range
queries under several threshold policies; :func:`figure10_curves` regenerates
those series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..core.domain import Domain
from ..core.range_queries import all_range_queries_workload
from ..core.workload import Workload
from ..exceptions import ExperimentError
from ..policy.builders import bounded_dp_policy, threshold_policy
from ..policy.graph import PolicyGraph
from ..policy.transform import PolicyTransform


def privacy_constant(epsilon: float, delta: float) -> float:
    """``P(ε, δ) = 2·log(2/δ) / ε²`` (Corollary A.2)."""
    if epsilon <= 0:
        raise ExperimentError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ExperimentError(f"delta must lie in (0, 1), got {delta}")
    return 2.0 * float(np.log(2.0 / delta)) / (epsilon**2)


def _singular_value_sum(matrix: sp.spmatrix | np.ndarray) -> float:
    """Sum of singular values (nuclear norm) via the Gram matrix's eigenvalues."""
    if sp.issparse(matrix):
        dense = np.asarray(matrix.todense(), dtype=np.float64)
    else:
        dense = np.asarray(matrix, dtype=np.float64)
    if dense.size == 0:
        return 0.0
    # Work with the smaller Gram matrix for speed.
    if dense.shape[0] >= dense.shape[1]:
        gram = dense.T @ dense
    else:
        gram = dense @ dense.T
    eigenvalues = np.linalg.eigvalsh(gram)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return float(np.sqrt(eigenvalues).sum())


def svd_lower_bound(
    workload_matrix: sp.spmatrix | np.ndarray,
    epsilon: float,
    delta: float,
) -> float:
    """Total-error lower bound ``P(ε,δ)·(Σλ_i)²/n`` for one workload matrix."""
    matrix = workload_matrix
    num_columns = matrix.shape[1]
    if num_columns == 0:
        return 0.0
    nuclear = _singular_value_sum(matrix)
    return privacy_constant(epsilon, delta) * (nuclear**2) / float(num_columns)


def blowfish_svd_lower_bound(
    policy: PolicyGraph,
    workload: Workload,
    epsilon: float,
    delta: float,
) -> float:
    """The Corollary A.2 bound: the DP SVD bound applied to ``W_G`` with ``n_G = |E|``."""
    transform = PolicyTransform(policy)
    transformed = transform.transform_workload(workload)
    return svd_lower_bound(transformed, epsilon, delta)


@dataclass(frozen=True)
class LowerBoundPoint:
    """One point of a Figure 10 curve."""

    series: str
    domain_size: int
    bound: float


def figure10_curves(
    dimension: int = 1,
    domain_sizes: Optional[Sequence[int]] = None,
    thetas: Optional[Sequence[int]] = None,
    epsilon: float = 1.0,
    delta: float = 0.001,
    include_unbounded: bool = True,
    include_bounded: Optional[bool] = None,
) -> List[LowerBoundPoint]:
    """Regenerate the lower-bound curves of Figure 10.

    Parameters
    ----------
    dimension:
        1 reproduces Figure 10a (``R_k`` under ``G^θ_k``), 2 reproduces
        Figure 10b (``R_{k²}`` under ``G^θ_{k²}``).
    domain_sizes:
        Total domain sizes to evaluate.  Defaults follow the paper's ranges
        but are kept modest so the computation stays fast; pass larger values
        to extend the curves.
    thetas:
        Threshold parameters.  Defaults: ``(1, 2, 4, 8, 16)`` in 1-D and
        ``(1, 2, 3)`` in 2-D, as in the paper.
    include_unbounded:
        Also compute the unbounded-DP curve (the bound on the original ``W``).
    include_bounded:
        Also compute the bounded-DP curve (complete-graph policy); defaults to
        ``True`` for 2-D only, matching the paper's plots.
    """
    if dimension not in (1, 2):
        raise ExperimentError("Figure 10 covers dimensions 1 and 2 only")
    if domain_sizes is None:
        domain_sizes = (32, 64, 96, 128) if dimension == 1 else (16, 36, 64, 81)
    if thetas is None:
        thetas = (1, 2, 4, 8, 16) if dimension == 1 else (1, 2, 3)
    if include_bounded is None:
        include_bounded = dimension == 2

    points: List[LowerBoundPoint] = []
    for total_size in domain_sizes:
        if dimension == 1:
            domain = Domain((int(total_size),))
        else:
            side = int(round(np.sqrt(total_size)))
            if side * side != int(total_size):
                raise ExperimentError(
                    f"2-D domain sizes must be perfect squares, got {total_size}"
                )
            domain = Domain((side, side))
        workload = all_range_queries_workload(domain)

        if include_unbounded:
            points.append(
                LowerBoundPoint(
                    series="unbounded DP",
                    domain_size=int(total_size),
                    bound=svd_lower_bound(workload.matrix, epsilon, delta),
                )
            )
        if include_bounded:
            bounded = bounded_dp_policy(domain)
            points.append(
                LowerBoundPoint(
                    series="bounded DP",
                    domain_size=int(total_size),
                    bound=blowfish_svd_lower_bound(bounded, workload, epsilon, delta),
                )
            )
        for theta in thetas:
            policy = threshold_policy(domain, int(theta))
            points.append(
                LowerBoundPoint(
                    series=f"theta={theta}",
                    domain_size=int(total_size),
                    bound=blowfish_svd_lower_bound(policy, workload, epsilon, delta),
                )
            )
    return points


def curves_by_series(points: Sequence[LowerBoundPoint]) -> Dict[str, List[LowerBoundPoint]]:
    """Group lower-bound points by series name, each sorted by domain size."""
    grouped: Dict[str, List[LowerBoundPoint]] = {}
    for point in points:
        grouped.setdefault(point.series, []).append(point)
    for series in grouped:
        grouped[series] = sorted(grouped[series], key=lambda p: p.domain_size)
    return grouped
