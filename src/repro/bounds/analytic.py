"""Analytic data-independent error bounds (Figure 3 of the paper).

The paper summarises the per-query error of its Blowfish mechanisms against
the best known data-oblivious differentially private mechanism (Privelet):

===============  ==================  ===========================================
Workload         Policy              Blowfish error per query
===============  ==================  ===========================================
``R_k``          ``G^1_k``           ``Θ(1/ε²)``                     (Thm 5.2)
``R_k``          ``G^θ_k``           ``O(log³θ / ε²)``               (Thm 5.5)
``R_{k^d}``      ``G^1_{k^d}``       ``O(d·log^{3(d-1)}k / ε²)``     (Thm 5.4)
``R_{k^d}``      ``G^θ_{k^d}``       ``O(d³·log^{3(d-1)}k·log³θ/ε²)``(Thm 5.6)
===============  ==================  ===========================================

against the ε-DP Privelet bound ``O(log^{3d} k / ε²)``.  These are asymptotic
statements; the functions below return the bounds *without* hidden constants
(constant 2, the Laplace variance factor) so that they can be compared to the
empirical errors as reference curves, and :func:`figure3_table` reproduces the
table itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import ExperimentError


def _check(epsilon: float, k: int, d: int = 1, theta: int = 1) -> None:
    if epsilon <= 0:
        raise ExperimentError(f"epsilon must be positive, got {epsilon}")
    if k < 2:
        raise ExperimentError(f"domain size per dimension must be at least 2, got {k}")
    if d < 1:
        raise ExperimentError(f"dimension must be at least 1, got {d}")
    if theta < 1:
        raise ExperimentError(f"theta must be at least 1, got {theta}")


def _log2(value: float) -> float:
    return float(np.log2(max(value, 2.0)))


def privelet_error_per_query(epsilon: float, k: int, d: int = 1) -> float:
    """ε-DP Privelet reference bound ``2·log^{3d}(k) / ε²`` per range query."""
    _check(epsilon, k, d)
    return 2.0 * (_log2(k) ** (3 * d)) / (epsilon**2)


def blowfish_line_error_per_query(epsilon: float, k: int) -> float:
    """``R_k`` under ``G^1_k``: ``Θ(1/ε²)`` per query (Theorem 5.2)."""
    _check(epsilon, k)
    # Two noisy prefix sums per range, each with Laplace variance 2/eps^2.
    return 4.0 / (epsilon**2)


def blowfish_theta_line_error_per_query(epsilon: float, k: int, theta: int) -> float:
    """``R_k`` under ``G^θ_k``: ``O(log³θ / ε²)`` per query (Theorem 5.5).

    The stretch-3 spanner costs a factor 3² in the budget; within each group
    of θ edges a Privelet-style strategy pays ``log³θ``.
    """
    _check(epsilon, k, theta=theta)
    if theta == 1:
        return blowfish_line_error_per_query(epsilon, k)
    return 2.0 * 9.0 * (_log2(theta) ** 3) / (epsilon**2)


def blowfish_grid_error_per_query(epsilon: float, k: int, d: int) -> float:
    """``R_{k^d}`` under ``G^1_{k^d}``: ``O(d·log^{3(d-1)}k / ε²)`` (Theorem 5.4)."""
    _check(epsilon, k, d)
    if d == 1:
        return blowfish_line_error_per_query(epsilon, k)
    return 2.0 * d * (_log2(k) ** (3 * (d - 1))) / (epsilon**2)


def blowfish_theta_grid_error_per_query(
    epsilon: float, k: int, d: int, theta: int
) -> float:
    """``R_{k^d}`` under ``G^θ_{k^d}``: ``O(d³·log^{3(d-1)}k·log³θ / ε²)`` (Theorem 5.6)."""
    _check(epsilon, k, d, theta)
    if theta == 1:
        return blowfish_grid_error_per_query(epsilon, k, d)
    return 2.0 * (d**3) * (_log2(k) ** (3 * (d - 1))) * (_log2(theta) ** 3) / (epsilon**2)


def blowfish_improvement_factor(epsilon: float, k: int, d: int, theta: int = 1) -> float:
    """Ratio of the Privelet bound to the Blowfish bound for the same workload.

    The paper's "Discussion" (end of Section 5.3) notes the Blowfish
    mechanisms win when ``d·logθ`` is small compared to ``log k``; this helper
    makes that comparison executable.
    """
    privelet = privelet_error_per_query(epsilon, k, d)
    blowfish = blowfish_theta_grid_error_per_query(epsilon, k, d, theta)
    return privelet / blowfish


@dataclass(frozen=True)
class Figure3Row:
    """One row of the Figure 3 summary table."""

    workload: str
    policy: str
    blowfish_bound: str
    blowfish_value: float
    dp_bound: str
    dp_value: float

    @property
    def improvement(self) -> float:
        """Privelet-to-Blowfish bound ratio (> 1 means Blowfish wins)."""
        return self.dp_value / self.blowfish_value


def figure3_table(epsilon: float = 1.0, k: int = 4096, d: int = 2, theta: int = 4) -> List[Figure3Row]:
    """Reproduce the Figure 3 summary with concrete numbers for given parameters."""
    _check(epsilon, k, d, theta)
    rows = [
        Figure3Row(
            workload="R_k",
            policy="G^1_k",
            blowfish_bound="Theta(1/eps^2)",
            blowfish_value=blowfish_line_error_per_query(epsilon, k),
            dp_bound="O(log^3 k / eps^2)",
            dp_value=privelet_error_per_query(epsilon, k, 1),
        ),
        Figure3Row(
            workload="R_k",
            policy=f"G^{theta}_k",
            blowfish_bound="O(log^3 theta / eps^2)",
            blowfish_value=blowfish_theta_line_error_per_query(epsilon, k, theta),
            dp_bound="O(log^3 k / eps^2)",
            dp_value=privelet_error_per_query(epsilon, k, 1),
        ),
        Figure3Row(
            workload="R_{k^d}",
            policy="G^1_{k^d}",
            blowfish_bound="O(d log^{3(d-1)} k / eps^2)",
            blowfish_value=blowfish_grid_error_per_query(epsilon, k, d),
            dp_bound="O(log^{3d} k / eps^2)",
            dp_value=privelet_error_per_query(epsilon, k, d),
        ),
        Figure3Row(
            workload="R_{k^d}",
            policy=f"G^{theta}_{{k^d}}",
            blowfish_bound="O(d^3 log^{3(d-1)} k log^3 theta / eps^2)",
            blowfish_value=blowfish_theta_grid_error_per_query(epsilon, k, d, theta),
            dp_bound="O(log^{3d} k / eps^2)",
            dp_value=privelet_error_per_query(epsilon, k, d),
        ),
    ]
    return rows
