"""Error bounds: analytic per-query bounds (Figure 3) and SVD lower bounds (Figure 10)."""

from .analytic import (
    Figure3Row,
    blowfish_grid_error_per_query,
    blowfish_improvement_factor,
    blowfish_line_error_per_query,
    blowfish_theta_grid_error_per_query,
    blowfish_theta_line_error_per_query,
    figure3_table,
    privelet_error_per_query,
)
from .svd import (
    LowerBoundPoint,
    blowfish_svd_lower_bound,
    curves_by_series,
    figure10_curves,
    privacy_constant,
    svd_lower_bound,
)

__all__ = [
    "Figure3Row",
    "LowerBoundPoint",
    "blowfish_grid_error_per_query",
    "blowfish_improvement_factor",
    "blowfish_line_error_per_query",
    "blowfish_svd_lower_bound",
    "blowfish_theta_grid_error_per_query",
    "blowfish_theta_line_error_per_query",
    "curves_by_series",
    "figure10_curves",
    "figure3_table",
    "privacy_constant",
    "privelet_error_per_query",
    "svd_lower_bound",
]
