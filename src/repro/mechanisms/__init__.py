"""Standard differentially private mechanisms (substrates and baselines)."""

from .base import (
    HistogramMechanism,
    Mechanism,
    NoiseModel,
    basis_noise_model,
    check_epsilon,
    laplace_noise,
)
from .baselines import UniformMechanism, ZeroMechanism
from .dawa import DawaMechanism, bucket_deviation, greedy_partition, optimal_partition
from .exponential import ExponentialMechanism, graph_distance_exponential_mechanism
from .gaussian import (
    GaussianHistogram,
    gaussian_estimator_factory,
    gaussian_noise,
    gaussian_sigma,
)
from .geometric import GeometricHistogram, geometric_noise
from .hierarchical import HierarchicalMechanism, TreeNode, build_interval_tree
from .hilbert import hilbert_index, hilbert_order, ordering_for_shape
from .laplace import LaplaceHistogram, LaplaceMechanism
from .matrix import MatrixMechanism, laplace_matrix_mechanism
from .privelet import PriveletMechanism
from .strategies import (
    Strategy,
    block_diagonal_strategy,
    haar_strategy,
    hierarchical_strategy,
    identity_strategy,
    kron_strategy,
    total_strategy,
)

__all__ = [
    "DawaMechanism",
    "ExponentialMechanism",
    "GaussianHistogram",
    "GeometricHistogram",
    "HierarchicalMechanism",
    "HistogramMechanism",
    "LaplaceHistogram",
    "LaplaceMechanism",
    "MatrixMechanism",
    "Mechanism",
    "NoiseModel",
    "PriveletMechanism",
    "Strategy",
    "TreeNode",
    "UniformMechanism",
    "ZeroMechanism",
    "basis_noise_model",
    "block_diagonal_strategy",
    "bucket_deviation",
    "build_interval_tree",
    "check_epsilon",
    "gaussian_estimator_factory",
    "gaussian_noise",
    "gaussian_sigma",
    "geometric_noise",
    "graph_distance_exponential_mechanism",
    "greedy_partition",
    "haar_strategy",
    "hierarchical_strategy",
    "hilbert_index",
    "hilbert_order",
    "identity_strategy",
    "kron_strategy",
    "laplace_matrix_mechanism",
    "laplace_noise",
    "optimal_partition",
    "ordering_for_shape",
    "total_strategy",
]
