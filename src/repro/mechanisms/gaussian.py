"""The Gaussian mechanism for (ε, δ)-differential privacy.

Appendix A of the paper notes that ``(ε, δ, G)``-Blowfish privacy can be
defined exactly like ``(ε, G)``-Blowfish privacy and that the transformational
equivalence results carry over; the Li–Miklau lower bound it transfers
(Corollary A.2, Figure 10) is itself an ``(ε, δ)`` bound.  This module supplies
the standard ``(ε, δ)`` substrate — the Gaussian mechanism with the classic
calibration ``σ = Δ₂ · sqrt(2 ln(1.25/δ)) / ε`` — so that users can build
``(ε, δ, G)``-Blowfish mechanisms by running it on transformed instances
(through :class:`repro.blowfish.TreeTransformMechanism` with a custom
estimator factory, or as a matrix-mechanism noise source).

For a histogram release the L2 sensitivity under unbounded neighbors is 1 and
under a tree-policy transform it is also 1 (one coordinate changes by one,
Lemma 4.9), so the default ``l2_sensitivity=1`` is correct in both settings.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import RandomState, ensure_rng
from ..exceptions import PrivacyBudgetError
from .base import HistogramMechanism, check_epsilon


def gaussian_sigma(epsilon: float, delta: float, l2_sensitivity: float = 1.0) -> float:
    """Noise standard deviation of the classic Gaussian mechanism.

    ``σ = Δ₂ · sqrt(2 ln(1.25/δ)) / ε``, valid for ε ≤ 1 (the classical
    analysis); larger ε values are accepted but the calibration is then
    conservative rather than tight.
    """
    check_epsilon(epsilon)
    if not 0.0 < delta < 1.0:
        raise PrivacyBudgetError(f"delta must lie in (0, 1), got {delta}")
    if l2_sensitivity < 0:
        raise PrivacyBudgetError(
            f"l2_sensitivity must be non-negative, got {l2_sensitivity}"
        )
    return l2_sensitivity * float(np.sqrt(2.0 * np.log(1.25 / delta))) / epsilon


def gaussian_noise(
    epsilon: float,
    delta: float,
    size: int,
    l2_sensitivity: float = 1.0,
    random_state: RandomState = None,
) -> np.ndarray:
    """Sample i.i.d. Gaussian noise calibrated for (ε, δ)-DP."""
    sigma = gaussian_sigma(epsilon, delta, l2_sensitivity)
    rng = ensure_rng(random_state)
    if sigma == 0:
        return np.zeros(size, dtype=np.float64)
    return rng.normal(loc=0.0, scale=sigma, size=size)


class GaussianHistogram(HistogramMechanism):
    """Release a histogram with Gaussian noise — the (ε, δ)-DP substrate.

    Parameters
    ----------
    epsilon, delta:
        The (ε, δ) privacy parameters.
    l2_sensitivity:
        L2 sensitivity of the histogram map (1 for unbounded DP and for
        tree-policy transformed instances; √2 for bounded DP).
    """

    name = "GaussianHistogram"
    data_dependent = False

    def __init__(self, epsilon: float, delta: float, l2_sensitivity: float = 1.0) -> None:
        super().__init__(epsilon)
        self._sigma = gaussian_sigma(epsilon, delta, l2_sensitivity)
        self._delta = float(delta)
        self._l2_sensitivity = float(l2_sensitivity)

    @property
    def delta(self) -> float:
        """Failure probability δ."""
        return self._delta

    @property
    def sigma(self) -> float:
        """Per-cell noise standard deviation."""
        return self._sigma

    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        rng = ensure_rng(random_state)
        if self._sigma == 0:
            return vector.copy()
        return vector + rng.normal(0.0, self._sigma, size=vector.shape[0])

    def expected_error_per_cell(self) -> float:
        """Expected squared error per histogram cell, ``σ²``."""
        return float(self._sigma**2)


def gaussian_estimator_factory(delta: float):
    """Build a :class:`TreeTransformMechanism` estimator factory for (ε, δ, G)-Blowfish.

    Example
    -------
    >>> from repro.blowfish import TreeTransformMechanism
    >>> from repro.policy import line_policy
    >>> from repro.core import Domain
    >>> policy = line_policy(Domain((128,)))
    >>> mechanism = TreeTransformMechanism(
    ...     policy, epsilon=0.5,
    ...     estimator_factory=gaussian_estimator_factory(delta=1e-5),
    ... )

    The resulting mechanism satisfies ``(0.5, 1e-5, G)``-Blowfish privacy by
    Theorem 4.3 extended to the (ε, δ) setting (Appendix A).
    """

    def factory(epsilon: float, num_coordinates: int) -> GaussianHistogram:
        return GaussianHistogram(epsilon=epsilon, delta=delta, l2_sensitivity=1.0)

    return factory
