"""DAWA — a data- and workload-aware mechanism (Li, Hay & Miklau [14]).

DAWA is the state-of-the-art *data-dependent* baseline in the paper's
experiments.  It spends part of the budget learning a partition of the domain
into buckets of (roughly) uniform counts, then measures only the bucket totals
and spreads them uniformly.  On sparse or piecewise-constant data very few
buckets are needed, so the per-cell error collapses far below the Laplace
baseline; on irregular data the partition degenerates towards singletons and
DAWA behaves like the Laplace mechanism.

This is a from-scratch re-implementation with one documented simplification
(see DESIGN.md): the partitioning stage uses a single-pass greedy grower on a
noisy copy of the data instead of the original O(k²) dynamic program.  The
cost model is the same — a bucket pays its (noise-adjusted) L1 deviation plus
a fixed per-bucket measurement cost — so the qualitative behaviour the paper
relies on (large wins on sparse data, parity on dense data) is preserved, and
the exact dynamic program is available as :func:`optimal_partition` for small
domains and for the tests.

Privacy: stage 1 releases a noisy copy of the data with budget ``ρ·ε`` and the
partition is post-processing of that release; stage 2 measures bucket totals
with the remaining ``(1-ρ)·ε``.  Sequential composition gives ``ε`` overall.
The ``sensitivity`` parameter scales both stages (1 for unbounded DP, 2 for
bounded DP, or the policy-specific sensitivity on transformed instances).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.rng import RandomState, ensure_rng
from ..exceptions import MechanismError
from .base import HistogramMechanism, laplace_noise
from .hilbert import ordering_for_shape


def bucket_deviation(values: np.ndarray, noise_level: float = 0.0) -> float:
    """Noise-adjusted L1 deviation of a bucket around its median.

    ``sum_i max(0, |v_i - median| - noise_level)`` — subtracting the expected
    absolute noise keeps buckets of identical *true* counts (e.g. runs of
    zeros observed through Laplace noise) essentially free to merge, which is
    the behaviour of DAWA's exact cost model.
    """
    if values.size == 0:
        return 0.0
    deviations = np.abs(values - np.median(values))
    if noise_level > 0:
        deviations = np.maximum(deviations - noise_level, 0.0)
    return float(deviations.sum())


def greedy_partition(
    noisy: np.ndarray, bucket_cost: float, noise_level: float
) -> List[Tuple[int, int]]:
    """Single-pass greedy partition of a (noisy) vector into contiguous buckets.

    Grows the current bucket while its noise-adjusted deviation stays below
    ``bucket_cost`` (the fixed price of one extra measured bucket); otherwise
    closes it.  Returns half-open ``(start, end)`` intervals covering the
    domain.
    """
    size = noisy.shape[0]
    if size == 0:
        return []
    buckets: List[Tuple[int, int]] = []
    start = 0
    for end in range(1, size + 1):
        if end - start == 1:
            continue
        deviation = bucket_deviation(noisy[start:end], noise_level)
        if deviation > bucket_cost:
            buckets.append((start, end - 1))
            start = end - 1
    buckets.append((start, size))
    return buckets


def optimal_partition(
    noisy: np.ndarray, bucket_cost: float, noise_level: float
) -> List[Tuple[int, int]]:
    """Exact interval dynamic program minimising ``sum_b dev(b) + bucket_cost``.

    Quadratic in the domain size; used for small domains and to validate the
    greedy partition in the tests.
    """
    size = noisy.shape[0]
    if size == 0:
        return []
    best_cost = np.full(size + 1, np.inf)
    best_cut = np.zeros(size + 1, dtype=np.int64)
    best_cost[0] = 0.0
    for end in range(1, size + 1):
        for start in range(0, end):
            cost = (
                best_cost[start]
                + bucket_deviation(noisy[start:end], noise_level)
                + bucket_cost
            )
            if cost < best_cost[end]:
                best_cost[end] = cost
                best_cut[end] = start
    buckets: List[Tuple[int, int]] = []
    end = size
    while end > 0:
        start = int(best_cut[end])
        buckets.append((start, end))
        end = start
    return list(reversed(buckets))


class DawaMechanism(HistogramMechanism):
    """Two-stage data-aware histogram estimator.

    Parameters
    ----------
    epsilon:
        Total privacy budget.
    shape:
        Shape of the histogram (used to pick a Hilbert linearisation for 2-D
        data).  ``None`` or a 1-tuple treats the vector as already linearised,
        which is also how the Blowfish tree mechanisms use it on transformed
        (edge-domain) databases.
    partition_budget_fraction:
        Fraction ``ρ`` of the budget spent learning the partition (stage 1).
    sensitivity:
        L1 sensitivity of the data vector (1 for unbounded DP, 2 for bounded
        DP, or the policy-specific sensitivity on transformed instances).
    use_optimal_partition:
        Use the exact O(k²) dynamic program instead of the greedy pass (small
        domains only).
    """

    name = "DAWA"
    data_dependent = True

    def __init__(
        self,
        epsilon: float,
        shape: Optional[Sequence[int]] = None,
        partition_budget_fraction: float = 0.25,
        sensitivity: float = 1.0,
        use_optimal_partition: bool = False,
    ) -> None:
        super().__init__(epsilon)
        if not 0.0 < partition_budget_fraction < 1.0:
            raise MechanismError(
                "partition_budget_fraction must be strictly between 0 and 1, got "
                f"{partition_budget_fraction}"
            )
        if sensitivity <= 0:
            raise MechanismError(f"sensitivity must be positive, got {sensitivity}")
        self._shape = None if shape is None else tuple(int(s) for s in shape)
        self._rho = float(partition_budget_fraction)
        self._sensitivity = float(sensitivity)
        self._use_optimal = bool(use_optimal_partition)

    # ------------------------------------------------------------- properties
    @property
    def partition_epsilon(self) -> float:
        """Budget spent on the partitioning stage."""
        return self._rho * self.epsilon

    @property
    def measurement_epsilon(self) -> float:
        """Budget spent measuring bucket totals."""
        return (1.0 - self._rho) * self.epsilon

    @property
    def sensitivity(self) -> float:
        """L1 sensitivity used to scale both stages."""
        return self._sensitivity

    def noise_std_per_cell(self, num_cells: int) -> None:
        """Always ``None``: DAWA's noise cannot be stated honestly a priori.

        The per-cell error depends on the bucket partition stage 1 chooses,
        which is itself data-dependent (and private).  Declaring a fixed
        scale here would be dishonest, so consumers (the serving engine's
        GLS consolidation) fall back to the ε-implied ``2/ε²`` proxy for
        DAWA-backed measurements.
        """
        return None

    # ------------------------------------------------------------------- API
    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        rng = ensure_rng(random_state)
        ordering = self._ordering(vector.shape[0])
        ordered = vector[ordering]

        # Stage 1: learn a partition from an eps1-DP noisy copy of the data.
        eps1 = self.partition_epsilon
        eps2 = self.measurement_epsilon
        noise_level = self._sensitivity / eps1
        noisy = ordered + laplace_noise(noise_level, ordered.shape[0], rng)
        bucket_cost = self._sensitivity / eps2
        if self._use_optimal:
            buckets = optimal_partition(noisy, bucket_cost, noise_level)
        else:
            buckets = greedy_partition(noisy, bucket_cost, noise_level)

        # Stage 2: measure bucket totals and spread them uniformly.
        estimate_ordered = np.zeros_like(ordered)
        scale = self._sensitivity / eps2
        for start, end in buckets:
            total = float(ordered[start:end].sum())
            noisy_total = total + float(laplace_noise(scale, 1, rng)[0])
            estimate_ordered[start:end] = noisy_total / (end - start)

        estimate = np.empty_like(estimate_ordered)
        estimate[ordering] = estimate_ordered
        return estimate

    def partition_for(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> List[Tuple[int, int]]:
        """Expose the stage-1 partition (in the linearised order) for diagnostics."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        rng = ensure_rng(random_state)
        ordering = self._ordering(vector.shape[0])
        ordered = vector[ordering]
        noise_level = self._sensitivity / self.partition_epsilon
        noisy = ordered + laplace_noise(noise_level, ordered.shape[0], rng)
        bucket_cost = self._sensitivity / self.measurement_epsilon
        if self._use_optimal:
            return optimal_partition(noisy, bucket_cost, noise_level)
        return greedy_partition(noisy, bucket_cost, noise_level)

    # ----------------------------------------------------------------- helper
    def _ordering(self, size: int) -> np.ndarray:
        if self._shape is None:
            return np.arange(size, dtype=np.int64)
        expected = int(np.prod(self._shape))
        if expected != size:
            raise MechanismError(
                f"DAWA was configured for shape {self._shape} ({expected} cells) but "
                f"received a vector with {size} cells"
            )
        return ordering_for_shape(self._shape)
