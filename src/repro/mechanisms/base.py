"""Mechanism interfaces.

Two kinds of differentially private mechanisms appear in the paper:

* *workload mechanisms* answer a workload ``W`` on a database ``x`` directly
  (Laplace on the workload, matrix mechanisms, Privelet, the hierarchical
  mechanism);
* *histogram estimators* release a private estimate of the full histogram
  ``x̃`` from which any workload can be answered as ``W x̃`` (Laplace on the
  identity, DAWA).

Every mechanism here also exposes a *matrix-level* entry point
(:meth:`Mechanism.answer_matrix`) that operates on a raw matrix/vector pair.
The Blowfish machinery relies on it: transformed instances ``(W_G, x_G)``
live in the edge domain, which is not a :class:`~repro.core.domain.Domain`,
yet the same differentially private code must run on them (Theorems 4.1 and
4.3).
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np
import scipy.sparse as sp

from ..core.database import Database
from ..core.rng import RandomState, ensure_rng
from ..core.workload import (
    Workload,
    answer_workloads_batched,
    answer_workloads_batched_with_noise,
)
from ..exceptions import MechanismError, PrivacyBudgetError

MatrixLike = Union[np.ndarray, sp.spmatrix]

T = TypeVar("T")


@dataclass(frozen=True)
class NoiseModel:
    """The noise one mechanism invocation adds, described honestly.

    A mechanism invocation releases ``y = true_answers + noise``.  This
    metadata rides alongside the answers (see
    :meth:`Mechanism.answer_batch_with_noise`) so downstream inference —
    the serving engine's generalised-least-squares consolidation — can weight
    and correlate measurements by what the strategy actually drew, instead of
    the crude ε-implied proxy (``2/ε²``).

    Attributes
    ----------
    stds:
        Per-row standard deviation of the additive noise, one entry per row
        of the invocation's (stacked) workload.
    basis:
        Optional sparse factor matrix ``R`` (rows × factors) such that the
        invocation's noise vector is ``R η`` for i.i.d. *unit-variance*
        factors ``η`` — so ``Cov = R Rᵀ`` and ``stds`` equals the row norms
        of ``R``.  Present for linear-noise (data-independent) mechanisms;
        ``None`` when only the marginal scales are known (data-dependent
        estimators), in which case rows are modelled as uncorrelated at
        their stated standard deviations.

    The model pickles (plain arrays and a CSR matrix), so it survives the
    engine's process-pool work-unit round trip untouched.
    """

    stds: np.ndarray
    basis: Optional[sp.csr_matrix] = None

    def __post_init__(self) -> None:
        stds = np.asarray(self.stds, dtype=np.float64).ravel()
        if stds.size and (not np.all(np.isfinite(stds)) or np.any(stds < 0)):
            raise MechanismError("Noise stds must be finite and non-negative")
        object.__setattr__(self, "stds", stds)
        if self.basis is not None:
            basis = sp.csr_matrix(self.basis)
            if basis.shape[0] != stds.shape[0]:
                raise MechanismError(
                    f"Noise basis has {basis.shape[0]} rows but {stds.shape[0]} "
                    "per-row stds were given"
                )
            object.__setattr__(self, "basis", basis)

    @property
    def num_rows(self) -> int:
        """Number of invocation rows the model covers."""
        return int(self.stds.shape[0])

    def rows(self, selector: Union[slice, np.ndarray]) -> "NoiseModel":
        """The sub-model covering one slice of the invocation's rows.

        The factor dimension is preserved: two slices of one invocation keep
        referring to the *same* factors, which is exactly what lets the
        answer cache compute cross-entry covariance for batch-mates.
        """
        return NoiseModel(
            stds=self.stds[selector],
            basis=self.basis[selector] if self.basis is not None else None,
        )


def basis_noise_model(basis: sp.spmatrix) -> NoiseModel:
    """Build a :class:`NoiseModel` from a unit-variance factor basis ``R``.

    Per-row stds are derived as the row norms of ``R`` (``Cov = R Rᵀ``).
    """
    basis = sp.csr_matrix(basis)
    squared = np.asarray(basis.multiply(basis).sum(axis=1)).ravel()
    return NoiseModel(stds=np.sqrt(squared), basis=basis)


class WorkloadTransformCache:
    """A small signature-keyed memo for per-mechanism workload artefacts.

    The serving engine caches planned mechanisms and invokes them from many
    flush threads concurrently, so a mechanism's internal per-workload memo
    (e.g. the transformed matrix ``W_G = W' P_G``) must be re-entrant.  This
    helper guards lookups and inserts with a lock and always returns the
    locally computed value, so a concurrent size-triggered ``clear`` can never
    turn a fresh insert into a ``KeyError``.  The expensive ``compute`` runs
    *outside* the lock: a racing thread may compute the same entry twice, and
    the second insert simply wins — transforms are deterministic, so the
    values are interchangeable.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: Dict[str, object] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(
        self, workload: Workload, compute: Callable[[Workload], T]
    ) -> T:
        """Return the memoised artefact for ``workload``, computing on a miss.

        Keys are content signatures: equal-but-distinct :class:`Workload`
        objects (what a serving engine sees on every client request) share one
        entry, and a recycled ``id()`` can never alias a stale matrix.
        """
        key = workload.signature()
        with self._lock:
            cached = self._entries.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        value = compute(workload)
        with self._lock:
            if len(self._entries) >= self._maxsize:
                self._entries.clear()
            self._entries[key] = value
        return value

    def clear(self) -> None:
        """Drop every memoised artefact."""
        with self._lock:
            self._entries.clear()

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Pickle support: ship the memoised artefacts, drop the lock.

        Mechanisms travel to worker processes and to disk inside cached
        plans.  The entries (transformed workload matrices) are deterministic
        values worth keeping warm; the lock is recreated on the other side.
        """
        with self._lock:
            entries = dict(self._entries)
        return {"_maxsize": self._maxsize, "_entries": entries}

    def __setstate__(self, state: dict) -> None:
        self._maxsize = state["_maxsize"]
        self._entries = dict(state["_entries"])
        self._lock = threading.Lock()


def check_epsilon(epsilon: float) -> float:
    """Validate a privacy budget and return it as a float."""
    epsilon = float(epsilon)
    if not np.isfinite(epsilon) or epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be a positive finite number, got {epsilon}")
    return epsilon


class Mechanism(abc.ABC):
    """Base class for differentially private workload-answering mechanisms.

    Parameters
    ----------
    epsilon:
        The privacy budget the mechanism consumes.

    Notes
    -----
    Subclasses set the class attribute :attr:`data_dependent` to ``True`` when
    the distribution of the added noise depends on the input database
    (Section 2, "Sensitivity and Private Mechanisms").  Data-independent
    mechanisms are exactly the ones covered by the matrix-mechanism
    equivalence (Theorem 4.1); data-dependent ones additionally require a tree
    policy (Theorem 4.3).

    **Re-entrancy contract.**  The serving engine (:mod:`repro.engine`) caches
    constructed mechanisms inside plans and calls :meth:`answer` /
    :meth:`answer_batch` from concurrent flush threads.  Implementations must
    therefore be re-entrant: per-call state stays on the stack, and any
    instance-level memo (lazy factorisations, per-workload transforms) must be
    guarded — use :class:`WorkloadTransformCache` for the latter.  The noise
    generator is always passed in per call, never stored.

    **Serialisability contract.**  Cached plans also travel — to worker
    processes (the engine's ``execute_backend="process"``) and to disk (plan
    persistence) — so mechanisms must pickle: keep unpicklable lazies
    (locks, factorisation closures) out of the pickled state and re-derive
    them deterministically on first use, the way
    :class:`WorkloadTransformCache` and
    :class:`~repro.policy.transform.PolicyTransform` do.  A round-tripped
    mechanism must answer identically for an identical seed.
    """

    #: Whether the added noise depends on the input database.
    data_dependent: bool = False
    #: Human-readable mechanism name used by the experiment harness.
    name: str = "Mechanism"

    def __init__(self, epsilon: float) -> None:
        self._epsilon = check_epsilon(epsilon)

    @property
    def epsilon(self) -> float:
        """Privacy budget ``ε``."""
        return self._epsilon

    # ------------------------------------------------------------------ API
    def answer(
        self,
        workload: Workload,
        database: Database,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Noisy answers to ``workload`` on ``database``.

        The default implementation forwards to :meth:`answer_matrix`.
        """
        if workload.domain != database.domain:
            raise ValueError(
                f"Workload domain {workload.domain} does not match database domain "
                f"{database.domain}"
            )
        return self.answer_matrix(workload.matrix, database.counts, random_state)

    @abc.abstractmethod
    def answer_matrix(
        self,
        matrix: MatrixLike,
        vector: np.ndarray,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Noisy answers for a raw ``matrix @ vector`` product.

        Implementations must guarantee ε-differential privacy with respect to
        *unbounded* neighbors of ``vector`` (vectors at L1 distance 1), unless
        their docstring states otherwise.
        """

    def answer_batch(
        self,
        workloads: Sequence[Workload],
        database: Database,
        random_state: RandomState = None,
    ) -> List[np.ndarray]:
        """Answer several workloads with ONE mechanism invocation.

        The workloads are stacked into a single matrix and answered by a
        single call to :meth:`answer`, so the whole batch costs one ε — the
        batch-executor fast path of :mod:`repro.engine`.  Returns one answer
        vector per input workload, in order.
        """
        return answer_workloads_batched(self.answer, workloads, database, random_state)

    def noise_model(self, workload: Workload) -> Optional[NoiseModel]:
        """The noise profile one invocation on ``workload`` would carry.

        Returns ``None`` when the mechanism cannot state its noise honestly
        ahead of the draw (data-dependent estimators); consumers then fall
        back to the ε-implied ``2/ε²`` proxy.  Data-independent
        subclasses override this with the per-row standard deviations (and,
        where the noise is linear, the factor basis) their strategy implies.
        """
        return None

    def answer_batch_with_noise(
        self,
        workloads: Sequence[Workload],
        database: Database,
        random_state: RandomState = None,
    ) -> Tuple[List[np.ndarray], Optional[NoiseModel]]:
        """:meth:`answer_batch` plus the invocation's noise metadata.

        The answers are drawn exactly as :meth:`answer_batch` would draw
        them (one stacked invocation, same stream), and the returned
        :class:`NoiseModel` covers the stacked rows in input order.  The
        metadata is advisory: a failure computing it degrades to ``None``
        (the proxy model) rather than voiding the already-drawn release.
        """
        return answer_workloads_batched_with_noise(
            self.answer, self.noise_model, workloads, database, random_state
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self._epsilon})"


class HistogramMechanism(Mechanism):
    """A mechanism that privately estimates the data vector itself.

    Subclasses implement :meth:`estimate_vector`; workload answers are then
    computed as ``W x̃`` (post-processing, no extra budget).
    """

    @abc.abstractmethod
    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Return an ε-differentially private estimate of ``vector``."""

    def noise_std_per_cell(self, num_cells: int) -> Optional[np.ndarray]:
        """Per-cell standard deviation of the estimator's additive noise.

        ``None`` (the default) marks estimators whose noise cannot be stated
        ahead of the draw — data-dependent ones like DAWA, whose scales
        depend on the private partition it chooses.  Data-independent
        estimators override this so workload answers ``W x̃`` can carry an
        exact linear noise model (``noise = W · cell-noise``).
        """
        return None

    def noise_model(self, workload: Workload) -> Optional[NoiseModel]:
        """Noise model of ``W x̃``: the workload applied to the cell noise."""
        cell_stds = self.noise_std_per_cell(workload.num_columns)
        if cell_stds is None:
            return None
        return basis_noise_model(workload.matrix @ sp.diags(cell_stds))

    def estimate_histogram(
        self, database: Database, random_state: RandomState = None
    ) -> np.ndarray:
        """Private estimate of the database's histogram vector."""
        return self.estimate_vector(database.counts, random_state)

    def answer_matrix(
        self,
        matrix: MatrixLike,
        vector: np.ndarray,
        random_state: RandomState = None,
    ) -> np.ndarray:
        estimate = self.estimate_vector(np.asarray(vector, dtype=np.float64), random_state)
        if sp.issparse(matrix):
            return np.asarray(matrix @ estimate).ravel()
        return np.asarray(np.asarray(matrix, dtype=np.float64) @ estimate).ravel()


def laplace_noise(
    scale: float, size: int, random_state: RandomState = None
) -> np.ndarray:
    """Sample ``size`` i.i.d. Laplace(0, scale) random variables.

    ``scale`` is the usual ``b`` parameter (standard deviation ``sqrt(2) b``);
    a zero scale returns zeros so that "infinite ε" corner cases degrade
    gracefully in tests.
    """
    if scale < 0:
        raise PrivacyBudgetError(f"Noise scale must be non-negative, got {scale}")
    rng = ensure_rng(random_state)
    if scale == 0:
        return np.zeros(size, dtype=np.float64)
    return rng.laplace(loc=0.0, scale=scale, size=size)
