"""Privelet — differential privacy via Haar wavelet transforms (Xiao et al. [20]).

Privelet measures the Haar wavelet coefficients of the histogram with Laplace
noise whose scale is the *generalised sensitivity* ``1 + log2(m)`` (``m`` the
padded power-of-two domain size), then reconstructs a noisy histogram by
inverting the transform.  Every range query touches ``O(log m)`` coefficients
with bounded reconstruction weights, so the per-range-query error is
``O(log^3 m / ε²)`` — the best known data-*independent* bound for range
queries under plain differential privacy, and the baseline the paper compares
against everywhere (Figure 3, Figures 8 and 9).

The multi-dimensional variant applies the transform along every axis
(the tensor-product construction); its sensitivity is the product of the
per-axis sensitivities and the per-query error becomes ``O(log^{3d} m / ε²)``.

Implementation notes
--------------------
The mechanism is expressed through :mod:`repro.mechanisms.strategies`: the
data vector is zero-padded to a power of two along every axis, the (tensor)
Haar strategy is measured, and the padded histogram estimate is reconstructed
through the strategy's explicit pseudo-inverse.  The class is a
:class:`~repro.mechanisms.base.HistogramMechanism`, so workload answers are
simply ``W x̃`` — this matches how Privelet is used by the paper's
experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.rng import RandomState
from ..exceptions import MechanismError
from .base import HistogramMechanism, laplace_noise
from .strategies import Strategy, haar_strategy, kron_strategy


def _next_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << int(np.ceil(np.log2(value)))


class PriveletMechanism(HistogramMechanism):
    """The Privelet wavelet mechanism as a private histogram estimator.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    shape:
        Shape of the histogram this mechanism will be applied to.  A plain
        integer (or 1-tuple) selects the one-dimensional transform; a
        ``d``-tuple selects the tensor-product transform.
    sensitivity_multiplier:
        Extra multiplicative factor on the noise scale.  The default 1 targets
        unbounded differential privacy; pass 2 for bounded differential
        privacy, or the policy-specific factor when the mechanism is run on a
        transformed Blowfish instance.
    """

    name = "Privelet"
    data_dependent = False

    def __init__(
        self,
        epsilon: float,
        shape: Sequence[int] | int,
        sensitivity_multiplier: float = 1.0,
    ) -> None:
        super().__init__(epsilon)
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        self._shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self._shape):
            raise MechanismError(f"All histogram dimensions must be positive, got {self._shape}")
        if sensitivity_multiplier <= 0:
            raise MechanismError(
                f"sensitivity_multiplier must be positive, got {sensitivity_multiplier}"
            )
        self._multiplier = float(sensitivity_multiplier)
        self._padded_shape = tuple(_next_power_of_two(s) for s in self._shape)
        self._strategy = self._build_strategy()

    # ----------------------------------------------------------- construction
    def _build_strategy(self) -> Strategy:
        strategy: Optional[Strategy] = None
        for extent in self._padded_shape:
            axis_strategy = haar_strategy(extent)
            strategy = (
                axis_strategy
                if strategy is None
                else kron_strategy(strategy, axis_strategy, name="haar^d")
            )
        assert strategy is not None
        return strategy

    # ------------------------------------------------------------- properties
    @property
    def shape(self) -> Tuple[int, ...]:
        """Histogram shape this mechanism expects."""
        return self._shape

    @property
    def sensitivity(self) -> float:
        """Noise-calibration sensitivity ``multiplier * prod_i (1 + log2 m_i)``."""
        return self._multiplier * self._strategy.sensitivity

    @property
    def strategy(self) -> Strategy:
        """The underlying (tensor) Haar strategy."""
        return self._strategy

    def expected_error_per_range_query_bound(self) -> float:
        """The asymptotic per-range-query error bound ``O(log^{3d} m / ε²)``.

        Returned as ``prod_i (1 + log2 m_i)^3 · 2 / ε²`` — a convenient
        reference curve for the Figure 3 comparison, not an exact expectation.
        """
        bound = 2.0 / (self.epsilon**2)
        for extent in self._padded_shape:
            bound *= (1.0 + float(np.log2(max(extent, 2)))) ** 3
        return bound * (self._multiplier**2)

    # ------------------------------------------------------------------- API
    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        expected = int(np.prod(self._shape))
        if vector.shape[0] != expected:
            raise MechanismError(
                f"Expected a histogram with {expected} cells (shape {self._shape}), "
                f"got {vector.shape[0]}"
            )
        padded = np.zeros(self._padded_shape, dtype=np.float64)
        source = vector.reshape(self._shape)
        padded[tuple(slice(0, s) for s in self._shape)] = source
        flat_padded = padded.reshape(-1)

        measurements = np.asarray(self._strategy.matrix @ flat_padded).ravel()
        scale = self.sensitivity / self.epsilon
        noisy = measurements + laplace_noise(scale, measurements.shape[0], random_state)
        reconstructed = self._strategy.apply_pseudo_inverse(noisy)
        reconstructed = reconstructed.reshape(self._padded_shape)
        return reconstructed[tuple(slice(0, s) for s in self._shape)].reshape(-1)
