"""The (two-sided) geometric mechanism.

A discrete analogue of the Laplace mechanism for integer-valued counting
queries: noise is drawn from the two-sided geometric distribution
``Pr[Z = z] ∝ α^{|z|}`` with ``α = exp(-ε / Δ)``.  The paper's algorithms do
not depend on it, but it is a standard substrate for integral count release
and the library offers it so that downstream users can release integer
histograms (e.g. the transformed prefix-sum databases, which are integral for
tree policies) without leaving the integers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.rng import RandomState, ensure_rng
from .base import HistogramMechanism, MatrixLike, check_epsilon


def geometric_noise(
    epsilon: float,
    sensitivity: float,
    size: int,
    random_state: RandomState = None,
) -> np.ndarray:
    """Sample two-sided geometric noise with parameter ``α = exp(-ε/Δ)``.

    The two-sided geometric variable is the difference of two independent
    geometric variables, which is the standard sampling route.
    """
    check_epsilon(epsilon)
    if sensitivity < 0:
        raise ValueError(f"sensitivity must be non-negative, got {sensitivity}")
    rng = ensure_rng(random_state)
    if sensitivity == 0:
        return np.zeros(size, dtype=np.int64)
    alpha = np.exp(-epsilon / sensitivity)
    # Geometric distribution over {0, 1, 2, ...} with success prob. (1 - alpha).
    first = rng.geometric(p=1.0 - alpha, size=size) - 1
    second = rng.geometric(p=1.0 - alpha, size=size) - 1
    return (first - second).astype(np.int64)


class GeometricHistogram(HistogramMechanism):
    """Release an integer histogram using two-sided geometric noise.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    sensitivity:
        L1 sensitivity of the histogram (1 for unbounded DP, 2 for bounded DP,
        or the policy-specific sensitivity on transformed instances).
    """

    name = "GeometricHistogram"
    data_dependent = False

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        super().__init__(epsilon)
        if sensitivity < 0:
            raise ValueError(f"sensitivity must be non-negative, got {sensitivity}")
        self._sensitivity = float(sensitivity)

    @property
    def sensitivity(self) -> float:
        """Sensitivity used to scale the per-cell noise."""
        return self._sensitivity

    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        noise = geometric_noise(
            self.epsilon, self._sensitivity, vector.shape[0], random_state
        )
        return vector + noise

    def expected_error_per_cell(self) -> float:
        """Variance of the two-sided geometric noise, ``2α / (1 - α)²``."""
        if self._sensitivity == 0:
            return 0.0
        alpha = np.exp(-self.epsilon / self._sensitivity)
        return float(2.0 * alpha / (1.0 - alpha) ** 2)
