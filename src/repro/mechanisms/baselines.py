"""Trivial baseline mechanisms used in ablations and sanity checks.

These are not part of the paper's evaluation but give useful reference points
when exploring the privacy/utility trade-off: the uniform mechanism spends the
whole budget on a single total count, and the zero mechanism releases nothing
data-dependent at all (infinite privacy, maximal error).
"""

from __future__ import annotations

import numpy as np

from ..core.rng import RandomState
from .base import HistogramMechanism, laplace_noise


class UniformMechanism(HistogramMechanism):
    """Measure only the noisy grand total and spread it uniformly.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    sensitivity:
        L1 sensitivity of the total count (1 for unbounded DP).
    """

    name = "Uniform"
    data_dependent = False

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        super().__init__(epsilon)
        if sensitivity < 0:
            raise ValueError(f"sensitivity must be non-negative, got {sensitivity}")
        self._sensitivity = float(sensitivity)

    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.size == 0:
            return vector.copy()
        noisy_total = float(vector.sum()) + float(
            laplace_noise(self._sensitivity / self.epsilon, 1, random_state)[0]
        )
        return np.full_like(vector, noisy_total / vector.size)


class ZeroMechanism(HistogramMechanism):
    """Release the all-zero histogram (a perfectly private, data-free baseline)."""

    name = "Zero"
    data_dependent = False

    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        return np.zeros_like(vector)
