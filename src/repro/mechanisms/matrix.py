"""The matrix mechanism (Li et al. [15]; Equation 2 of the paper).

Given a strategy ``A`` the mechanism answers a workload ``W`` as::

    M_A(W, x) = W x + W A⁺ Lap(Δ_A / ε)^p

All matrix mechanisms are data independent, which is why transformational
equivalence holds for them under *every* policy graph (Theorem 4.1).  The
implementation never materialises ``W A⁺``: it draws the noise vector ``η``,
computes ``v = A⁺ η`` (explicitly or by sparse least squares) and returns
``W (x + v)``, which is algebraically identical and cheap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..core.rng import RandomState
from ..exceptions import MechanismError
from .base import MatrixLike, Mechanism, laplace_noise
from .strategies import Strategy, identity_strategy


class MatrixMechanism(Mechanism):
    """Answer a workload through a measurement strategy (Equation 2).

    Parameters
    ----------
    epsilon:
        Privacy budget.
    strategy:
        The measurement :class:`~repro.mechanisms.strategies.Strategy`.  Its
        ``sensitivity`` field is what calibrates the noise; pass the
        policy-specific sensitivity there to obtain a Blowfish mechanism
        (Theorem 4.1) — :class:`repro.blowfish.PolicyMatrixMechanism` does
        exactly that.

    Notes
    -----
    The reconstruction is exact only when every workload row lies in the row
    space of the strategy (``W A⁺ A = W``).  :meth:`check_supports` verifies
    this for small instances; the named strategies used by the library
    (identity, Haar, hierarchical) span the full space, so the condition holds
    automatically.
    """

    name = "MatrixMechanism"
    data_dependent = False

    def __init__(self, epsilon: float, strategy: Strategy) -> None:
        super().__init__(epsilon)
        self._strategy = strategy

    @property
    def strategy(self) -> Strategy:
        """The measurement strategy ``A``."""
        return self._strategy

    # ------------------------------------------------------------------ API
    def answer_matrix(
        self,
        matrix: MatrixLike,
        vector: np.ndarray,
        random_state: RandomState = None,
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self._strategy.num_columns:
            raise MechanismError(
                f"Data vector has {vector.shape[0]} coordinates but the strategy "
                f"expects {self._strategy.num_columns}"
            )
        noise = laplace_noise(
            self._strategy.sensitivity / self.epsilon,
            self._strategy.num_measurements,
            random_state,
        )
        correction = self._strategy.apply_pseudo_inverse(noise)
        noisy_vector = vector + correction
        if sp.issparse(matrix):
            return np.asarray(matrix @ noisy_vector).ravel()
        return np.asarray(np.asarray(matrix, dtype=np.float64) @ noisy_vector).ravel()

    # ------------------------------------------------------------ diagnostics
    def check_supports(self, matrix: MatrixLike, tolerance: float = 1e-8) -> bool:
        """Verify ``W A⁺ A = W`` (the workload is reconstructable from the strategy).

        Dense check — use on small instances and in tests only.
        """
        dense_workload = (
            np.asarray(matrix.todense()) if sp.issparse(matrix) else np.asarray(matrix)
        )
        dense_strategy = np.asarray(self._strategy.matrix.todense())
        pseudo = np.linalg.pinv(dense_strategy)
        reconstructed = dense_workload @ pseudo @ dense_strategy
        return bool(np.allclose(reconstructed, dense_workload, atol=tolerance))

    def expected_error_per_query(self, matrix: MatrixLike) -> np.ndarray:
        """Exact expected squared error of every query (dense; small instances only).

        For query row ``w`` the error is ``2 (Δ_A / ε)² ||w A⁺||²`` since the
        Laplace coordinates are independent with variance ``2 (Δ_A/ε)²``.
        """
        dense_workload = (
            np.asarray(matrix.todense()) if sp.issparse(matrix) else np.asarray(matrix)
        )
        dense_strategy = np.asarray(self._strategy.matrix.todense())
        pseudo = np.linalg.pinv(dense_strategy)
        reconstruction = dense_workload @ pseudo
        scale = self._strategy.sensitivity / self.epsilon
        return 2.0 * (scale**2) * np.sum(reconstruction**2, axis=1)


def laplace_matrix_mechanism(epsilon: float, size: int) -> MatrixMechanism:
    """The matrix mechanism with the identity strategy (equivalent to per-cell Laplace)."""
    return MatrixMechanism(epsilon=epsilon, strategy=identity_strategy(size))
