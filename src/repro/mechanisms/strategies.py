"""Strategy matrices for matrix mechanisms (Li et al. [15]).

A *strategy* ``A`` is a set of linear measurements that is answered with the
Laplace mechanism; the workload is then reconstructed from the noisy
measurements (Equation 2 of the paper).  This module builds the standard
strategies used by the substrates and by the Blowfish mechanisms:

* :func:`identity_strategy` — measure every cell;
* :func:`total_strategy` — measure only the grand total;
* :func:`hierarchical_strategy` — the interval tree of Hay et al. [10];
* :func:`haar_strategy` — the Haar wavelet measurements behind Privelet [20];
* :func:`block_diagonal_strategy` — glue independent strategies over disjoint
  groups of coordinates (parallel composition), used by the Section 5
  edge-space strategies.

Each builder returns a :class:`Strategy`, which bundles the measurement
matrix, its L1 sensitivity and, when cheaply available, an explicit
pseudo-inverse (for strategies with orthogonal rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.sensitivity import unbounded_sensitivity
from ..exceptions import MechanismError


@dataclass(frozen=True)
class Strategy:
    """A measurement strategy for the matrix mechanism.

    Attributes
    ----------
    matrix:
        The ``p x k`` measurement matrix ``A``.
    sensitivity:
        The L1 sensitivity ``Δ_A`` used to scale the Laplace noise.  For
        Blowfish mechanisms this is the *policy-specific* sensitivity of the
        strategy, which for edge-space strategies is again the maximum column
        L1 norm.
    pseudo_inverse:
        Optional explicit ``A⁺`` (``k x p``).  When omitted, consumers fall
        back to an iterative least-squares solve, which is exact but slower.
    name:
        Label used in reports and ablations.
    """

    matrix: sp.csr_matrix
    sensitivity: float
    pseudo_inverse: Optional[sp.csr_matrix] = None
    name: str = "strategy"

    @property
    def num_measurements(self) -> int:
        """Number of measurements ``p`` (rows of ``A``)."""
        return int(self.matrix.shape[0])

    @property
    def num_columns(self) -> int:
        """Number of data coordinates ``k`` (columns of ``A``)."""
        return int(self.matrix.shape[1])

    def apply_pseudo_inverse(self, values: np.ndarray) -> np.ndarray:
        """Compute ``A⁺ values`` (explicitly or via sparse least squares)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape[0] != self.num_measurements:
            raise MechanismError(
                f"Expected {self.num_measurements} measurement values, got {values.shape[0]}"
            )
        if self.pseudo_inverse is not None:
            return np.asarray(self.pseudo_inverse @ values).ravel()
        result = sp.linalg.lsqr(self.matrix, values, atol=1e-12, btol=1e-12)
        return np.asarray(result[0]).ravel()


# ---------------------------------------------------------------------------
# Elementary strategies.
# ---------------------------------------------------------------------------
def identity_strategy(size: int) -> Strategy:
    """Measure every coordinate once (the Laplace-histogram strategy)."""
    if size <= 0:
        raise MechanismError(f"size must be positive, got {size}")
    identity = sp.identity(size, format="csr", dtype=np.float64)
    return Strategy(
        matrix=identity, sensitivity=1.0, pseudo_inverse=identity, name="identity"
    )


def total_strategy(size: int) -> Strategy:
    """Measure only the grand total (useful for tiny ablation studies)."""
    if size <= 0:
        raise MechanismError(f"size must be positive, got {size}")
    matrix = sp.csr_matrix(np.ones((1, size), dtype=np.float64))
    pseudo_inverse = sp.csr_matrix(np.full((size, 1), 1.0 / size))
    return Strategy(
        matrix=matrix, sensitivity=1.0, pseudo_inverse=pseudo_inverse, name="total"
    )


def hierarchical_strategy(size: int, branching: int = 2) -> Strategy:
    """The interval-tree strategy of Hay et al. [10].

    Rows are indicators of the intervals of a ``branching``-ary tree over the
    ``size`` coordinates, from the root interval down to the unit intervals.
    The sensitivity equals the number of levels (each coordinate appears once
    per level).
    """
    if size <= 0:
        raise MechanismError(f"size must be positive, got {size}")
    if branching < 2:
        raise MechanismError(f"branching must be at least 2, got {branching}")
    rows: List[int] = []
    cols: List[int] = []
    levels = 0
    intervals: List[Tuple[int, int]] = [(0, size)]
    row_index = 0
    while intervals:
        levels += 1
        next_intervals: List[Tuple[int, int]] = []
        for lo, hi in intervals:
            for position in range(lo, hi):
                rows.append(row_index)
                cols.append(position)
            row_index += 1
            if hi - lo > 1:
                width = hi - lo
                step = int(np.ceil(width / branching))
                start = lo
                while start < hi:
                    end = min(start + step, hi)
                    next_intervals.append((start, end))
                    start = end
        intervals = next_intervals
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(row_index, size))
    return Strategy(
        matrix=matrix,
        sensitivity=unbounded_sensitivity(matrix),
        pseudo_inverse=None,
        name=f"hierarchical(b={branching})",
    )


def haar_strategy(size: int) -> Strategy:
    """The Haar wavelet strategy behind Privelet [20].

    The coordinates are implicitly padded to the next power of two ``m``; the
    strategy has one "total" row plus, for every dyadic interval of length at
    least 2, a row that is ``+1`` on its left half and ``-1`` on its right
    half, truncated back to the first ``size`` columns.  On a power-of-two
    domain the rows are mutually orthogonal, so the pseudo-inverse is the
    scaled transpose and is returned explicitly; for other sizes the
    truncation breaks exact orthogonality and consumers fall back to least
    squares.

    The sensitivity is ``1 + log2(m)``: a unit change of one coordinate
    touches the total row and exactly one row per dyadic level.
    """
    if size <= 0:
        raise MechanismError(f"size must be positive, got {size}")
    padded = 1 << int(np.ceil(np.log2(size))) if size > 1 else 1
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []

    # Total row.
    row_index = 0
    for position in range(size):
        rows.append(row_index)
        cols.append(position)
        data.append(1.0)
    row_index += 1

    # Dyadic difference rows over the padded domain, truncated to `size` columns.
    length = padded
    while length >= 2:
        half = length // 2
        for start in range(0, padded, length):
            touched = False
            for position in range(start, min(start + half, size)):
                rows.append(row_index)
                cols.append(position)
                data.append(1.0)
                touched = True
            for position in range(start + half, min(start + length, size)):
                rows.append(row_index)
                cols.append(position)
                data.append(-1.0)
                touched = True
            if touched:
                row_index += 1
            # Rows entirely in the zero padding are dropped.
        length = half

    matrix = sp.csr_matrix((data, (rows, cols)), shape=(row_index, size))
    sensitivity = 1.0 + float(np.log2(padded)) if padded > 1 else 1.0
    pseudo_inverse: Optional[sp.csr_matrix] = None
    if padded == size:
        row_norms = np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel()
        scaling = sp.diags(1.0 / row_norms)
        pseudo_inverse = sp.csr_matrix(matrix.T @ scaling)
    return Strategy(
        matrix=matrix,
        sensitivity=sensitivity,
        pseudo_inverse=pseudo_inverse,
        name="haar",
    )


def kron_strategy(first: Strategy, second: Strategy, name: str = "") -> Strategy:
    """Tensor (Kronecker) product of two strategies for product domains.

    The sensitivity multiplies; an explicit pseudo-inverse is propagated when
    both factors provide one (``(A ⊗ B)⁺ = A⁺ ⊗ B⁺``).
    """
    matrix = sp.csr_matrix(sp.kron(first.matrix, second.matrix, format="csr"))
    pseudo_inverse = None
    if first.pseudo_inverse is not None and second.pseudo_inverse is not None:
        pseudo_inverse = sp.csr_matrix(
            sp.kron(first.pseudo_inverse, second.pseudo_inverse, format="csr")
        )
    return Strategy(
        matrix=matrix,
        sensitivity=first.sensitivity * second.sensitivity,
        pseudo_inverse=pseudo_inverse,
        name=name or f"{first.name}x{second.name}",
    )


def block_diagonal_strategy(
    blocks: Sequence[Tuple[Sequence[int], Strategy]],
    num_columns: int,
    name: str = "block",
) -> Strategy:
    """Glue per-group strategies into one strategy over ``num_columns`` coordinates.

    Parameters
    ----------
    blocks:
        Pairs ``(coordinates, strategy)``: the strategy's columns are mapped
        onto the listed coordinate indices (in order).  Groups may not
        overlap; coordinates not covered by any group are simply not measured.
    num_columns:
        Total number of coordinates of the resulting strategy.

    Notes
    -----
    Because the groups are disjoint, a unit change in one coordinate only
    touches that coordinate's group, so the overall sensitivity is the
    maximum of the per-group sensitivities — this is exactly the parallel
    composition the Section 5 strategies rely on.
    """
    seen: set[int] = set()
    triples_rows: List[int] = []
    triples_cols: List[int] = []
    triples_data: List[float] = []
    pinv_rows: List[int] = []
    pinv_cols: List[int] = []
    pinv_data: List[float] = []
    have_all_pinv = True
    row_offset = 0
    sensitivity = 0.0
    for coordinates, strategy in blocks:
        coordinates = [int(c) for c in coordinates]
        if len(coordinates) != strategy.num_columns:
            raise MechanismError(
                f"Group has {len(coordinates)} coordinates but the strategy expects "
                f"{strategy.num_columns}"
            )
        overlap = seen.intersection(coordinates)
        if overlap:
            raise MechanismError(f"Groups overlap on coordinates {sorted(overlap)}")
        seen.update(coordinates)
        coo = strategy.matrix.tocoo()
        triples_rows.extend((coo.row + row_offset).tolist())
        triples_cols.extend([coordinates[c] for c in coo.col])
        triples_data.extend(coo.data.tolist())
        if strategy.pseudo_inverse is None:
            have_all_pinv = False
        else:
            pcoo = strategy.pseudo_inverse.tocoo()
            pinv_rows.extend([coordinates[r] for r in pcoo.row])
            pinv_cols.extend((pcoo.col + row_offset).tolist())
            pinv_data.extend(pcoo.data.tolist())
        sensitivity = max(sensitivity, strategy.sensitivity)
        row_offset += strategy.num_measurements

    matrix = sp.csr_matrix(
        (triples_data, (triples_rows, triples_cols)), shape=(row_offset, num_columns)
    )
    pseudo_inverse = None
    if have_all_pinv:
        pseudo_inverse = sp.csr_matrix(
            (pinv_data, (pinv_rows, pinv_cols)), shape=(num_columns, row_offset)
        )
    return Strategy(
        matrix=matrix,
        sensitivity=sensitivity,
        pseudo_inverse=pseudo_inverse,
        name=name,
    )
